//! The mltrace command-line UI: the paper's eight query commands plus
//! ad-hoc SQL and maintenance operations, over a WAL-backed run log.
//!
//! ```text
//! mltrace --db obs.wal demo --batches 5     # simulate the taxi pipeline into the log
//! mltrace --db obs.wal recent 10
//! mltrace --db obs.wal history inference
//! mltrace --db obs.wal trace predictions-3.csv
//! mltrace --db obs.wal inspect 12
//! mltrace --db obs.wal flag pred-17 && mltrace --db obs.wal review
//! mltrace --db obs.wal stale
//! mltrace --db obs.wal tail --severity page --follow
//! mltrace --db obs.wal export-trace 12 --format chrome --out trace.json
//! mltrace --db obs.wal sql "SELECT kind, count(*) FROM events GROUP BY kind"
//! mltrace --db obs.wal compact --days 30
//! mltrace --db obs.wal delete-derived clean_trips-0.csv
//! mltrace --db obs.wal stats
//! ```

use mltrace::client::load::{run_load, LoadConfig};
use mltrace::core::{
    build_graph, diagnose_key, diagnose_open_incidents, diagnose_run, export_trace, Commands,
    Mltrace, TraceFormat,
};
use mltrace::query::execute;
use mltrace::server::{install_handlers, shutdown_requested, ServeConfig, Server};
use mltrace::store::deletion::delete_derived;
use mltrace::store::retention::compact_older_than_days;
use mltrace::store::wal::DurabilityPolicy;
use mltrace::store::wal::{read_journal, JournalFollower};
use mltrace::store::{
    EventFilter, EventKind, EventSeverity, IncidentState, RunId, Store, Value, WalStore,
};
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};
use mltrace::telemetry::{Telemetry, TelemetrySnapshot};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
mltrace — observability for ML pipelines

USAGE: mltrace [--db <path>] <command> [args]

COMMANDS
  components                 list registered components
  recent [n]                 latest runs across all components (default 10)
  history <component> [n]    run history with metrics and trigger outcomes
  trace <output>             lineage tree of an output pointer
  inspect <run_id>           full ComponentRun record
  flag <output>              mark an output for review
  unflag <output>            clear a review flag
  review                     rank component runs across flagged traces
  stale [component]          staleness of the latest run(s)
  health                     one-screen pipeline health summary
  tail [--limit <n>] [--kind <k>] [--severity <s>]
       [--since-ms <t>] [--until-ms <t>] [--follow] [--poll-ms <n>]
                             journal events, read cold from the log family
                             (zone maps skip segments the filter excludes);
                             --follow streams new ones live, polling the
                             log every --poll-ms (default 250)
  monitor [--component <c>] [--metric <m>] [--watch] [--poll-ms <n>]
                             monitoring-plane summaries: streaming stats,
                             window counts, and drift scores per
                             (component, metric); --watch reopens the log
                             every --poll-ms (default 1000) until Ctrl-C
  export-trace <run_id> [--format chrome|otlp-json] [--out <path>]
                             component-run tree as a loadable trace file;
                             spans of diagnosed suspects carry blame notes
  diagnose [<incident-key>] [--run-id <id>]
                             rank root-cause suspects across the lineage
                             graph: for one incident, one run, or (no
                             args) every unresolved incident
  telemetry [--prometheus]   the engine's own counters and latency histograms
  serve [--addr <host:port>] [--workers <n>] [--max-inflight <n>]
        [--coalesce-ms <n>] [--coalesce-max <n>] [--durability <policy>]
                             multi-client TCP front-end: batched ingest
                             rides one group commit across connections,
                             prepared queries run on a worker pool, and
                             per-connection --max-inflight answers Busy
                             instead of queueing unbounded; durability
                             defaults to onsync (also: every, batch:N,
                             interval:MS); Ctrl-C drains and fsyncs
  bench-load [--addr <host:port>] [--writers <n>] [--readers <n>]
             [--runs <n>] [--batch <n>] [--metrics <n>]
             [--prefix <name>] [--retry-busy] [--pipeline <n>]
                             E18 load harness against a running serve:
                             N writer connections batching ingest, M
                             readers looping a PREPAREd count;
                             --pipeline keeps n ingest requests in
                             flight per writer (provokes Busy under a
                             small --max-inflight)
  sql <query>                ad-hoc SQL over the log tables
  explain <query>            the plan for a SELECT (route, pushdown, pruning)
                             without running it; same as sql \"EXPLAIN ...\"
  stats                      record counts, on-disk WAL footprint, and
                             secondary-index memory
  checkpoint                 snapshot state + seal the log for fast restarts
  compact --days <n>         fold runs older than n days into rollups
  delete-derived <output>    GDPR: purge everything derived from <output>
  demo [--batches <n>]       simulate the taxi demo pipeline into the log

OPTIONS
  --db <path>                WAL file (default: mltrace.wal)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    let mut db = "mltrace.wal".to_string();
    if args.first().map(String::as_str) == Some("--db") {
        if args.len() < 2 {
            return Err("--db requires a path".into());
        }
        db = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = &args[1..];

    // `demo` builds its own in-memory pipeline, then replays its log into
    // the WAL so the other commands have something real to query.
    if command == "demo" {
        return demo(&db, rest);
    }

    // `tail` reads the log family cold — snapshot zone, segment footers,
    // active log — without opening the store, so a filtered tail skips
    // whole sealed segments instead of replaying the full history first.
    if command == "tail" {
        return tail(&db, rest);
    }

    // `monitor --watch` reopens the store each tick so it observes other
    // processes' appends; handled before the long-lived open below.
    if command == "monitor" {
        return monitor(&db, rest);
    }

    // `serve` owns its store exclusively (serve-mode durability differs)
    // and blocks for the server's lifetime; `bench-load` is a pure
    // network client and opens no store at all.
    if command == "serve" {
        return serve(&db, rest);
    }
    if command == "bench-load" {
        return bench_load(rest);
    }

    let store = Arc::new(WalStore::open(&db).map_err(|e| format!("open {db}: {e}"))?);
    if store.recovered() {
        eprintln!(
            "warning: {db}: torn write from a previous crash truncated away; \
             the log is consistent up to the last complete record"
        );
    }
    let ml = Mltrace::with_store(store.clone(), Arc::new(mltrace::store::SystemClock));
    let mut cmds = Commands::new(&ml);

    match command.as_str() {
        "components" => {
            for c in store.components().map_err(err)? {
                println!(
                    "{:<24} owner={:<12} tags={:?}  {}",
                    c.name, c.owner, c.tags, c.description
                );
            }
        }
        "recent" => {
            let n = parse_num(rest.first(), 10)?;
            for run in cmds.recent(n).map_err(err)? {
                println!(
                    "{:<8} {:<20} [{}] start={} dur={}ms",
                    run.id.to_string(),
                    run.component,
                    run.status.name(),
                    run.start_ms,
                    run.duration_ms()
                );
            }
        }
        "history" => {
            let component = rest.first().ok_or("history needs a component name")?;
            let n = parse_num(rest.get(1), 10)?;
            print!("{}", cmds.history(component, n).map_err(err)?.render());
        }
        "trace" => {
            let output = rest.first().ok_or("trace needs an output name")?;
            print!("{}", cmds.trace(output).map_err(err)?.render());
        }
        "inspect" => {
            let id: u64 = rest
                .first()
                .ok_or("inspect needs a run id")?
                .parse()
                .map_err(|_| "run id must be a number".to_string())?;
            let run = cmds.inspect(id).map_err(err)?;
            print!("{}", cmds.render_inspect(&run));
        }
        "flag" => {
            let output = rest.first().ok_or("flag needs an output name")?;
            cmds.flag(output).map_err(err)?;
            println!("flagged {output}");
        }
        "unflag" => {
            let output = rest.first().ok_or("unflag needs an output name")?;
            cmds.unflag(output).map_err(err)?;
            println!("unflagged {output}");
        }
        "review" => {
            print!("{}", cmds.review_flagged().map_err(err)?.render());
        }
        "stale" => {
            // The journaling variant: flagged entries also land in the
            // event journal, so `tail` shows when staleness was noticed.
            let entries = cmds
                .stale_journaled(rest.first().map(String::as_str))
                .map_err(err)?;
            print!("{}", cmds.render_stale(&entries));
        }
        "export-trace" => {
            let id: u64 = rest
                .first()
                .ok_or("export-trace needs a run id")?
                .parse()
                .map_err(|_| "run id must be a number".to_string())?;
            let mut format = TraceFormat::Chrome;
            let mut out_path: Option<String> = None;
            let mut i = 1;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--format" => {
                        let name = rest.get(i + 1).ok_or("--format needs a value")?;
                        format = TraceFormat::parse(name)
                            .ok_or_else(|| format!("unknown trace format '{name}'"))?;
                        i += 2;
                    }
                    "--out" => {
                        out_path = Some(rest.get(i + 1).ok_or("--out needs a path")?.clone());
                        i += 2;
                    }
                    other => return Err(format!("unknown export-trace option '{other}'")),
                }
            }
            let trace = export_trace(store.as_ref(), RunId(id), format).map_err(err)?;
            match out_path {
                Some(path) => {
                    std::fs::write(&path, &trace).map_err(|e| format!("write {path}: {e}"))?;
                    println!("wrote trace for run#{id} to {path}");
                }
                None => println!("{trace}"),
            }
        }
        "health" => {
            let report = mltrace::core::health_report(&ml, 30, 5).map_err(err)?;
            print!("{}", report.render());
        }
        "telemetry" => {
            // Accumulated engine telemetry from previous invocations plus
            // whatever this process has recorded so far (the WAL replay).
            // The lenient loader tolerates a sidecar another invocation is
            // mid-write on: it salvages the complete prefix and says so.
            let (mut snap, warning) = TelemetrySnapshot::load_file_lenient(telemetry_sidecar(&db));
            if let Some(w) = warning {
                eprintln!("warning: {w}; starting from the salvaged prefix");
            }
            snap.merge(&ml.telemetry().snapshot());
            // Live monitoring-plane series ride along as pipeline gauges
            // (`mltrace_pipeline_*` under --prometheus).
            snap.merge(&plane_gauges(&store));
            if rest.first().map(String::as_str) == Some("--prometheus") {
                print!("{}", snap.render_prometheus());
            } else {
                print!("{}", snap.render_human());
            }
        }
        "diagnose" => match rest.first().map(String::as_str) {
            Some("--run-id") => {
                let id: u64 = rest
                    .get(1)
                    .ok_or("--run-id requires a run id")?
                    .parse()
                    .map_err(|_| "run id must be a number".to_string())?;
                let graph = build_graph(store.as_ref()).map_err(err)?;
                let d = diagnose_run(store.as_ref(), &graph, id).map_err(err)?;
                print!("{}", d.render());
            }
            Some(key) => {
                let d = diagnose_key(store.as_ref(), key).map_err(err)?;
                print!("{}", d.render());
            }
            None => {
                let diagnoses = diagnose_open_incidents(store.as_ref()).map_err(err)?;
                if diagnoses.is_empty() {
                    println!("no unresolved incidents to diagnose");
                }
                for d in diagnoses {
                    print!("{}", d.render());
                }
            }
        },
        "sql" => {
            let query = rest.first().ok_or("sql needs a query string")?;
            let result = execute(store.as_ref(), query).map_err(err)?;
            print!("{}", result.render());
        }
        "explain" => {
            let query = rest.first().ok_or("explain needs a query string")?;
            let result = execute(store.as_ref(), &format!("EXPLAIN {query}")).map_err(err)?;
            print!("{}", result.render());
        }
        "stats" => {
            let s = store.stats().map_err(err)?;
            println!("components:    {}", s.components);
            println!("runs:          {}", s.runs);
            println!("io pointers:   {}", s.io_pointers);
            println!("metric points: {}", s.metric_points);
            println!("rollups:       {}", s.summaries);
            println!("runs removed:  {}", s.runs_removed);
            println!("events:        {}", s.events);
            println!("incidents:     {}", s.incidents);
            // Incident lifecycle at a glance: how many pages are still
            // waiting on a human, and how many have a diagnosis ranked.
            let incidents = store.incidents().map_err(err)?;
            let phase =
                |state: IncidentState| incidents.iter().filter(|i| i.state == state).count();
            println!(
                "  open {} / acknowledged {} / resolved {}",
                phase(IncidentState::Open),
                phase(IncidentState::Acknowledged),
                phase(IncidentState::Resolved)
            );
            println!("diagnoses:     {}", s.diagnoses);
            let fp = store.footprint().map_err(err)?;
            println!("active wal:    {} bytes", fp.active_bytes);
            println!(
                "wal segments:  {} ({} bytes)",
                fp.segment_count, fp.segment_bytes
            );
            println!("snapshot:      {} bytes", fp.snapshot_bytes);
            println!("since ckpt:    {} events", fp.events_since_checkpoint);
            // Row counts per SQL table, as the query layer names them.
            let monitor_rows = store.monitor_summaries().map(|v| v.len()).unwrap_or(0);
            for (table, rows) in [
                ("component_runs", s.runs),
                ("events", s.events),
                ("metrics", s.metric_points),
                ("summaries", monitor_rows),
                ("rollups", s.summaries),
                ("incidents", s.incidents),
                ("diagnoses", s.diagnoses),
                ("components", s.components),
                ("io_pointers", s.io_pointers),
            ] {
                println!("table {:<16} {rows} rows", table);
            }
            for idx in store.index_footprint().map_err(err)? {
                println!(
                    "index {:<16} {} keys, {} entries, ~{} bytes",
                    idx.name, idx.keys, idx.entries, idx.approx_bytes
                );
            }
        }
        "checkpoint" => {
            let report = store.checkpoint().map_err(err)?;
            if report.wrote_snapshot {
                match report.sealed_seq {
                    Some(seq) => println!(
                        "sealed segment {seq}; snapshot {} bytes, {} events folded",
                        report.snapshot_bytes, report.events_folded
                    ),
                    None => println!(
                        "snapshot {} bytes, {} events folded (no new segment)",
                        report.snapshot_bytes, report.events_folded
                    ),
                }
                println!("cold opens now replay only events logged after this point");
            } else {
                println!(
                    "nothing to checkpoint (snapshot {} bytes already current)",
                    report.snapshot_bytes
                );
            }
        }
        "compact" => {
            let days = if rest.first().map(String::as_str) == Some("--days") {
                parse_num(rest.get(1), 30)? as u64
            } else {
                30
            };
            let report = compact_older_than_days(store.as_ref(), ml.now_ms(), days).map_err(err)?;
            println!(
                "compacted {} runs into {} windows; rewriting log...",
                report.runs_compacted, report.windows_written
            );
            let (before, after) = store.rewrite().map_err(err)?;
            println!("log size {before} → {after} bytes");
        }
        "delete-derived" => {
            let output = rest.first().ok_or("delete-derived needs an output name")?;
            let report =
                delete_derived(store.as_ref(), std::slice::from_ref(output), true).map_err(err)?;
            println!(
                "deleted {} runs and {} pointers derived from {output}",
                report.runs_deleted, report.pointers_deleted
            );
            if !report.components_needing_rerun.is_empty() {
                println!(
                    "components needing a rerun: {:?}",
                    report.components_needing_rerun
                );
            }
            let (before, after) = store.rewrite().map_err(err)?;
            println!("log size {before} → {after} bytes");
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => return Err(format!("unknown command '{other}' (try: mltrace help)")),
    }
    store.sync().map_err(err)?;
    persist_telemetry(&db, &ml.telemetry().snapshot());
    Ok(())
}

/// Sidecar file accumulating engine telemetry across CLI invocations.
fn telemetry_sidecar(db: &str) -> String {
    format!("{db}.telemetry")
}

/// Fold this process's telemetry into the sidecar (load → merge → save),
/// under the sidecar's advisory file lock so concurrent invocations
/// serialize instead of dropping each other's counters. Telemetry loss
/// is never fatal: a corrupt sidecar degrades to its salvageable prefix
/// (or empty), mirroring how the WAL treats a torn tail, and errors on
/// lock or save are swallowed.
fn persist_telemetry(db: &str, live: &TelemetrySnapshot) {
    mltrace::telemetry::sidecar::merge_into_file(telemetry_sidecar(db), live);
}

/// `serve`: run the multi-client TCP front-end over one exclusively-held
/// store until Ctrl-C, SIGTERM, or a protocol Shutdown request, then
/// drain both work queues and fsync the WAL before exiting. Serve-mode
/// durability defaults to `onsync`: the server's ingest coalescer issues
/// one sync per merged cross-connection batch, which is what turns N
/// concurrent writers into group commits instead of N fsyncs.
fn serve(db: &str, rest: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut durability = DurabilityPolicy::OnSync;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                cfg.addr = rest.get(i + 1).ok_or("--addr needs host:port")?.clone();
                i += 2;
            }
            "--workers" => {
                cfg.workers =
                    parse_num(Some(rest.get(i + 1).ok_or("--workers needs a number")?), 0)?;
                i += 2;
            }
            "--max-inflight" => {
                let n = parse_num(
                    Some(rest.get(i + 1).ok_or("--max-inflight needs a number")?),
                    64,
                )?;
                if n == 0 {
                    return Err("--max-inflight must be at least 1".into());
                }
                cfg.max_inflight = n;
                i += 2;
            }
            "--coalesce-ms" => {
                cfg.coalesce_ms = parse_num(
                    Some(rest.get(i + 1).ok_or("--coalesce-ms needs a number")?),
                    2,
                )? as u64;
                i += 2;
            }
            "--coalesce-max" => {
                let n = parse_num(
                    Some(rest.get(i + 1).ok_or("--coalesce-max needs a number")?),
                    256,
                )?;
                if n == 0 {
                    return Err("--coalesce-max must be at least 1".into());
                }
                cfg.coalesce_max = n;
                i += 2;
            }
            "--durability" => {
                let name = rest.get(i + 1).ok_or("--durability needs a policy")?;
                durability = DurabilityPolicy::parse(name).ok_or_else(|| {
                    format!("unknown durability '{name}' (every|onsync|batch:N|interval:MS)")
                })?;
                i += 2;
            }
            other => return Err(format!("unknown serve option '{other}'")),
        }
    }
    install_handlers();
    let store =
        Arc::new(WalStore::open_with(db, durability).map_err(|e| format!("open {db}: {e}"))?);
    if store.recovered() {
        eprintln!(
            "warning: {db}: torn write from a previous crash truncated away; \
             the log is consistent up to the last complete record"
        );
    }
    let server = Server::bind(store.clone(), cfg.clone()).map_err(err)?;
    let addr = server.local_addr().map_err(err)?;
    eprintln!(
        "serving {db} on {addr} (workers {}, max-inflight {}, durability {:?}) — Ctrl-C to stop",
        if cfg.workers == 0 {
            "auto".to_string()
        } else {
            cfg.workers.to_string()
        },
        cfg.max_inflight,
        durability,
    );
    server.run().map_err(err)?;
    // run() returned: queues are drained and the WAL is fsynced. Fold the
    // session's telemetry (server.* counters included) into the sidecar.
    if let Some(t) = store.telemetry() {
        persist_telemetry(db, &t.snapshot());
    }
    eprintln!("shut down cleanly: ingest drained, WAL flushed and fsynced");
    Ok(())
}

/// `bench-load`: the E18 client-side load harness (see
/// [`mltrace::client::load`]). Needs a `serve` process to aim at.
fn bench_load(rest: &[String]) -> Result<(), String> {
    let mut cfg = LoadConfig::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                cfg.addr = rest.get(i + 1).ok_or("--addr needs host:port")?.clone();
                i += 2;
            }
            "--writers" => {
                cfg.writers =
                    parse_num(Some(rest.get(i + 1).ok_or("--writers needs a number")?), 4)?;
                i += 2;
            }
            "--readers" => {
                cfg.readers =
                    parse_num(Some(rest.get(i + 1).ok_or("--readers needs a number")?), 2)?;
                i += 2;
            }
            "--runs" => {
                cfg.runs_per_writer =
                    parse_num(Some(rest.get(i + 1).ok_or("--runs needs a number")?), 500)?;
                i += 2;
            }
            "--batch" => {
                cfg.batch = parse_num(Some(rest.get(i + 1).ok_or("--batch needs a number")?), 8)?;
                i += 2;
            }
            "--metrics" => {
                cfg.metrics_per_batch =
                    parse_num(Some(rest.get(i + 1).ok_or("--metrics needs a number")?), 4)?;
                i += 2;
            }
            "--prefix" => {
                cfg.component_prefix = rest.get(i + 1).ok_or("--prefix needs a name")?.clone();
                i += 2;
            }
            "--retry-busy" => {
                cfg.retry_busy = true;
                i += 1;
            }
            "--pipeline" => {
                cfg.pipeline =
                    parse_num(Some(rest.get(i + 1).ok_or("--pipeline needs a number")?), 1)?.max(1);
                i += 2;
            }
            other => return Err(format!("unknown bench-load option '{other}'")),
        }
    }
    let report = run_load(&cfg).map_err(err)?;
    println!("{}", report.render());
    Ok(())
}

/// Parse `tail` options into (filter, limit, follow, poll interval).
fn parse_tail_args(rest: &[String]) -> Result<(EventFilter, usize, bool, u64), String> {
    let mut filter = EventFilter::all();
    let mut limit = 20usize;
    let mut follow = false;
    let mut poll_ms = 250u64;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--limit" => {
                limit = parse_num(Some(rest.get(i + 1).ok_or("--limit needs a number")?), 20)?;
                i += 2;
            }
            "--kind" => {
                let name = rest.get(i + 1).ok_or("--kind needs a value")?;
                let kind = EventKind::from_name(name)
                    .ok_or_else(|| format!("unknown event kind '{name}'"))?;
                filter = filter.with_kind(kind);
                i += 2;
            }
            "--severity" => {
                let name = rest.get(i + 1).ok_or("--severity needs a value")?;
                let sev = EventSeverity::from_name(name)
                    .ok_or_else(|| format!("unknown severity '{name}' (info|warn|page)"))?;
                filter = filter.with_severity(sev);
                i += 2;
            }
            "--since-ms" => {
                let t = parse_num(Some(rest.get(i + 1).ok_or("--since-ms needs a number")?), 0)?;
                filter = filter.at_or_after(t as u64);
                i += 2;
            }
            "--until-ms" => {
                let t = parse_num(Some(rest.get(i + 1).ok_or("--until-ms needs a number")?), 0)?;
                filter = filter.at_or_before(t as u64);
                i += 2;
            }
            "--follow" | "-f" => {
                follow = true;
                i += 1;
            }
            "--poll-ms" => {
                let n = parse_num(
                    Some(rest.get(i + 1).ok_or("--poll-ms needs a number")?),
                    250,
                )?;
                if n == 0 {
                    return Err("--poll-ms must be at least 1".into());
                }
                poll_ms = n as u64;
                i += 2;
            }
            other => return Err(format!("unknown tail option '{other}'")),
        }
    }
    Ok((filter, limit, follow, poll_ms))
}

/// `tail`: print the last `limit` matching journal events straight from
/// the on-disk log family (snapshot, sealed segments, active log), without
/// replaying the store. Zone maps let a filtered tail skip whole sealed
/// segments — and the snapshot — without decoding them; the skip counts
/// land in the telemetry sidecar as `wal.segments_pruned_total`.
fn tail(db: &str, rest: &[String]) -> Result<(), String> {
    let (filter, limit, follow, poll_ms) = parse_tail_args(rest)?;
    let registry = Telemetry::new();
    let read = read_journal(db, &filter, Some(limit), Some(&registry)).map_err(err)?;
    for e in &read.events {
        println!("{}", e.render_line());
    }
    if read.segments_pruned > 0 || read.snapshot_pruned {
        eprintln!(
            "(skipped {} of {} sealed segments{} via zone maps)",
            read.segments_pruned,
            read.segments_total,
            if read.snapshot_pruned {
                " and the snapshot"
            } else {
                ""
            }
        );
    }
    persist_telemetry(db, &registry.snapshot());
    if follow {
        follow_journal(db, &filter, poll_ms)?;
    }
    Ok(())
}

/// Stream newly-journaled events from the WAL until interrupted. Reads
/// the log directly (no store locks), so it observes appends made by
/// other mltrace processes, and follows the journal across checkpoint
/// rollovers: when the active log is sealed into a segment mid-follow,
/// the follower drains the rest of the segment before continuing into the
/// fresh active log. Sealed segments whose zone footer excludes the
/// filter are skipped without decoding.
fn follow_journal(db: &str, filter: &EventFilter, poll_ms: u64) -> Result<(), String> {
    install_handlers();
    let mut follower = JournalFollower::from_end(db)
        .map_err(err)?
        .with_filter(filter.clone());
    while !shutdown_requested() {
        sleep_interruptible(poll_ms);
        for e in follower.poll().map_err(err)? {
            println!("{}", e.render_line());
        }
    }
    // Ctrl-C: the follower only reads, so a clean exit needs no flush —
    // but drain one final poll so nothing already journaled is missed.
    for e in follower.poll().map_err(err)? {
        println!("{}", e.render_line());
    }
    eprintln!("(interrupted — tail exiting cleanly)");
    Ok(())
}

/// Sleep up to `ms`, waking early if Ctrl-C/SIGTERM arrives, so follow
/// loops with long poll intervals still exit promptly.
fn sleep_interruptible(ms: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
    while !shutdown_requested() {
        let now = std::time::Instant::now();
        if now >= deadline {
            return;
        }
        let quantum = std::cmp::min(std::time::Duration::from_millis(50), deadline - now);
        std::thread::sleep(quantum);
    }
}

/// `monitor`: render the monitoring plane's per-(component, metric)
/// streaming summaries. `--watch` reopens the store each tick, so the
/// view tracks appends made by other mltrace processes (the plane is
/// rebuilt from the log on every open).
fn monitor(db: &str, rest: &[String]) -> Result<(), String> {
    let mut component: Option<String> = None;
    let mut metric: Option<String> = None;
    let mut watch = false;
    let mut poll_ms = 1000u64;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--component" => {
                component = Some(rest.get(i + 1).ok_or("--component needs a name")?.clone());
                i += 2;
            }
            "--metric" => {
                metric = Some(rest.get(i + 1).ok_or("--metric needs a name")?.clone());
                i += 2;
            }
            "--watch" | "-w" => {
                watch = true;
                i += 1;
            }
            "--poll-ms" => {
                let n = parse_num(
                    Some(rest.get(i + 1).ok_or("--poll-ms needs a number")?),
                    1000,
                )?;
                if n == 0 {
                    return Err("--poll-ms must be at least 1".into());
                }
                poll_ms = n as u64;
                i += 2;
            }
            other => return Err(format!("unknown monitor option '{other}'")),
        }
    }
    if watch {
        install_handlers();
    }
    loop {
        let store = WalStore::open(db).map_err(|e| format!("open {db}: {e}"))?;
        let summaries: Vec<_> = store
            .monitor_summaries()
            .map_err(err)?
            .into_iter()
            .filter(|s| component.as_deref().is_none_or(|c| s.component == c))
            .filter(|s| metric.as_deref().is_none_or(|m| s.metric == m))
            .collect();
        if summaries.is_empty() {
            println!("(no monitored series match)");
        } else {
            println!(
                "{:<14} {:<18} {:>4} {:>8} {:>10} {:>10} {:>10} {:>6} {:>6} {:<12}",
                "component",
                "metric",
                "win",
                "count",
                "mean",
                "p50",
                "p95",
                "null%",
                "drift",
                "method"
            );
            for s in &summaries {
                println!(
                    "{:<14} {:<18} {:>4} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>6.2} {:>6.3} {:<12}",
                    s.component,
                    s.metric,
                    s.windows,
                    s.count,
                    s.mean,
                    s.p50,
                    s.p95,
                    s.null_rate * 100.0,
                    s.drift_score,
                    if s.drift_method.is_empty() {
                        "-"
                    } else {
                        &s.drift_method
                    }
                );
            }
        }
        if !watch || shutdown_requested() {
            // Flush before exit: the open above replays the log and may
            // have appended monitoring-plane output; make it durable.
            store.sync().map_err(err)?;
            if watch {
                eprintln!("(interrupted — monitor exiting cleanly)");
            }
            return Ok(());
        }
        drop(store);
        println!();
        sleep_interruptible(poll_ms);
    }
}

/// Snapshot the monitoring plane as `pipeline.<component>.<metric>.*`
/// gauges for Prometheus exposition. The telemetry gauge is integral, so
/// fractional stats export milli-scaled (`mean_milli` = mean × 1000).
fn plane_gauges(store: &WalStore) -> TelemetrySnapshot {
    let t = Telemetry::new();
    let milli = |f: f64| {
        if f.is_finite() {
            (f * 1000.0) as i64
        } else {
            0
        }
    };
    for s in store.monitor_summaries().unwrap_or_default() {
        let base = format!("pipeline.{}.{}", s.component, s.metric);
        t.gauge(&format!("{base}.count")).set(s.count as i64);
        t.gauge(&format!("{base}.windows")).set(s.windows as i64);
        t.gauge(&format!("{base}.mean_milli")).set(milli(s.mean));
        t.gauge(&format!("{base}.p95_milli")).set(milli(s.p95));
        t.gauge(&format!("{base}.null_rate_milli"))
            .set(milli(s.null_rate));
        t.gauge(&format!("{base}.drift_score_milli"))
            .set(milli(s.drift_score));
    }
    t.snapshot()
}

fn demo(db: &str, rest: &[String]) -> Result<(), String> {
    let batches = if rest.first().map(String::as_str) == Some("--batches") {
        parse_num(rest.get(1), 5)?
    } else {
        5
    };
    println!("simulating the taxi demo pipeline ({batches} serving batches)...");
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(2000, Incident::None).map_err(err)?;
    let train = p.train(&df, true).map_err(err)?;
    println!("trained: test accuracy {:.3}", train.test_accuracy);
    for b in 0..batches {
        // Two scripted faults: a NULL spike in the raw data mid-stream
        // (Example 4.1) and online/offline feature skew on the final
        // batch (Example 4.3). The skew deterministically craters
        // accuracy, so the monitor's SLA page — and the incident it
        // opens — always shows up in the journal.
        let ingest_incident = if b == batches / 2 && batches > 1 {
            Incident::NullSpike { fraction: 0.4 }
        } else {
            Incident::None
        };
        let serve_opts = ServeOptions {
            incident: if b + 1 == batches {
                Incident::ServeSkew { scale: 1000.0 }
            } else {
                Incident::None
            },
            ..ServeOptions::default()
        };
        let r = p
            .ingest_and_serve(300, ingest_incident, serve_opts)
            .map_err(err)?;
        let m = p.monitor().map_err(err)?;
        if m.alerts.is_empty() {
            println!("batch {}: accuracy {:.3}", r.batch, r.accuracy);
        } else {
            println!(
                "batch {}: accuracy {:.3}  PAGED {:?}",
                r.batch, r.accuracy, m.alerts
            );
        }
    }
    // Replay the in-memory log into the WAL file.
    let wal = WalStore::open(db).map_err(|e| format!("open {db}: {e}"))?;
    let mem = p.ml().store();
    for c in mem.components().map_err(err)? {
        wal.register_component(c).map_err(err)?;
    }
    for ptr in mem.io_pointers().map_err(err)? {
        let flagged = ptr.flag;
        let name = ptr.name.clone();
        wal.upsert_io_pointer(ptr).map_err(err)?;
        if flagged {
            wal.set_flag(&name, true).map_err(err)?;
        }
    }
    for id in mem.run_ids().map_err(err)? {
        if let Some(run) = mem.run(id).map_err(err)? {
            wal.log_run(run).map_err(err)?;
        }
    }
    for c in mem.components().map_err(err)? {
        for metric in mem.metric_names(&c.name).map_err(err)? {
            for point in mem.metrics(&c.name, &metric).map_err(err)? {
                wal.log_metric(point).map_err(err)?;
            }
        }
    }
    // Journal events and incidents ride along too, so `tail`,
    // `export-trace`, and the events/incidents SQL tables work against
    // the replayed log. `log_events` re-assigns ids in scan order, which
    // preserves the original emission order. Drift events and drift
    // incidents are NOT copied: the WAL-side monitoring plane already
    // regenerated them from the replayed metric stream above, and copying
    // the in-memory ones would double every drift signal.
    let events: Vec<_> = mem
        .scan_events(None, &EventFilter::all(), None)
        .map_err(err)?
        .into_iter()
        .filter(|e| {
            e.kind != EventKind::DriftScored
                && !(e.kind == EventKind::IncidentOpened
                    && matches!(e.payload.get("key"),
                        Some(Value::Str(k)) if k.starts_with("drift:")))
        })
        .collect();
    wal.log_events(events).map_err(err)?;
    for incident in mem.incidents().map_err(err)? {
        if incident.key.starts_with("drift:") {
            continue;
        }
        wal.upsert_incident(incident).map_err(err)?;
    }
    // Close the detect → diagnose loop on the replayed log: rank
    // root-cause suspects for every incident still unresolved after
    // replay (the final batch's ServeSkew page among them) and print the
    // evidence chains, so the demo ends at the answer, not the alert.
    let diagnoses = diagnose_open_incidents(&wal).map_err(err)?;
    for d in &diagnoses {
        print!("{}", d.render());
    }
    wal.sync().map_err(err)?;
    // Persist model/featurizer payloads beside the WAL so `trace` +
    // artifact inspection work after the demo process exits.
    p.ml()
        .artifacts()
        .write_snapshot(format!("{db}.artifacts"))
        .map_err(err)?;
    // Fold both registries into the sidecar: the in-memory pipeline's
    // (component_run spans, store.log_run_bundle) and the WAL's
    // (wal.append_all, fsyncs) — so `mltrace telemetry` can report on the
    // demo afterwards.
    let mut live = p.ml().telemetry().snapshot();
    if let Some(t) = wal.telemetry() {
        live.merge(&t.snapshot());
    }
    // The WAL-side plane just rebuilt from the replayed metrics; persist
    // its per-series gauges so `telemetry --prometheus` reports them.
    live.merge(&plane_gauges(&wal));
    persist_telemetry(db, &live);
    let stats = wal.stats().map_err(err)?;
    println!(
        "wrote {} runs / {} metric points / {} journal events to {db}; \
         try `mltrace --db {db} recent` or `mltrace --db {db} tail`",
        stats.runs, stats.metric_points, stats.events
    );
    Ok(())
}

fn parse_num(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| format!("expected a number, got '{s}'")),
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}
