//! The mltrace command-line UI: the paper's eight query commands plus
//! ad-hoc SQL and maintenance operations, over a WAL-backed run log.
//!
//! ```text
//! mltrace --db obs.wal demo --batches 5     # simulate the taxi pipeline into the log
//! mltrace --db obs.wal recent 10
//! mltrace --db obs.wal history inference
//! mltrace --db obs.wal trace predictions-3.csv
//! mltrace --db obs.wal inspect 12
//! mltrace --db obs.wal flag pred-17 && mltrace --db obs.wal review
//! mltrace --db obs.wal stale
//! mltrace --db obs.wal sql "SELECT component, count(*) FROM runs GROUP BY component"
//! mltrace --db obs.wal compact --days 30
//! mltrace --db obs.wal delete-derived clean_trips-0.csv
//! mltrace --db obs.wal stats
//! ```

use mltrace::core::{Commands, Mltrace};
use mltrace::query::execute;
use mltrace::store::deletion::delete_derived;
use mltrace::store::retention::compact_older_than_days;
use mltrace::store::{Store, WalStore};
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};
use mltrace::telemetry::TelemetrySnapshot;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
mltrace — observability for ML pipelines

USAGE: mltrace [--db <path>] <command> [args]

COMMANDS
  components                 list registered components
  recent [n]                 latest runs across all components (default 10)
  history <component> [n]    run history with metrics and trigger outcomes
  trace <output>             lineage tree of an output pointer
  inspect <run_id>           full ComponentRun record
  flag <output>              mark an output for review
  unflag <output>            clear a review flag
  review                     rank component runs across flagged traces
  stale [component]          staleness of the latest run(s)
  health                     one-screen pipeline health summary
  telemetry [--prometheus]   the engine's own counters and latency histograms
  sql <query>                ad-hoc SQL over the log tables
  stats                      record counts
  compact --days <n>         fold runs older than n days into summaries
  delete-derived <output>    GDPR: purge everything derived from <output>
  demo [--batches <n>]       simulate the taxi demo pipeline into the log

OPTIONS
  --db <path>                WAL file (default: mltrace.wal)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    let mut db = "mltrace.wal".to_string();
    if args.first().map(String::as_str) == Some("--db") {
        if args.len() < 2 {
            return Err("--db requires a path".into());
        }
        db = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = &args[1..];

    // `demo` builds its own in-memory pipeline, then replays its log into
    // the WAL so the other commands have something real to query.
    if command == "demo" {
        return demo(&db, rest);
    }

    let store = Arc::new(WalStore::open(&db).map_err(|e| format!("open {db}: {e}"))?);
    if store.recovered() {
        eprintln!(
            "warning: {db}: torn write from a previous crash truncated away; \
             the log is consistent up to the last complete record"
        );
    }
    let ml = Mltrace::with_store(store.clone(), Arc::new(mltrace::store::SystemClock));
    let mut cmds = Commands::new(&ml);

    match command.as_str() {
        "components" => {
            for c in store.components().map_err(err)? {
                println!(
                    "{:<24} owner={:<12} tags={:?}  {}",
                    c.name, c.owner, c.tags, c.description
                );
            }
        }
        "recent" => {
            let n = parse_num(rest.first(), 10)?;
            for run in cmds.recent(n).map_err(err)? {
                println!(
                    "{:<8} {:<20} [{}] start={} dur={}ms",
                    run.id.to_string(),
                    run.component,
                    run.status.name(),
                    run.start_ms,
                    run.duration_ms()
                );
            }
        }
        "history" => {
            let component = rest.first().ok_or("history needs a component name")?;
            let n = parse_num(rest.get(1), 10)?;
            print!("{}", cmds.history(component, n).map_err(err)?.render());
        }
        "trace" => {
            let output = rest.first().ok_or("trace needs an output name")?;
            print!("{}", cmds.trace(output).map_err(err)?.render());
        }
        "inspect" => {
            let id: u64 = rest
                .first()
                .ok_or("inspect needs a run id")?
                .parse()
                .map_err(|_| "run id must be a number".to_string())?;
            let run = cmds.inspect(id).map_err(err)?;
            print!("{}", cmds.render_inspect(&run));
        }
        "flag" => {
            let output = rest.first().ok_or("flag needs an output name")?;
            cmds.flag(output).map_err(err)?;
            println!("flagged {output}");
        }
        "unflag" => {
            let output = rest.first().ok_or("unflag needs an output name")?;
            cmds.unflag(output).map_err(err)?;
            println!("unflagged {output}");
        }
        "review" => {
            print!("{}", cmds.review_flagged().map_err(err)?.render());
        }
        "stale" => {
            let entries = cmds.stale(rest.first().map(String::as_str)).map_err(err)?;
            print!("{}", cmds.render_stale(&entries));
        }
        "health" => {
            let report = mltrace::core::health_report(&ml, 30, 5).map_err(err)?;
            print!("{}", report.render());
        }
        "telemetry" => {
            // Accumulated engine telemetry from previous invocations plus
            // whatever this process has recorded so far (the WAL replay).
            let mut snap = TelemetrySnapshot::load_file(telemetry_sidecar(&db)).unwrap_or_default();
            snap.merge(&ml.telemetry().snapshot());
            if rest.first().map(String::as_str) == Some("--prometheus") {
                print!("{}", snap.render_prometheus());
            } else {
                print!("{}", snap.render_human());
            }
        }
        "sql" => {
            let query = rest.first().ok_or("sql needs a query string")?;
            let result = execute(store.as_ref(), query).map_err(err)?;
            print!("{}", result.render());
        }
        "stats" => {
            let s = store.stats().map_err(err)?;
            println!("components:    {}", s.components);
            println!("runs:          {}", s.runs);
            println!("io pointers:   {}", s.io_pointers);
            println!("metric points: {}", s.metric_points);
            println!("summaries:     {}", s.summaries);
            println!("runs removed:  {}", s.runs_removed);
        }
        "compact" => {
            let days = if rest.first().map(String::as_str) == Some("--days") {
                parse_num(rest.get(1), 30)? as u64
            } else {
                30
            };
            let report = compact_older_than_days(store.as_ref(), ml.now_ms(), days).map_err(err)?;
            println!(
                "compacted {} runs into {} windows; rewriting log...",
                report.runs_compacted, report.windows_written
            );
            let (before, after) = store.rewrite().map_err(err)?;
            println!("log size {before} → {after} bytes");
        }
        "delete-derived" => {
            let output = rest.first().ok_or("delete-derived needs an output name")?;
            let report =
                delete_derived(store.as_ref(), std::slice::from_ref(output), true).map_err(err)?;
            println!(
                "deleted {} runs and {} pointers derived from {output}",
                report.runs_deleted, report.pointers_deleted
            );
            if !report.components_needing_rerun.is_empty() {
                println!(
                    "components needing a rerun: {:?}",
                    report.components_needing_rerun
                );
            }
            let (before, after) = store.rewrite().map_err(err)?;
            println!("log size {before} → {after} bytes");
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => return Err(format!("unknown command '{other}' (try: mltrace help)")),
    }
    store.sync().map_err(err)?;
    persist_telemetry(&db, &ml.telemetry().snapshot());
    Ok(())
}

/// Sidecar file accumulating engine telemetry across CLI invocations.
fn telemetry_sidecar(db: &str) -> String {
    format!("{db}.telemetry")
}

/// Fold this process's telemetry into the sidecar (load → merge → save).
/// Telemetry loss is never fatal, so errors are swallowed.
fn persist_telemetry(db: &str, live: &TelemetrySnapshot) {
    let path = telemetry_sidecar(db);
    let mut snap = TelemetrySnapshot::load_file(&path).unwrap_or_default();
    snap.merge(live);
    let _ = snap.save_file(&path);
}

fn demo(db: &str, rest: &[String]) -> Result<(), String> {
    let batches = if rest.first().map(String::as_str) == Some("--batches") {
        parse_num(rest.get(1), 5)?
    } else {
        5
    };
    println!("simulating the taxi demo pipeline ({batches} serving batches)...");
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(2000, Incident::None).map_err(err)?;
    let train = p.train(&df, true).map_err(err)?;
    println!("trained: test accuracy {:.3}", train.test_accuracy);
    for b in 0..batches {
        let incident = if b == batches / 2 {
            Incident::NullSpike { fraction: 0.4 }
        } else {
            Incident::None
        };
        let r = p
            .ingest_and_serve(300, incident, ServeOptions::default())
            .map_err(err)?;
        println!("batch {}: accuracy {:.3}", r.batch, r.accuracy);
        p.monitor().map_err(err)?;
    }
    // Replay the in-memory log into the WAL file.
    let wal = WalStore::open(db).map_err(|e| format!("open {db}: {e}"))?;
    let mem = p.ml().store();
    for c in mem.components().map_err(err)? {
        wal.register_component(c).map_err(err)?;
    }
    for ptr in mem.io_pointers().map_err(err)? {
        let flagged = ptr.flag;
        let name = ptr.name.clone();
        wal.upsert_io_pointer(ptr).map_err(err)?;
        if flagged {
            wal.set_flag(&name, true).map_err(err)?;
        }
    }
    for id in mem.run_ids().map_err(err)? {
        if let Some(run) = mem.run(id).map_err(err)? {
            wal.log_run(run).map_err(err)?;
        }
    }
    for c in mem.components().map_err(err)? {
        for metric in mem.metric_names(&c.name).map_err(err)? {
            for point in mem.metrics(&c.name, &metric).map_err(err)? {
                wal.log_metric(point).map_err(err)?;
            }
        }
    }
    wal.sync().map_err(err)?;
    // Persist model/featurizer payloads beside the WAL so `trace` +
    // artifact inspection work after the demo process exits.
    p.ml()
        .artifacts()
        .write_snapshot(format!("{db}.artifacts"))
        .map_err(err)?;
    // Fold both registries into the sidecar: the in-memory pipeline's
    // (component_run spans, store.log_run_bundle) and the WAL's
    // (wal.append_all, fsyncs) — so `mltrace telemetry` can report on the
    // demo afterwards.
    let mut live = p.ml().telemetry().snapshot();
    if let Some(t) = wal.telemetry() {
        live.merge(&t.snapshot());
    }
    persist_telemetry(db, &live);
    let stats = wal.stats().map_err(err)?;
    println!(
        "wrote {} runs / {} metric points to {db}; try `mltrace --db {db} recent`",
        stats.runs, stats.metric_points
    );
    Ok(())
}

fn parse_num(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| format!("expected a number, got '{s}'")),
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}
