//! # mltrace
//!
//! Facade crate re-exporting the full public API of the mltrace-rs
//! workspace. See the individual crates for details.
#![warn(missing_docs)]

pub use mltrace_client as client;
pub use mltrace_core as core;
pub use mltrace_metrics as metrics;
pub use mltrace_pipeline as pipeline;
pub use mltrace_protocol as protocol;
pub use mltrace_provenance as provenance;
pub use mltrace_query as query;
pub use mltrace_server as server;
pub use mltrace_store as store;
pub use mltrace_taxi as taxi;
pub use mltrace_telemetry as telemetry;
