//! Extended trigger library — the coverage dimension of §5.2 ("our
//! library of predefined components needs to have both high *coverage*
//! and *accuracy* for the kinds of tests and metrics users will want").
//!
//! These checks complement [`crate::library`]: schema conformance, value
//! ranges, class balance, run-over-run volume deltas, input freshness,
//! and prediction sanity.

use crate::trigger::{Trigger, TriggerContext, TriggerOutcome};
use mltrace_store::{Value, MS_PER_DAY};

/// Verifies a captured map has all required keys (schema conformance for
/// loosely-typed component boundaries).
pub struct SchemaTrigger {
    /// Captured variable holding a [`Value::Map`].
    pub var: String,
    /// Keys that must be present.
    pub required: Vec<String>,
}

impl Trigger for SchemaTrigger {
    fn name(&self) -> &str {
        "schema_check"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(Value::Map(map)) = ctx.capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' is not a captured map", self.var));
        };
        let missing: Vec<&str> = self
            .required
            .iter()
            .filter(|k| !map.contains_key(k.as_str()))
            .map(String::as_str)
            .collect();
        if missing.is_empty() {
            TriggerOutcome::pass(format!(
                "all {} required fields present",
                self.required.len()
            ))
        } else {
            TriggerOutcome::fail(format!("missing fields: {missing:?}"))
        }
        .with_value("missing_count", missing.len())
    }
}

/// Verifies every value of a captured numeric list lies in `[lo, hi]`.
pub struct RangeTrigger {
    /// Captured variable to check.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Trigger for RangeTrigger {
    fn name(&self) -> &str {
        "range_check"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(values) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let violations = values
            .iter()
            .filter(|v| v.is_finite() && (**v < self.lo || **v > self.hi))
            .count();
        if violations == 0 {
            TriggerOutcome::pass(format!("{} within [{}, {}]", self.var, self.lo, self.hi))
        } else {
            TriggerOutcome::fail(format!(
                "{violations} values of {} outside [{}, {}]",
                self.var, self.lo, self.hi
            ))
        }
        .with_value("violations", violations)
        .with_metric(format!("range_violations:{}", self.var), violations as f64)
    }
}

/// Verifies the positive-class fraction of a captured boolean/0-1 list
/// stays inside a band — degenerate label balance is the classic silent
/// training failure.
pub struct ClassBalanceTrigger {
    /// Captured variable holding labels (0/1 or bool).
    pub var: String,
    /// Minimum tolerated positive fraction.
    pub min_positive: f64,
    /// Maximum tolerated positive fraction.
    pub max_positive: f64,
}

impl Trigger for ClassBalanceTrigger {
    fn name(&self) -> &str {
        "class_balance"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(values) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let finite: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return TriggerOutcome::fail(format!("variable '{}' is empty", self.var));
        }
        let positive = finite.iter().filter(|&&v| v >= 0.5).count() as f64 / finite.len() as f64;
        let ok = positive >= self.min_positive && positive <= self.max_positive;
        let outcome = if ok {
            TriggerOutcome::pass(format!("positive fraction {positive:.3}"))
        } else {
            TriggerOutcome::fail(format!(
                "positive fraction {positive:.3} outside [{}, {}]",
                self.min_positive, self.max_positive
            ))
        };
        outcome
            .with_value("positive_fraction", positive)
            .with_metric(format!("positive_fraction:{}", self.var), positive)
    }
}

/// Compares a captured row count against the trailing history of the same
/// metric: volume collapses and explosions both page. Passes until enough
/// history exists.
pub struct VolumeDeltaTrigger {
    /// Captured variable holding this run's count.
    pub var: String,
    /// Metric series carrying historical counts (logged by this trigger).
    pub metric: String,
    /// Maximum tolerated ratio to the trailing mean (e.g. 2.0 = double).
    pub max_ratio: f64,
    /// Trailing points to average.
    pub window: usize,
}

impl Trigger for VolumeDeltaTrigger {
    fn name(&self) -> &str {
        "volume_delta"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(current) = ctx.capture(&self.var).and_then(Value::as_f64) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let history = ctx.metric_history(&self.metric);
        let tail: Vec<f64> = history
            .iter()
            .rev()
            .take(self.window.max(1))
            .map(|&(_, v)| v)
            .collect();
        let outcome = if tail.is_empty() {
            TriggerOutcome::pass("no volume history yet")
        } else {
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            if mean <= 0.0 {
                TriggerOutcome::pass("degenerate history, skipping")
            } else {
                let ratio = current / mean;
                if ratio <= self.max_ratio && ratio >= 1.0 / self.max_ratio {
                    TriggerOutcome::pass(format!("volume ratio {ratio:.2} vs trailing mean"))
                } else {
                    TriggerOutcome::fail(format!(
                        "volume ratio {ratio:.2} outside [{:.2}, {:.2}]",
                        1.0 / self.max_ratio,
                        self.max_ratio
                    ))
                }
                .with_value("ratio", ratio)
            }
        };
        outcome.with_metric(self.metric.clone(), current)
    }
}

/// Verifies a prior run of an upstream component exists within a
/// freshness horizon — the *proactive* side of the staleness definition
/// (§3.1), failing before a run consumes months-old inputs.
pub struct FreshInputTrigger {
    /// Upstream component whose latest run is checked.
    pub upstream: String,
    /// Maximum tolerated age in days.
    pub max_age_days: f64,
}

impl Trigger for FreshInputTrigger {
    fn name(&self) -> &str {
        "fresh_input"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        // Materialized history of the upstream component: reuse any metric
        // series to locate its last activity; fall back to run list.
        let history = ctx.other_component_metric(&self.upstream, "rows");
        let last_ms = history.last().map(|&(ts, _)| ts);
        let Some(last_ms) = last_ms else {
            return TriggerOutcome::fail(format!(
                "no recorded activity for upstream '{}'",
                self.upstream
            ));
        };
        let age_days = ctx.now_ms.saturating_sub(last_ms) as f64 / MS_PER_DAY as f64;
        if age_days <= self.max_age_days {
            TriggerOutcome::pass(format!(
                "upstream '{}' refreshed {age_days:.1} days ago",
                self.upstream
            ))
        } else {
            TriggerOutcome::fail(format!(
                "upstream '{}' is {age_days:.1} days old (limit {})",
                self.upstream, self.max_age_days
            ))
        }
        .with_value("age_days", age_days)
    }
}

/// Sanity checks on a captured probability vector: all values in [0, 1]
/// and not collapsed to a constant (a saturated or dead model).
pub struct PredictionSanityTrigger {
    /// Captured variable holding probabilities.
    pub var: String,
    /// Minimum tolerated standard deviation (0 disables the collapse
    /// check).
    pub min_std: f64,
}

impl Trigger for PredictionSanityTrigger {
    fn name(&self) -> &str {
        "prediction_sanity"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(values) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let finite: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return TriggerOutcome::fail("no finite predictions");
        }
        let out_of_unit = finite
            .iter()
            .filter(|&&v| !(0.0..=1.0).contains(&v))
            .count();
        if out_of_unit > 0 {
            return TriggerOutcome::fail(format!("{out_of_unit} probabilities outside [0, 1]"))
                .with_value("out_of_unit", out_of_unit);
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / finite.len() as f64;
        let std = var.sqrt();
        if std < self.min_std {
            TriggerOutcome::fail(format!(
                "prediction distribution collapsed: std {std:.4} < {}",
                self.min_std
            ))
        } else {
            TriggerOutcome::pass(format!("predictions healthy: mean {mean:.3}, std {std:.3}"))
        }
        .with_value("std", std)
        .with_metric(format!("prediction_std:{}", self.var), std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{MemoryStore, MetricRecord, Store};
    use std::collections::BTreeMap;

    fn ctx_with<'a>(
        captures: &'a BTreeMap<String, Value>,
        store: &'a MemoryStore,
        now_ms: u64,
    ) -> TriggerContext<'a> {
        TriggerContext::new("c", captures, &[], &[], now_ms, store)
    }

    fn floats(values: &[f64]) -> Value {
        Value::List(values.iter().map(|&v| Value::Float(v)).collect())
    }

    #[test]
    fn schema_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        let mut record = BTreeMap::new();
        record.insert("fare".to_string(), Value::Float(10.0));
        record.insert("distance".to_string(), Value::Float(2.0));
        caps.insert("row".to_string(), Value::Map(record));
        let ctx = ctx_with(&caps, &store, 0);
        let ok = SchemaTrigger {
            var: "row".into(),
            required: vec!["fare".into(), "distance".into()],
        };
        assert!(ok.run(&ctx).passed);
        let strict = SchemaTrigger {
            var: "row".into(),
            required: vec!["fare".into(), "tip".into()],
        };
        let o = strict.run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["missing_count"], Value::Int(1));
        let wrong = SchemaTrigger {
            var: "ghost".into(),
            required: vec![],
        };
        assert!(!wrong.run(&ctx).passed);
    }

    #[test]
    fn range_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("fares".to_string(), floats(&[3.0, 12.0, 250.0]));
        let ctx = ctx_with(&caps, &store, 0);
        let t = RangeTrigger {
            var: "fares".into(),
            lo: 0.0,
            hi: 200.0,
        };
        let o = t.run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["violations"], Value::Int(1));
        let loose = RangeTrigger {
            var: "fares".into(),
            lo: 0.0,
            hi: 1000.0,
        };
        assert!(loose.run(&ctx).passed);
    }

    #[test]
    fn class_balance_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("labels".to_string(), floats(&[1.0, 0.0, 1.0, 0.0, 1.0]));
        caps.insert("degenerate".to_string(), floats(&[1.0; 10]));
        let ctx = ctx_with(&caps, &store, 0);
        let t = ClassBalanceTrigger {
            var: "labels".into(),
            min_positive: 0.2,
            max_positive: 0.8,
        };
        let o = t.run(&ctx);
        assert!(o.passed);
        assert_eq!(o.values["positive_fraction"], Value::Float(0.6));
        let d = ClassBalanceTrigger {
            var: "degenerate".into(),
            min_positive: 0.2,
            max_positive: 0.8,
        };
        assert!(!d.run(&ctx).passed);
    }

    #[test]
    fn volume_delta_trigger() {
        let store = MemoryStore::new();
        for (ts, v) in [(1u64, 1000.0), (2, 1100.0), (3, 900.0)] {
            store
                .log_metric(MetricRecord {
                    component: "c".into(),
                    run_id: None,
                    name: "row_volume".into(),
                    value: v,
                    ts_ms: ts,
                })
                .unwrap();
        }
        let t = VolumeDeltaTrigger {
            var: "rows".into(),
            metric: "row_volume".into(),
            max_ratio: 2.0,
            window: 3,
        };
        let mut caps = BTreeMap::new();
        caps.insert("rows".to_string(), Value::Float(1050.0));
        let ctx = ctx_with(&caps, &store, 10);
        assert!(t.run(&ctx).passed, "normal volume passes");
        let mut caps = BTreeMap::new();
        caps.insert("rows".to_string(), Value::Float(100.0));
        let ctx = ctx_with(&caps, &store, 10);
        assert!(!t.run(&ctx).passed, "collapse fails");
        let mut caps = BTreeMap::new();
        caps.insert("rows".to_string(), Value::Float(5000.0));
        let ctx = ctx_with(&caps, &store, 10);
        assert!(!t.run(&ctx).passed, "explosion fails");
        // No history: passes.
        let empty = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("rows".to_string(), Value::Float(100.0));
        let ctx = ctx_with(&caps, &empty, 10);
        assert!(t.run(&ctx).passed);
    }

    #[test]
    fn fresh_input_trigger() {
        let store = MemoryStore::new();
        store
            .log_metric(MetricRecord {
                component: "etl".into(),
                run_id: None,
                name: "rows".into(),
                value: 100.0,
                ts_ms: 0,
            })
            .unwrap();
        let caps = BTreeMap::new();
        let t = FreshInputTrigger {
            upstream: "etl".into(),
            max_age_days: 7.0,
        };
        // 3 days later: fresh.
        let ctx = ctx_with(&caps, &store, 3 * MS_PER_DAY);
        assert!(t.run(&ctx).passed);
        // 10 days later: stale.
        let ctx = ctx_with(&caps, &store, 10 * MS_PER_DAY);
        assert!(!t.run(&ctx).passed);
        // Unknown upstream: fail loudly.
        let t = FreshInputTrigger {
            upstream: "ghost".into(),
            max_age_days: 7.0,
        };
        let ctx = ctx_with(&caps, &store, 0);
        assert!(!t.run(&ctx).passed);
    }

    #[test]
    fn prediction_sanity_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("ok".to_string(), floats(&[0.2, 0.8, 0.5, 0.9]));
        caps.insert("collapsed".to_string(), floats(&[0.7; 50]));
        caps.insert("invalid".to_string(), floats(&[0.5, 1.7, -0.1]));
        let ctx = ctx_with(&caps, &store, 0);
        let make = |var: &str| PredictionSanityTrigger {
            var: var.into(),
            min_std: 0.01,
        };
        assert!(make("ok").run(&ctx).passed);
        assert!(!make("collapsed").run(&ctx).passed);
        let o = make("invalid").run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["out_of_unit"], Value::Int(2));
    }
}
