//! # mltrace-core
//!
//! The primary contribution of *"Towards Observability for Machine
//! Learning Pipelines"* (VLDB 2022), reproduced in Rust: a lightweight,
//! platform-agnostic observability layer that wraps existing pipeline
//! code at the component level.
//!
//! * [`component`] — the `Component` abstraction: static metadata plus
//!   `beforeRun`/`afterRun` triggers (§3.2).
//! * [`trigger`] — the trigger contract and execution context, including
//!   materialized history access (§3.4 step 3).
//! * [`library`] — off-the-shelf triggers and component templates (the
//!   paper's component library).
//! * [`execution`] — the execution layer: wraps a component body, runs
//!   triggers (optionally async), infers run dependencies from I/O
//!   identity, snapshots code, and logs the `ComponentRun` (§3.4).
//! * [`staleness`] — the three-part staleness definition (§3.1).
//! * [`graph`] — run-log → provenance-DAG reconstruction.
//! * [`commands`] — the eight UI commands (§5, Figure 4).
//! * [`monitor`] — alerts folded into journaled incident lifecycles.
//! * [`diagnose`] — incident → ranked root-cause suspects across the
//!   lineage graph (§4's debugging walkthroughs, automated).
//! * [`trace_export`] — provenance trees as Chrome / OTLP-JSON traces.

#![warn(missing_docs)]

pub mod commands;
pub mod component;
pub mod diagnose;
pub mod error;
pub mod execution;
pub mod graph;
pub mod health;
pub mod library;
pub mod library_ext;
pub mod monitor;
pub mod staleness;
pub mod trace_export;
pub mod trigger;

pub use commands::{Commands, FlaggedReview, History, HistoryEntry, StaleEntry};
pub use component::{ComponentBuilder, ComponentDef, ComponentRegistry};
pub use diagnose::{
    diagnose_incident, diagnose_key, diagnose_open_incidents, diagnose_run, Diagnosis,
};
pub use error::{CoreError, Result};
pub use execution::{Mltrace, RunContext, RunReport, RunSpec};
pub use graph::{build_graph, GraphCache};
pub use health::{health_report, EngineOverhead, HealthReport};
pub use monitor::PipelineMonitor;
pub use staleness::{StalenessPolicy, StalenessReason};
pub use trace_export::{export_trace, TraceFormat};
pub use trigger::{FnTrigger, Phase, Trigger, TriggerContext, TriggerOutcome, TriggerSpec};
