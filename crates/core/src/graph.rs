//! Bridge from the run log to the provenance DAG: "the system can then
//! reconstruct the pipeline computation DAG" (§2.2). [`build_graph`] does
//! a full rebuild; [`GraphCache`] appends only runs logged since the last
//! build, keeping repeated queries cheap on append-mostly logs.

use crate::error::Result;
use mltrace_provenance::LineageGraph;
use mltrace_store::{ComponentRunRecord, IndexRoute, RunFilter, RunId, RunStatus, Store};

/// Runs fetched per scan batch during a refresh; bounds peak cloned-record
/// memory without giving up the one-lock-per-shard batched read path.
const REFRESH_CHUNK: usize = 4096;

/// Build a lineage graph over every live run in the store.
pub fn build_graph(store: &dyn Store) -> Result<LineageGraph> {
    let mut cache = GraphCache::new();
    cache.refresh(store)?;
    Ok(cache.into_graph())
}

/// Incrementally-maintained lineage graph.
///
/// Deletions (GDPR, compaction) invalidate incremental state; `refresh`
/// detects them via the store's removal counter and falls back to a full
/// rebuild.
pub struct GraphCache {
    graph: LineageGraph,
    last_seen: Option<RunId>,
    runs_removed_at_build: u64,
}

impl Default for GraphCache {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphCache {
    /// Empty cache.
    pub fn new() -> Self {
        GraphCache {
            graph: LineageGraph::new(),
            last_seen: None,
            runs_removed_at_build: 0,
        }
    }

    /// Bring the graph up to date with the store. Appends new runs; full
    /// rebuild when deletions happened since the last refresh.
    pub fn refresh(&mut self, store: &dyn Store) -> Result<()> {
        let removed = store.stats()?.runs_removed;
        if removed != self.runs_removed_at_build {
            self.graph = LineageGraph::new();
            self.last_seen = None;
            self.runs_removed_at_build = removed;
        }
        // Incremental resume: only runs with id > last_seen are missing,
        // which is exactly the id-range secondary index's shape — the
        // candidates come straight off the tail of the id index instead of
        // walking every shard past the cursor.
        if let Some(seen) = self.last_seen {
            let filter = RunFilter::default().with_id_at_or_after(seen.0 + 1);
            let mut cursor = Some(seen);
            // A `None` batch means the store keeps no indexes: fall
            // through to the batched scan below.
            while let Some(batch) = store.scan_runs_indexed(
                cursor,
                &filter,
                Some(REFRESH_CHUNK),
                IndexRoute::IdRange,
            )? {
                let full = batch.len() == REFRESH_CHUNK;
                for run in &batch {
                    self.apply(run);
                }
                cursor = self.last_seen;
                if !full {
                    return Ok(());
                }
            }
        }
        // Batched snapshot scan: one lock acquisition per shard per chunk
        // instead of one point lookup per run. Batches arrive in ascending
        // id order, so producers are inserted before their dependents.
        let graph = &mut self.graph;
        let last_seen = &mut self.last_seen;
        store.scan_runs_chunked(
            *last_seen,
            &RunFilter::default(),
            REFRESH_CHUNK,
            &mut |batch| {
                for run in batch {
                    let deps: Vec<u64> = run.dependencies.iter().map(|d| d.0).collect();
                    graph.add_run(
                        run.id.0,
                        &run.component,
                        run.start_ms,
                        run.status != RunStatus::Success,
                        &run.inputs,
                        &run.outputs,
                        &deps,
                    );
                    *last_seen = Some(run.id);
                }
                true
            },
        )?;
        Ok(())
    }

    /// Insert one run into the graph and advance the watermark.
    fn apply(&mut self, run: &ComponentRunRecord) {
        let deps: Vec<u64> = run.dependencies.iter().map(|d| d.0).collect();
        self.graph.add_run(
            run.id.0,
            &run.component,
            run.start_ms,
            run.status != RunStatus::Success,
            &run.inputs,
            &run.outputs,
            &deps,
        );
        self.last_seen = Some(run.id);
    }

    /// The current graph.
    pub fn graph(&self) -> &LineageGraph {
        &self.graph
    }

    /// Consume the cache, yielding the graph.
    pub fn into_graph(self) -> LineageGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{ComponentRunRecord, MemoryStore};

    fn log(
        s: &MemoryStore,
        component: &str,
        start: u64,
        inputs: &[&str],
        outputs: &[&str],
    ) -> RunId {
        s.log_run(ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|x| x.to_string()).collect(),
            outputs: outputs.iter().map(|x| x.to_string()).collect(),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn full_build_mirrors_store() {
        let s = MemoryStore::new();
        log(&s, "etl", 10, &[], &["raw"]);
        log(&s, "clean", 20, &["raw"], &["clean"]);
        let g = build_graph(&s).unwrap();
        assert_eq!(g.run_count(), 2);
        assert_eq!(g.io_count(), 2);
        let raw = g.io_by_name("raw").unwrap();
        assert_eq!(g.io_node(raw).producers.len(), 1);
        assert_eq!(g.io_node(raw).consumers.len(), 1);
    }

    #[test]
    fn incremental_refresh_appends() {
        let s = MemoryStore::new();
        log(&s, "etl", 10, &[], &["raw"]);
        let mut cache = GraphCache::new();
        cache.refresh(&s).unwrap();
        assert_eq!(cache.graph().run_count(), 1);
        log(&s, "clean", 20, &["raw"], &["clean"]);
        log(&s, "train", 30, &["clean"], &["model"]);
        cache.refresh(&s).unwrap();
        assert_eq!(cache.graph().run_count(), 3);
        // Idempotent.
        cache.refresh(&s).unwrap();
        assert_eq!(cache.graph().run_count(), 3);
    }

    #[test]
    fn deletion_triggers_rebuild() {
        let s = MemoryStore::new();
        let a = log(&s, "etl", 10, &[], &["raw"]);
        log(&s, "clean", 20, &["raw"], &["clean"]);
        let mut cache = GraphCache::new();
        cache.refresh(&s).unwrap();
        assert_eq!(cache.graph().run_count(), 2);
        s.delete_runs(&[a]).unwrap();
        cache.refresh(&s).unwrap();
        assert_eq!(cache.graph().run_count(), 1);
        assert!(cache.graph().run_by_id(a.0).is_none());
    }
}
