//! Error type for the core mltrace API.

use mltrace_store::StoreError;
use std::fmt;

/// Errors surfaced by the execution layer and query commands.
#[derive(Debug)]
pub enum CoreError {
    /// Storage-layer failure.
    Store(StoreError),
    /// Referenced component is not registered.
    UnknownComponent(String),
    /// Referenced run id does not exist.
    UnknownRun(u64),
    /// Referenced I/O pointer does not exist.
    UnknownOutput(String),
    /// The component body returned an error.
    ComponentFailed(String),
    /// Invalid user input to a command or builder.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::UnknownComponent(c) => write!(f, "unknown component: {c}"),
            CoreError::UnknownRun(id) => write!(f, "unknown run: run#{id}"),
            CoreError::UnknownOutput(o) => write!(f, "unknown output: {o}"),
            CoreError::ComponentFailed(msg) => write!(f, "component failed: {msg}"),
            CoreError::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

/// Convenience alias for core results.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            CoreError::UnknownComponent("etl".into()).to_string(),
            "unknown component: etl"
        );
        assert_eq!(CoreError::UnknownRun(3).to_string(), "unknown run: run#3");
        let e: CoreError = StoreError::NotFound("x".into()).into();
        assert!(e.to_string().contains("store error"));
    }
}
