//! The execution layer (Figure 2): wraps a component body and performs the
//! paper's §3.4 sequence —
//!
//! 1. run the `beforeRun` triggers (optionally async),
//! 2. run the body while capturing the relevant variable values,
//! 3. materialize historical outputs for the `afterRun` triggers,
//! 4. run the `afterRun` triggers (optionally async),
//! 5. compute dependencies from inputs, snapshot the code, capture
//!    metadata,
//! 6. log inputs, outputs and metadata as a ComponentRun record.
//!
//! Crucially (§3.2), "users do not need to explicitly define dependent
//! components. MLTRACE sets the dependencies at runtime based on the input
//! values": step 5 resolves each input pointer to its latest producer run.

use crate::component::{ComponentDef, ComponentRegistry};
use crate::error::{CoreError, Result};
use crate::trigger::{outcome_to_record, Phase, TriggerContext, TriggerSpec};
use mltrace_store::{
    hash::content_hash, ArtifactStore, Clock, ComponentRunRecord, EventKind, EventSeverity,
    IoPointerRecord, MemoryStore, MetricRecord, ObservabilityEvent, RunBundle, RunId, RunStatus,
    Store, SystemClock, TriggerOutcomeRecord, Value, WalStore,
};
use mltrace_telemetry::Telemetry;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Static inputs to a run, declared before execution (Figure 3b's
/// decorator arguments: `input_vars`, `output_vars`, captured variables).
#[derive(Default)]
pub struct RunSpec {
    /// Input pointer names.
    pub inputs: Vec<String>,
    /// Output pointer names known up front (more can be added in the body).
    pub outputs: Vec<String>,
    /// Variables available to `beforeRun` triggers.
    pub captures: BTreeMap<String, Value>,
    /// Explicit code version (git hash). When absent, `code` is hashed;
    /// when both absent, the snapshot is empty.
    pub git_hash: Option<String>,
    /// Source text to content-hash as the code snapshot.
    pub code: Option<String>,
    /// Free-form notes.
    pub notes: String,
}

impl RunSpec {
    /// Empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an input pointer.
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.inputs.push(name.into());
        self
    }

    /// Add an output pointer.
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.outputs.push(name.into());
        self
    }

    /// Capture a variable for the triggers.
    pub fn capture(mut self, name: impl Into<String>, v: impl Into<Value>) -> Self {
        self.captures.insert(name.into(), v.into());
        self
    }

    /// Record an explicit git hash.
    pub fn git(mut self, hash: impl Into<String>) -> Self {
        self.git_hash = Some(hash.into());
        self
    }

    /// Provide source text to content-hash.
    pub fn code(mut self, source: impl Into<String>) -> Self {
        self.code = Some(source.into());
        self
    }

    /// Attach notes.
    pub fn notes(mut self, n: impl Into<String>) -> Self {
        self.notes = n.into();
        self
    }
}

/// Mutable view handed to the component body: capture variables, declare
/// late outputs, buffer metrics, store artifacts.
pub struct RunContext<'a> {
    captures: &'a mut BTreeMap<String, Value>,
    inputs: &'a mut Vec<String>,
    outputs: &'a mut Vec<String>,
    metrics: &'a mut Vec<(String, f64)>,
    metadata: &'a mut BTreeMap<String, Value>,
    artifacts: &'a ArtifactStore,
    artifact_ids: &'a mut Vec<(String, String)>,
    /// Run start, epoch milliseconds.
    pub now_ms: u64,
}

impl<'a> RunContext<'a> {
    /// Capture a variable (visible to `afterRun` triggers).
    pub fn capture(&mut self, name: impl Into<String>, v: impl Into<Value>) {
        self.captures.insert(name.into(), v.into());
    }

    /// Declare an input discovered during execution.
    pub fn add_input(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.inputs.contains(&name) {
            self.inputs.push(name);
        }
    }

    /// Declare an output produced during execution.
    pub fn add_output(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.outputs.contains(&name) {
            self.outputs.push(name);
        }
    }

    /// Buffer a metric point to log with this run.
    pub fn log_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Attach arbitrary metadata to the run record.
    pub fn set_metadata(&mut self, key: impl Into<String>, v: impl Into<Value>) {
        self.metadata.insert(key.into(), v.into());
    }

    /// Store an artifact payload under `io_name`, registering it as an
    /// output whose pointer carries the content address (dedup per §5.1).
    pub fn save_artifact(&mut self, io_name: impl Into<String>, payload: &[u8]) -> String {
        let name = io_name.into();
        let id = self.artifacts.put(payload);
        self.artifact_ids.push((name.clone(), id.clone()));
        self.add_output(name);
        id
    }
}

/// Outcome of a completed (successful) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport<T> {
    /// Value returned by the body.
    pub value: T,
    /// Assigned run id.
    pub run_id: RunId,
    /// Final status (success or trigger-failed).
    pub status: RunStatus,
    /// Names of failing triggers, if any.
    pub trigger_failures: Vec<String>,
}

/// The top-level mltrace handle: storage + artifact store + clock +
/// component registry.
pub struct Mltrace {
    store: Arc<dyn Store>,
    artifacts: Arc<ArtifactStore>,
    clock: Arc<dyn Clock>,
    registry: RwLock<ComponentRegistry>,
    artifact_path: Option<std::path::PathBuf>,
    /// Engine self-telemetry (§3.2: "logging should not interfere with
    /// the normal operation of the pipeline" — this registry is how that
    /// claim gets measured instead of asserted). Shared with the store's
    /// registry when the store keeps one.
    telemetry: Telemetry,
}

fn artifact_snapshot_path(wal: &Path) -> std::path::PathBuf {
    let mut name = wal.file_name().unwrap_or_default().to_os_string();
    name.push(".artifacts");
    wal.with_file_name(name)
}

impl Mltrace {
    /// Fully in-memory instance with the system clock.
    pub fn in_memory() -> Self {
        Self::with_store(Arc::new(MemoryStore::new()), Arc::new(SystemClock))
    }

    /// In-memory instance with a caller-controlled clock (simulations).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self::with_store(Arc::new(MemoryStore::new()), clock)
    }

    /// Durable instance backed by a WAL file. Artifact payloads saved via
    /// [`Mltrace::checkpoint_artifacts`] to the sibling `<path>.artifacts`
    /// snapshot are reloaded when present.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let store = WalStore::open(path)?;
        let mut instance = Self::with_store(Arc::new(store), Arc::new(SystemClock));
        let artifact_path = artifact_snapshot_path(path);
        if artifact_path.exists() {
            instance.artifacts = Arc::new(ArtifactStore::read_snapshot(&artifact_path)?);
        }
        instance.artifact_path = Some(artifact_path);
        Ok(instance)
    }

    /// Persist artifact payloads next to the WAL (no-op location unless
    /// the instance was created with [`Mltrace::open`], in which case the
    /// sibling `<path>.artifacts` file is written atomically).
    pub fn checkpoint_artifacts(&self) -> Result<()> {
        if let Some(path) = &self.artifact_path {
            self.artifacts.write_snapshot(path)?;
        }
        Ok(())
    }

    /// Assemble from explicit parts. Adopts the store's telemetry
    /// registry when it has one, so engine spans and store counters land
    /// in a single snapshot; otherwise a private registry is created.
    pub fn with_store(store: Arc<dyn Store>, clock: Arc<dyn Clock>) -> Self {
        let telemetry = store.telemetry().cloned().unwrap_or_default();
        Mltrace {
            store,
            artifacts: Arc::new(ArtifactStore::default()),
            clock,
            registry: RwLock::new(ComponentRegistry::new()),
            artifact_path: None,
            telemetry,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn Store> {
        &self.store
    }

    /// The engine's self-telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The artifact store.
    pub fn artifacts(&self) -> &Arc<ArtifactStore> {
        &self.artifacts
    }

    /// Current time, epoch milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Register a component definition (persisting its metadata).
    pub fn register(&self, def: ComponentDef) -> Result<()> {
        self.store.register_component(def.record.clone())?;
        self.registry.write().register(def);
        Ok(())
    }

    /// Definition lookup; auto-registers a bare component on first use so
    /// integration stays minimal (§3.3: users need only supply a name).
    fn definition(&self, component: &str) -> Result<Arc<ComponentDef>> {
        if let Some(def) = self.registry.read().get(component) {
            return Ok(def);
        }
        let def = ComponentDef::builder(component).build();
        self.store.register_component(def.record.clone())?;
        Ok(self.registry.write().register(def))
    }

    /// The staleness policy of a registered component (default if bare).
    pub fn staleness_policy(&self, component: &str) -> crate::staleness::StalenessPolicy {
        self.registry
            .read()
            .get(component)
            .map(|d| d.staleness)
            .unwrap_or_default()
    }

    /// Execute `body` as a run of `component`, performing the full §3.4
    /// sequence. On body error the run is still logged (status `Failed`)
    /// and `CoreError::ComponentFailed` is returned — failures must be
    /// observable too.
    ///
    /// ```
    /// use mltrace_core::{Mltrace, RunSpec};
    ///
    /// let ml = Mltrace::in_memory();
    /// let report = ml
    ///     .run(
    ///         "preprocess",
    ///         RunSpec::new().input("raw.csv").output("clean.csv"),
    ///         |ctx| {
    ///             ctx.log_metric("rows", 128.0);
    ///             Ok(128)
    ///         },
    ///     )
    ///     .unwrap();
    /// assert_eq!(report.value, 128);
    /// let run = ml.store().run(report.run_id).unwrap().unwrap();
    /// assert_eq!(run.inputs, vec!["raw.csv"]);
    /// ```
    pub fn run<T>(
        &self,
        component: &str,
        spec: RunSpec,
        body: impl FnOnce(&mut RunContext<'_>) -> std::result::Result<T, String>,
    ) -> Result<RunReport<T>> {
        let def = self.definition(component)?;
        // Everything from here to the final store write is one
        // `component_run` span; the body is timed separately so the
        // difference — what the engine adds on top of the user's code —
        // can be reported per run and in aggregate.
        let run_span = self.telemetry.span("component_run");
        let start_ms = self.clock.now_ms();

        let mut captures = spec.captures;
        let mut inputs = spec.inputs;
        let mut outputs = spec.outputs;
        let mut metrics: Vec<(String, f64)> = Vec::new();
        let mut metadata: BTreeMap<String, Value> = BTreeMap::new();
        let mut artifact_ids: Vec<(String, String)> = Vec::new();
        let mut trigger_records: Vec<TriggerOutcomeRecord> = Vec::new();
        let mut trigger_metrics: Vec<(String, f64)> = Vec::new();

        // Step 1: beforeRun triggers. Sync triggers run inline; async ones
        // run on scoped worker threads overlapping the body (step 2).
        let (before_sync, before_async): (Vec<&TriggerSpec>, Vec<&TriggerSpec>) =
            def.before.iter().partition(|t| !t.asynchronous);
        if !before_sync.is_empty() {
            let _span = run_span.child("before_triggers");
            for spec in before_sync {
                let ctx = TriggerContext::new(
                    component,
                    &captures,
                    &inputs,
                    &outputs,
                    start_ms,
                    self.store.as_ref(),
                );
                let outcome = spec.trigger.run(&ctx);
                let (rec, m) = outcome_to_record(spec.trigger.name(), Phase::Before, &outcome);
                trigger_records.push(rec);
                trigger_metrics.extend(m);
            }
        }

        // Async before-triggers get a snapshot of the pre-body state.
        let async_snapshot = if before_async.is_empty() {
            None
        } else {
            Some((captures.clone(), inputs.clone(), outputs.clone()))
        };

        let (body_result, body_ns) = std::thread::scope(|scope| {
            let async_handles: Vec<_> = before_async
                .iter()
                .map(|spec| {
                    let trigger = Arc::clone(&spec.trigger);
                    let snap = async_snapshot.as_ref().expect("snapshot exists");
                    let store = Arc::clone(&self.store);
                    let (caps, ins, outs) = (snap.0.clone(), snap.1.clone(), snap.2.clone());
                    let component = component.to_owned();
                    scope.spawn(move || {
                        let ctx = TriggerContext::new(
                            &component,
                            &caps,
                            &ins,
                            &outs,
                            start_ms,
                            store.as_ref(),
                        );
                        let outcome = trigger.run(&ctx);
                        outcome_to_record(trigger.name(), Phase::Before, &outcome)
                    })
                })
                .collect();

            // Step 2: the component body, capturing variables as it goes.
            let mut ctx = RunContext {
                captures: &mut captures,
                inputs: &mut inputs,
                outputs: &mut outputs,
                metrics: &mut metrics,
                metadata: &mut metadata,
                artifacts: self.artifacts.as_ref(),
                artifact_ids: &mut artifact_ids,
                now_ms: start_ms,
            };
            let body_span = run_span.child("component_body");
            let result = body(&mut ctx);
            let body_ns = body_span.finish();

            for h in async_handles {
                let (rec, m) = h.join().expect("async trigger thread panicked");
                trigger_records.push(rec);
                trigger_metrics.extend(m);
            }
            (result, body_ns)
        });

        // Steps 3–4: afterRun triggers see the post-body captures plus the
        // materialized history (available through the TriggerContext's
        // store handle). Async after-triggers run concurrently with each
        // other, joined before logging.
        if body_result.is_ok() && !def.after.is_empty() {
            let _span = run_span.child("after_triggers");
            let (after_sync, after_async): (Vec<&TriggerSpec>, Vec<&TriggerSpec>) =
                def.after.iter().partition(|t| !t.asynchronous);
            for spec in after_sync {
                let ctx = TriggerContext::new(
                    component,
                    &captures,
                    &inputs,
                    &outputs,
                    start_ms,
                    self.store.as_ref(),
                );
                let outcome = spec.trigger.run(&ctx);
                let (rec, m) = outcome_to_record(spec.trigger.name(), Phase::After, &outcome);
                trigger_records.push(rec);
                trigger_metrics.extend(m);
            }
            if !after_async.is_empty() {
                let results = std::thread::scope(|scope| {
                    let handles: Vec<_> = after_async
                        .iter()
                        .map(|spec| {
                            let trigger = Arc::clone(&spec.trigger);
                            let store = Arc::clone(&self.store);
                            let (caps, ins, outs) = (&captures, &inputs, &outputs);
                            let component = component.to_owned();
                            scope.spawn(move || {
                                let ctx = TriggerContext::new(
                                    &component,
                                    caps,
                                    ins,
                                    outs,
                                    start_ms,
                                    store.as_ref(),
                                );
                                let outcome = trigger.run(&ctx);
                                outcome_to_record(trigger.name(), Phase::After, &outcome)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("async trigger thread panicked"))
                        .collect::<Vec<_>>()
                });
                for (rec, m) in results {
                    trigger_records.push(rec);
                    trigger_metrics.extend(m);
                }
            }
        }

        // Step 5: infer dependencies from inputs — the latest producer of
        // each input pointer that started at or before this run.
        let mut dependencies: Vec<RunId> = Vec::new();
        if !inputs.is_empty() {
            let _span = run_span.child("dependency_inference");
            for input in &inputs {
                let producers = self.store.producers_of(input)?;
                let dep = producers
                    .iter()
                    .rev()
                    .find_map(|&id| match self.store.run(id) {
                        Ok(Some(r)) if r.start_ms <= start_ms => Some(id),
                        _ => None,
                    });
                if let Some(d) = dep {
                    if !dependencies.contains(&d) {
                        dependencies.push(d);
                    }
                }
            }
            dependencies.sort();
        }

        let code_hash = spec
            .git_hash
            .or_else(|| spec.code.as_deref().map(content_hash))
            .unwrap_or_default();

        let end_ms = self.clock.now_ms().max(start_ms);
        let any_trigger_failed = trigger_records.iter().any(|t| !t.passed);
        let status = match (&body_result, any_trigger_failed) {
            (Err(_), _) => RunStatus::Failed,
            (Ok(_), true) => RunStatus::TriggerFailed,
            (Ok(_), false) => RunStatus::Success,
        };

        // Step 6: log pointers, the ComponentRun, and its metrics (body
        // metrics plus trigger metrics) as one store transaction — at the
        // paper's §3.4 scale the difference between one locked call and
        // ~2+F of them is the ingest bottleneck.
        let artifact_map: BTreeMap<&str, &str> = artifact_ids
            .iter()
            .map(|(n, a)| (n.as_str(), a.as_str()))
            .collect();
        let pointers: Vec<IoPointerRecord> = inputs
            .iter()
            .chain(outputs.iter())
            .map(|io| {
                let mut rec = IoPointerRecord::new(io.clone(), start_ms);
                if let Some(&aid) = artifact_map.get(io.as_str()) {
                    rec.artifact = Some(aid.to_owned());
                }
                rec
            })
            .collect();
        if let Err(msg) = &body_result {
            metadata.insert("error".to_owned(), Value::from(msg.clone()));
        }
        let trigger_failures: Vec<String> = trigger_records
            .iter()
            .filter(|t| !t.passed)
            .map(|t| t.trigger.clone())
            .collect();
        // Engine overhead so far: wall time minus the user's body. Stamped
        // on the record itself so each run answers "what did observability
        // cost me?" without a telemetry snapshot. Measured before the final
        // store write (which hasn't happened yet); that write is visible in
        // the `store.log_run_bundle` histogram instead.
        let overhead_ns = run_span.elapsed_ns().saturating_sub(body_ns);
        metadata.insert(
            "mltrace.overhead_ms".to_owned(),
            Value::Float(overhead_ns as f64 / 1e6),
        );
        self.telemetry.record("run_overhead", overhead_ns);
        self.telemetry.incr("core.runs_total");
        if body_result.is_err() {
            self.telemetry.incr("core.run_failures_total");
        }
        if !trigger_failures.is_empty() {
            self.telemetry
                .add("core.trigger_failures_total", trigger_failures.len() as u64);
        }
        let metric_points: Vec<MetricRecord> = metrics
            .iter()
            .chain(trigger_metrics.iter())
            .map(|(name, value)| MetricRecord {
                component: component.to_owned(),
                run_id: None, // stamped with the assigned id by the store
                name: name.clone(),
                value: *value,
                ts_ms: end_ms,
            })
            .collect();
        // The run's journal: started, each trigger outcome (sync or async —
        // all are joined by now), then finished/failed. The events ride the
        // same bundle append as the run record, so the story of the run
        // lands in the `events` table atomically with the run itself, and
        // the store stamps every event with the assigned run id.
        let mut journal: Vec<ObservabilityEvent> = Vec::with_capacity(2 + trigger_records.len());
        journal.push(
            ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, start_ms)
                .component(component),
        );
        for t in &trigger_records {
            let severity = if t.passed {
                EventSeverity::Info
            } else {
                EventSeverity::Warn
            };
            journal.push(
                ObservabilityEvent::new(EventKind::TriggerOutcome, severity, end_ms)
                    .component(component)
                    .detail(format!(
                        "{} [{}] {}: {}",
                        t.trigger,
                        t.phase,
                        if t.passed { "passed" } else { "failed" },
                        t.detail
                    ))
                    .payload("trigger", Value::from(t.trigger.clone()))
                    .payload("passed", Value::Bool(t.passed)),
            );
        }
        journal.push(match &body_result {
            Err(msg) => ObservabilityEvent::new(EventKind::RunFailed, EventSeverity::Warn, end_ms)
                .component(component)
                .detail(msg.clone()),
            Ok(_) => {
                let severity = if any_trigger_failed {
                    EventSeverity::Warn
                } else {
                    EventSeverity::Info
                };
                ObservabilityEvent::new(EventKind::RunFinished, severity, end_ms)
                    .component(component)
            }
        });
        let run_id = self.store.log_run_bundle(RunBundle {
            run: ComponentRunRecord {
                id: RunId(0),
                component: component.to_owned(),
                start_ms,
                end_ms,
                inputs,
                outputs,
                code_hash,
                notes: spec.notes,
                status,
                dependencies,
                triggers: trigger_records,
                metadata,
            },
            pointers,
            metrics: metric_points,
            events: journal,
        })?;

        match body_result {
            Ok(value) => Ok(RunReport {
                value,
                run_id,
                status,
                trigger_failures,
            }),
            Err(msg) => Err(CoreError::ComponentFailed(msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::{FnTrigger, TriggerOutcome};
    use mltrace_store::ManualClock;

    fn instance() -> (Mltrace, Arc<ManualClock>) {
        let clock = ManualClock::starting_at(1_000_000);
        (Mltrace::with_clock(clock.clone()), clock)
    }

    #[test]
    fn minimal_run_logs_everything() {
        let (ml, _clock) = instance();
        let report = ml
            .run(
                "etl",
                RunSpec::new().output("raw.csv").notes("first run"),
                |ctx| {
                    ctx.log_metric("rows", 100.0);
                    Ok(42)
                },
            )
            .unwrap();
        assert_eq!(report.value, 42);
        assert_eq!(report.status, RunStatus::Success);
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.component, "etl");
        assert_eq!(run.outputs, vec!["raw.csv"]);
        assert_eq!(run.notes, "first run");
        assert_eq!(ml.store().metrics("etl", "rows").unwrap().len(), 1);
        // Component auto-registered.
        assert!(ml.store().component("etl").unwrap().is_some());
        // Pointer upserted with inferred type.
        let p = ml.store().io_pointer("raw.csv").unwrap().unwrap();
        assert_eq!(p.ptype, mltrace_store::PointerType::Data);
    }

    #[test]
    fn dependencies_inferred_from_inputs() {
        let (ml, clock) = instance();
        let a = ml
            .run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        clock.advance(1000);
        let b = ml
            .run(
                "clean",
                RunSpec::new().input("raw.csv").output("clean.csv"),
                |_| Ok(()),
            )
            .unwrap();
        let run = ml.store().run(b.run_id).unwrap().unwrap();
        assert_eq!(run.dependencies, vec![a.run_id]);
        // A later etl run does not retroactively change b's dependency.
        clock.advance(1000);
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        let run = ml.store().run(b.run_id).unwrap().unwrap();
        assert_eq!(run.dependencies, vec![a.run_id]);
    }

    #[test]
    fn dependency_resolution_picks_latest_prior_producer() {
        let (ml, clock) = instance();
        ml.run("featurize", RunSpec::new().output("f.csv"), |_| Ok(()))
            .unwrap();
        clock.advance(1000);
        let v2 = ml
            .run("featurize", RunSpec::new().output("f.csv"), |_| Ok(()))
            .unwrap();
        clock.advance(1000);
        let infer = ml
            .run("infer", RunSpec::new().input("f.csv").output("p"), |_| {
                Ok(())
            })
            .unwrap();
        let run = ml.store().run(infer.run_id).unwrap().unwrap();
        assert_eq!(run.dependencies, vec![v2.run_id]);
    }

    #[test]
    fn body_failure_is_logged_and_returned() {
        let (ml, _clock) = instance();
        let err = ml
            .run("train", RunSpec::new(), |_| {
                Err::<(), _>("singular matrix".to_string())
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::ComponentFailed(_)));
        let run = ml.store().latest_run("train").unwrap().unwrap();
        assert_eq!(run.status, RunStatus::Failed);
        assert_eq!(
            run.metadata.get("error"),
            Some(&Value::from("singular matrix"))
        );
    }

    #[test]
    fn triggers_run_in_both_phases_and_set_status() {
        let (ml, _clock) = instance();
        ml.register(
            ComponentDef::builder("prep")
                .before_run(FnTrigger::new("check-input", |ctx| {
                    if ctx.capture("rows").is_some() {
                        TriggerOutcome::pass("have rows")
                    } else {
                        TriggerOutcome::fail("no rows captured")
                    }
                }))
                .after_run(FnTrigger::new("check-output", |ctx| {
                    match ctx.numeric_capture("out_mean") {
                        Some(v) if v[0] < 100.0 => {
                            TriggerOutcome::pass("mean ok").with_metric("out_mean", v[0])
                        }
                        _ => TriggerOutcome::fail("mean too large"),
                    }
                }))
                .build(),
        )
        .unwrap();
        let report = ml
            .run("prep", RunSpec::new().capture("rows", 10i64), |ctx| {
                ctx.capture("out_mean", 5.0);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.status, RunStatus::Success);
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.triggers.len(), 2);
        assert!(run.triggers.iter().all(|t| t.passed));
        assert_eq!(ml.store().metrics("prep", "out_mean").unwrap().len(), 1);

        // Failing trigger downgrades status.
        let report = ml
            .run("prep", RunSpec::new(), |ctx| {
                ctx.capture("out_mean", 500.0);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.status, RunStatus::TriggerFailed);
        assert_eq!(
            report.trigger_failures,
            vec!["check-input".to_string(), "check-output".to_string()]
        );
    }

    #[test]
    fn async_triggers_complete_before_logging() {
        let (ml, _clock) = instance();
        ml.register(
            ComponentDef::builder("slow")
                .before_run_async(FnTrigger::new("async-before", |_| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    TriggerOutcome::pass("done")
                }))
                .after_run_async(FnTrigger::new("async-after", |_| {
                    TriggerOutcome::pass("done").with_metric("async_metric", 1.0)
                }))
                .build(),
        )
        .unwrap();
        let report = ml.run("slow", RunSpec::new(), |_| Ok(())).unwrap();
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.triggers.len(), 2, "both async outcomes logged");
        assert_eq!(ml.store().metrics("slow", "async_metric").unwrap().len(), 1);
    }

    #[test]
    fn after_triggers_skipped_on_body_failure() {
        let (ml, _clock) = instance();
        ml.register(
            ComponentDef::builder("fragile")
                .after_run(FnTrigger::new("never-runs", |_| {
                    TriggerOutcome::fail("should not appear")
                }))
                .build(),
        )
        .unwrap();
        let _ = ml.run("fragile", RunSpec::new(), |_| Err::<(), _>("boom".into()));
        let run = ml.store().latest_run("fragile").unwrap().unwrap();
        assert!(run.triggers.is_empty());
        assert_eq!(run.status, RunStatus::Failed);
    }

    #[test]
    fn code_snapshot_prefers_git_hash() {
        let (ml, _clock) = instance();
        let a = ml
            .run(
                "c",
                RunSpec::new().git("abc123").code("fn main() {}"),
                |_| Ok(()),
            )
            .unwrap();
        assert_eq!(
            ml.store().run(a.run_id).unwrap().unwrap().code_hash,
            "abc123"
        );
        let b = ml
            .run("c", RunSpec::new().code("fn main() {}"), |_| Ok(()))
            .unwrap();
        let hash = ml.store().run(b.run_id).unwrap().unwrap().code_hash;
        assert_eq!(hash.len(), 32, "content hash");
        // Same code → same snapshot; changed code → changed snapshot.
        let c = ml
            .run("c", RunSpec::new().code("fn main() {}"), |_| Ok(()))
            .unwrap();
        assert_eq!(ml.store().run(c.run_id).unwrap().unwrap().code_hash, hash);
        let d = ml
            .run("c", RunSpec::new().code("fn main() { changed(); }"), |_| {
                Ok(())
            })
            .unwrap();
        assert_ne!(ml.store().run(d.run_id).unwrap().unwrap().code_hash, hash);
    }

    #[test]
    fn artifacts_saved_and_linked() {
        let (ml, _clock) = instance();
        let report = ml
            .run("train", RunSpec::new(), |ctx| {
                let id = ctx.save_artifact("model.bin", b"weights-v1");
                Ok(id)
            })
            .unwrap();
        let pointer = ml.store().io_pointer("model.bin").unwrap().unwrap();
        assert_eq!(pointer.artifact.as_deref(), Some(report.value.as_str()));
        assert_eq!(
            ml.artifacts().get(&report.value).unwrap(),
            b"weights-v1".to_vec()
        );
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.outputs, vec!["model.bin"]);
    }

    #[test]
    fn context_add_input_output_dedup() {
        let (ml, _clock) = instance();
        let report = ml
            .run("c", RunSpec::new().input("a"), |ctx| {
                ctx.add_input("a");
                ctx.add_input("b");
                ctx.add_output("o");
                ctx.add_output("o");
                ctx.set_metadata("k", 7i64);
                Ok(())
            })
            .unwrap();
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.inputs, vec!["a", "b"]);
        assert_eq!(run.outputs, vec!["o"]);
        assert_eq!(run.metadata.get("k"), Some(&Value::Int(7)));
    }

    #[test]
    fn artifacts_survive_reopen_via_checkpoint() {
        let dir = std::env::temp_dir();
        let wal = dir.join(format!("mltrace-artpersist-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(artifact_snapshot_path(&wal));
        let artifact_id;
        {
            let ml = Mltrace::open(&wal).unwrap();
            let report = ml
                .run("train", RunSpec::new(), |ctx| {
                    Ok(ctx.save_artifact("model.bin", b"weights"))
                })
                .unwrap();
            artifact_id = report.value;
            ml.checkpoint_artifacts().unwrap();
        }
        let ml = Mltrace::open(&wal).unwrap();
        assert_eq!(ml.artifacts().get(&artifact_id).unwrap(), b"weights");
        // Pointer still resolves through the store metadata too.
        let pointer = ml.store().io_pointer("model.bin").unwrap().unwrap();
        assert_eq!(pointer.artifact.as_deref(), Some(artifact_id.as_str()));
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(artifact_snapshot_path(&wal)).ok();
    }

    #[test]
    fn every_run_carries_engine_overhead_metadata() {
        let (ml, _clock) = instance();
        let ok = ml.run("c", RunSpec::new(), |_| Ok(())).unwrap();
        let run = ml.store().run(ok.run_id).unwrap().unwrap();
        assert!(
            matches!(run.metadata.get("mltrace.overhead_ms"), Some(Value::Float(v)) if *v >= 0.0),
            "overhead metadata missing or wrong type: {:?}",
            run.metadata.get("mltrace.overhead_ms")
        );
        // Failed runs are instrumented too.
        let _ = ml.run("c", RunSpec::new(), |_| Err::<(), _>("boom".into()));
        let failed = ml.store().latest_run("c").unwrap().unwrap();
        assert!(failed.metadata.contains_key("mltrace.overhead_ms"));

        let snap = ml.telemetry().snapshot();
        assert_eq!(snap.histograms["component_run"].count, 2);
        assert_eq!(snap.histograms["component_body"].count, 2);
        assert_eq!(snap.histograms["run_overhead"].count, 2);
        assert_eq!(snap.counters["core.runs_total"], 2);
        assert_eq!(snap.counters["core.run_failures_total"], 1);
        // The in-memory store reports into the same registry.
        assert_eq!(snap.histograms["store.log_run_bundle"].count, 2);
    }

    #[test]
    fn every_run_journals_start_and_finish() {
        use mltrace_store::EventFilter;
        let (ml, _clock) = instance();
        let ok = ml.run("etl", RunSpec::new(), |_| Ok(())).unwrap();
        let events = ml
            .store()
            .scan_events(None, &EventFilter::all(), None)
            .unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::RunStarted);
        assert_eq!(events[0].ts_ms, 1_000_000);
        assert_eq!(events[1].kind, EventKind::RunFinished);
        assert!(
            events.iter().all(|e| e.run_id == Some(ok.run_id)),
            "every journal event is stamped with the assigned run id"
        );
        // A body failure journals RunFailed (Warn) with the error text.
        let _ = ml.run("etl", RunSpec::new(), |_| Err::<(), _>("boom".into()));
        let failed = ml
            .store()
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::RunFailed),
                None,
            )
            .unwrap();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].severity, EventSeverity::Warn);
        assert_eq!(failed[0].detail, "boom");
    }

    #[test]
    fn async_trigger_outcomes_journal_with_correct_run_id() {
        // The satellite case: a trigger completing on a worker thread
        // after the body must still land its TriggerOutcomeRecord AND a
        // journal event carrying the run id assigned at the final bundle
        // append — well after the trigger itself finished.
        use mltrace_store::EventFilter;
        let (ml, _clock) = instance();
        ml.register(
            ComponentDef::builder("lagged")
                .after_run_async(FnTrigger::new("slow-check", |_| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    TriggerOutcome::fail("drift detected")
                }))
                .build(),
        )
        .unwrap();
        let report = ml.run("lagged", RunSpec::new(), |_| Ok(())).unwrap();
        assert_eq!(report.status, RunStatus::TriggerFailed);
        // The outcome record persisted on the run itself...
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.triggers.len(), 1);
        assert!(!run.triggers[0].passed);
        // ...and the journal event carries the same run id.
        let outcomes = ml
            .store()
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::TriggerOutcome),
                None,
            )
            .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].run_id, Some(report.run_id));
        assert_eq!(outcomes[0].severity, EventSeverity::Warn);
        assert!(outcomes[0].detail.contains("slow-check"));
        assert!(outcomes[0].detail.contains("drift detected"));
        // The failed trigger downgrades the finish event to Warn.
        let finish = ml
            .store()
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::RunFinished),
                None,
            )
            .unwrap();
        assert_eq!(finish.len(), 1);
        assert_eq!(finish[0].severity, EventSeverity::Warn);
    }

    #[test]
    fn manual_clock_timestamps_runs() {
        let (ml, clock) = instance();
        let report = ml.run("c", RunSpec::new(), |_| Ok(())).unwrap();
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.start_ms, 1_000_000);
        clock.advance(5_000);
        let report = ml.run("c", RunSpec::new(), |_| Ok(())).unwrap();
        let run = ml.store().run(report.run_id).unwrap().unwrap();
        assert_eq!(run.start_ms, 1_005_000);
    }
}
