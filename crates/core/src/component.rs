//! The `Component` abstraction (§3.2): static metadata plus the triggers
//! to execute before and after every run. Users assemble components once
//! (typically in a shared library directory, per §3.3) and the execution
//! layer enforces their triggers on every run.

use crate::staleness::StalenessPolicy;
use crate::trigger::{Trigger, TriggerSpec};
use mltrace_store::ComponentRecord;
use std::collections::HashMap;
use std::sync::Arc;

/// A fully-specified component: metadata, triggers, staleness policy.
pub struct ComponentDef {
    /// Static metadata (name is the primary key).
    pub record: ComponentRecord,
    /// Checks run before the body.
    pub before: Vec<TriggerSpec>,
    /// Checks run after the body.
    pub after: Vec<TriggerSpec>,
    /// Staleness policy applied to this component's runs.
    pub staleness: StalenessPolicy,
}

impl ComponentDef {
    /// Start building a component with the given name.
    pub fn builder(name: impl Into<String>) -> ComponentBuilder {
        ComponentBuilder {
            record: ComponentRecord::named(name),
            before: Vec::new(),
            after: Vec::new(),
            staleness: StalenessPolicy::default(),
        }
    }
}

/// Fluent builder mirroring the paper's Figure 3a component definition.
pub struct ComponentBuilder {
    record: ComponentRecord,
    before: Vec<TriggerSpec>,
    after: Vec<TriggerSpec>,
    staleness: StalenessPolicy,
}

impl ComponentBuilder {
    /// Set the description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.record.description = d.into();
        self
    }

    /// Set the owner.
    pub fn owner(mut self, o: impl Into<String>) -> Self {
        self.record.owner = o.into();
        self
    }

    /// Add a tag.
    pub fn tag(mut self, t: impl Into<String>) -> Self {
        self.record.tags.push(t.into());
        self
    }

    /// Add a synchronous `beforeRun` trigger.
    pub fn before_run(mut self, t: impl Trigger + 'static) -> Self {
        self.before.push(TriggerSpec {
            trigger: Arc::new(t),
            asynchronous: false,
        });
        self
    }

    /// Add an asynchronous `beforeRun` trigger (the paper's
    /// `@asynchronous` decorator).
    pub fn before_run_async(mut self, t: impl Trigger + 'static) -> Self {
        self.before.push(TriggerSpec {
            trigger: Arc::new(t),
            asynchronous: true,
        });
        self
    }

    /// Add a synchronous `afterRun` trigger.
    pub fn after_run(mut self, t: impl Trigger + 'static) -> Self {
        self.after.push(TriggerSpec {
            trigger: Arc::new(t),
            asynchronous: false,
        });
        self
    }

    /// Add an asynchronous `afterRun` trigger.
    pub fn after_run_async(mut self, t: impl Trigger + 'static) -> Self {
        self.after.push(TriggerSpec {
            trigger: Arc::new(t),
            asynchronous: true,
        });
        self
    }

    /// Override the staleness policy.
    pub fn staleness(mut self, p: StalenessPolicy) -> Self {
        self.staleness = p;
        self
    }

    /// Finish building.
    pub fn build(self) -> ComponentDef {
        ComponentDef {
            record: self.record,
            before: self.before,
            after: self.after,
            staleness: self.staleness,
        }
    }
}

/// In-process registry of component definitions keyed by name. The
/// persistent metadata lives in the store; trigger closures (not
/// serializable) live here.
#[derive(Default)]
pub struct ComponentRegistry {
    components: HashMap<String, Arc<ComponentDef>>,
}

impl ComponentRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a component definition.
    pub fn register(&mut self, def: ComponentDef) -> Arc<ComponentDef> {
        let arc = Arc::new(def);
        self.components
            .insert(arc.record.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Fetch a definition by name.
    pub fn get(&self, name: &str) -> Option<Arc<ComponentDef>> {
        self.components.get(name).cloned()
    }

    /// Registered component names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.components.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::{FnTrigger, TriggerContext, TriggerOutcome};

    fn noop() -> FnTrigger<impl Fn(&TriggerContext<'_>) -> TriggerOutcome + Send + Sync> {
        FnTrigger::new("noop", |_| TriggerOutcome::pass("ok"))
    }

    #[test]
    fn builder_assembles_metadata_and_triggers() {
        let def = ComponentDef::builder("preprocessing")
            .description("cleans raw trips")
            .owner("ml-platform")
            .tag("demo")
            .tag("taxi")
            .before_run(noop())
            .after_run_async(noop())
            .build();
        assert_eq!(def.record.name, "preprocessing");
        assert_eq!(def.record.owner, "ml-platform");
        assert_eq!(def.record.tags, vec!["demo", "taxi"]);
        assert_eq!(def.before.len(), 1);
        assert!(!def.before[0].asynchronous);
        assert_eq!(def.after.len(), 1);
        assert!(def.after[0].asynchronous);
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ComponentRegistry::new();
        reg.register(ComponentDef::builder("b").build());
        reg.register(ComponentDef::builder("a").build());
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.get("z").is_none());
        // Re-registering replaces.
        reg.register(ComponentDef::builder("a").owner("x").build());
        assert_eq!(reg.get("a").unwrap().record.owner, "x");
        assert_eq!(reg.names().len(), 2);
    }
}
