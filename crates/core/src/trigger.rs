//! Triggers: the user-defined computation attached to a component's
//! `beforeRun` and `afterRun` methods (§3.2), "primarily used for testing
//! and monitoring".
//!
//! A trigger reads the variables captured for the current run (the paper's
//! tracer captures "values of the specified variables") plus the
//! materialized history of prior runs (§3.4 step 3), and returns a
//! pass/fail outcome with structured detail. Triggers may be marked
//! asynchronous (the paper's `@asynchronous` decorator): the execution
//! layer then runs them on worker threads overlapping the component body.

use mltrace_store::{RunId, Store, TriggerOutcomeRecord, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Phase a trigger runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before the component body (`beforeRun`).
    Before,
    /// After the component body (`afterRun`).
    After,
}

impl Phase {
    /// Lowercase name stored in the run log.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Before => "before",
            Phase::After => "after",
        }
    }
}

/// Result returned by a trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerOutcome {
    /// Whether the check passed.
    pub passed: bool,
    /// Human-readable detail.
    pub detail: String,
    /// Structured values to log with the run (aggregates, statistics).
    pub values: BTreeMap<String, Value>,
    /// Metric points to append to the component's series.
    pub metrics: Vec<(String, f64)>,
}

impl TriggerOutcome {
    /// Passing outcome with detail text.
    pub fn pass(detail: impl Into<String>) -> Self {
        TriggerOutcome {
            passed: true,
            detail: detail.into(),
            values: BTreeMap::new(),
            metrics: Vec::new(),
        }
    }

    /// Failing outcome with detail text.
    pub fn fail(detail: impl Into<String>) -> Self {
        TriggerOutcome {
            passed: false,
            detail: detail.into(),
            values: BTreeMap::new(),
            metrics: Vec::new(),
        }
    }

    /// Attach a structured value.
    pub fn with_value(mut self, key: impl Into<String>, v: impl Into<Value>) -> Self {
        self.values.insert(key.into(), v.into());
        self
    }

    /// Attach a metric point.
    pub fn with_metric(mut self, name: impl Into<String>, v: f64) -> Self {
        self.metrics.push((name.into(), v));
        self
    }
}

/// Read-only view a trigger gets: the captured variables of the current
/// run and the history of prior runs of the same component.
pub struct TriggerContext<'a> {
    /// Component being run.
    pub component: &'a str,
    /// Variables captured so far (before-phase sees pre-body captures,
    /// after-phase sees everything).
    pub captures: &'a BTreeMap<String, Value>,
    /// Input pointer names declared for this run.
    pub inputs: &'a [String],
    /// Output pointer names declared so far.
    pub outputs: &'a [String],
    /// Current time, epoch milliseconds.
    pub now_ms: u64,
    store: &'a dyn Store,
}

impl<'a> TriggerContext<'a> {
    pub(crate) fn new(
        component: &'a str,
        captures: &'a BTreeMap<String, Value>,
        inputs: &'a [String],
        outputs: &'a [String],
        now_ms: u64,
        store: &'a dyn Store,
    ) -> Self {
        TriggerContext {
            component,
            captures,
            inputs,
            outputs,
            now_ms,
            store,
        }
    }

    /// A captured variable by name.
    pub fn capture(&self, name: &str) -> Option<&Value> {
        self.captures.get(name)
    }

    /// Numeric view of a captured list variable, nulls as NaN.
    pub fn numeric_capture(&self, name: &str) -> Option<Vec<f64>> {
        match self.captures.get(name)? {
            Value::List(items) => Some(
                items
                    .iter()
                    .map(|v| v.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            ),
            v => v.as_f64().map(|x| vec![x]),
        }
    }

    /// Metric history of this component (§3.4 step 3: historical outputs
    /// materialized for monitoring in `afterRun`). Ascending by time.
    pub fn metric_history(&self, metric: &str) -> Vec<(u64, f64)> {
        self.store
            .metrics(self.component, metric)
            .map(|pts| pts.into_iter().map(|m| (m.ts_ms, m.value)).collect())
            .unwrap_or_default()
    }

    /// Ids of prior runs of this component, ascending.
    pub fn prior_runs(&self) -> Vec<RunId> {
        self.store
            .runs_for_component(self.component)
            .unwrap_or_default()
    }

    /// A value logged by a named trigger in the most recent prior run —
    /// how Example 4.3 "propagates" offline tests to the online component.
    pub fn last_trigger_value(&self, trigger: &str, key: &str) -> Option<Value> {
        let last = self.prior_runs().into_iter().last()?;
        let run = self.store.run(last).ok().flatten()?;
        run.triggers
            .iter()
            .find(|t| t.trigger == trigger)
            .and_then(|t| t.values.get(key).cloned())
    }

    /// Metric history of *another* component — cross-component checks
    /// (Example 4.3: compare offline vs online feature generation).
    pub fn other_component_metric(&self, component: &str, metric: &str) -> Vec<(u64, f64)> {
        self.store
            .metrics(component, metric)
            .map(|pts| pts.into_iter().map(|m| (m.ts_ms, m.value)).collect())
            .unwrap_or_default()
    }
}

/// A named check run in a component phase.
pub trait Trigger: Send + Sync {
    /// Stable name, recorded in the run log.
    fn name(&self) -> &str;
    /// Execute the check.
    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome;
}

/// A trigger plus its scheduling mode.
pub struct TriggerSpec {
    /// The check itself.
    pub trigger: Arc<dyn Trigger>,
    /// Run on a worker thread, overlapping the component body (the
    /// paper's `@asynchronous`).
    pub asynchronous: bool,
}

/// Wrap a closure as a trigger.
pub struct FnTrigger<F> {
    name: String,
    f: F,
}

impl<F> FnTrigger<F>
where
    F: Fn(&TriggerContext<'_>) -> TriggerOutcome + Send + Sync,
{
    /// Named closure trigger.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnTrigger {
            name: name.into(),
            f,
        }
    }
}

impl<F> Trigger for FnTrigger<F>
where
    F: Fn(&TriggerContext<'_>) -> TriggerOutcome + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        (self.f)(ctx)
    }
}

/// Convert an outcome into its storable record, and split out metrics.
pub(crate) fn outcome_to_record(
    name: &str,
    phase: Phase,
    outcome: &TriggerOutcome,
) -> (TriggerOutcomeRecord, Vec<(String, f64)>) {
    (
        TriggerOutcomeRecord {
            trigger: name.to_owned(),
            phase: phase.name().to_owned(),
            passed: outcome.passed,
            detail: outcome.detail.clone(),
            values: outcome.values.clone(),
        },
        outcome.metrics.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{MemoryStore, MetricRecord};

    #[test]
    fn outcome_builders() {
        let o = TriggerOutcome::pass("ok")
            .with_value("nulls", 0i64)
            .with_metric("null_fraction", 0.0);
        assert!(o.passed);
        assert_eq!(o.values["nulls"], Value::Int(0));
        assert_eq!(o.metrics, vec![("null_fraction".to_string(), 0.0)]);
        assert!(!TriggerOutcome::fail("bad").passed);
    }

    #[test]
    fn context_accessors() {
        let store = MemoryStore::new();
        store
            .log_metric(MetricRecord {
                component: "prep".into(),
                run_id: None,
                name: "rows".into(),
                value: 10.0,
                ts_ms: 5,
            })
            .unwrap();
        let mut captures = BTreeMap::new();
        captures.insert("xs".to_string(), Value::from(vec![1i64, 2, 3]));
        captures.insert("scalar".to_string(), Value::from(2.5));
        let inputs = vec!["in.csv".to_string()];
        let outputs = vec![];
        let ctx = TriggerContext::new("prep", &captures, &inputs, &outputs, 100, &store);
        assert_eq!(ctx.numeric_capture("xs"), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(ctx.numeric_capture("scalar"), Some(vec![2.5]));
        assert!(ctx.numeric_capture("missing").is_none());
        assert_eq!(ctx.metric_history("rows"), vec![(5, 10.0)]);
        assert_eq!(ctx.other_component_metric("prep", "rows").len(), 1);
        assert!(ctx.prior_runs().is_empty());
        assert!(ctx.last_trigger_value("t", "k").is_none());
    }

    #[test]
    fn fn_trigger_runs() {
        let store = MemoryStore::new();
        let captures = BTreeMap::new();
        let t = FnTrigger::new("always-fail", |_ctx: &TriggerContext<'_>| {
            TriggerOutcome::fail("nope")
        });
        assert_eq!(t.name(), "always-fail");
        let ctx = TriggerContext::new("c", &captures, &[], &[], 0, &store);
        assert!(!t.run(&ctx).passed);
    }

    #[test]
    fn record_conversion() {
        let o = TriggerOutcome::fail("32% nulls").with_metric("null_fraction", 0.32);
        let (rec, metrics) = outcome_to_record("no_nulls", Phase::Before, &o);
        assert_eq!(rec.trigger, "no_nulls");
        assert_eq!(rec.phase, "before");
        assert!(!rec.passed);
        assert_eq!(metrics.len(), 1);
    }
}
