//! The pipeline health report: §5.3's "Complex DAGs" challenge — "pipeline
//! DAGs could be large and complex, motivating new methods to draw human
//! attention to summaries and anomalies (i.e., the most problematic
//! components)".
//!
//! [`health_report`] condenses the whole run log into one screen: per-
//! component health rolled up from the graph, the most problematic
//! components ranked by failure rate × recency, current staleness, and
//! flagged-output pressure.

use crate::commands::Commands;
use crate::error::Result;
use crate::execution::Mltrace;
use crate::graph::build_graph;
use mltrace_provenance::{component_summary, most_problematic, ComponentSummary};
use mltrace_store::{
    EventFilter, EventKind, EventSeverity, IncidentRecord, IncidentState, MS_PER_DAY,
};
use mltrace_telemetry::format_ns;
use std::fmt::Write as _;

/// Aggregate engine self-telemetry: what observability itself costs, from
/// the `component_run` and `run_overhead` histograms (§3.2: "logging
/// should not interfere with the normal operation of the pipeline").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOverhead {
    /// Runs captured by the `component_run` span.
    pub instrumented_runs: u64,
    /// Median wall time of a full instrumented run.
    pub run_p50_ns: u64,
    /// 95th-percentile wall time of a full instrumented run.
    pub run_p95_ns: u64,
    /// Median engine-added time (run minus user body).
    pub overhead_p50_ns: u64,
    /// 95th-percentile engine-added time.
    pub overhead_p95_ns: u64,
}

/// One screen of pipeline health.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Evaluation time, epoch milliseconds.
    pub now_ms: u64,
    /// Per-component rollups, ordered by name.
    pub components: Vec<ComponentSummary>,
    /// Most problematic components with their attention scores,
    /// descending.
    pub problematic: Vec<(ComponentSummary, f64)>,
    /// Components whose latest run is stale, with rendered reasons.
    pub stale: Vec<(String, Vec<String>)>,
    /// Outputs currently flagged for review.
    pub flagged: Vec<String>,
    /// Total live runs in the log.
    pub total_runs: usize,
    /// Total failed runs.
    pub total_failures: usize,
    /// Unresolved incidents from the journal's incident table.
    pub incidents: Vec<IncidentRecord>,
    /// Recent warn-tier alert firings (never paged, surfaced here —
    /// §4.1's middle ground between silence and fatigue).
    pub warnings: Vec<String>,
    /// Engine self-overhead rollup; `None` until an instrumented run has
    /// executed in this process (telemetry is per-process, not replayed
    /// from the store).
    pub engine: Option<EngineOverhead>,
}

impl HealthReport {
    /// Overall failure rate across the log.
    pub fn failure_rate(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            self.total_failures as f64 / self.total_runs as f64
        }
    }

    /// True when nothing demands attention: no problematic components, no
    /// stale components, no flagged outputs, no open incidents. Warnings
    /// alone do not flip health — that is what makes them warn-tier.
    pub fn healthy(&self) -> bool {
        self.problematic.is_empty()
            && self.stale.is_empty()
            && self.flagged.is_empty()
            && self.incidents.is_empty()
    }

    /// One-screen text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pipeline health: {} components, {} runs, {:.1}% failed — {}",
            self.components.len(),
            self.total_runs,
            self.failure_rate() * 100.0,
            if self.healthy() {
                "HEALTHY"
            } else {
                "ATTENTION NEEDED"
            }
        );
        if !self.problematic.is_empty() {
            let _ = writeln!(out, "most problematic components:");
            for (summary, score) in &self.problematic {
                let _ = writeln!(
                    out,
                    "  {:<24} score {:.3}  ({}/{} runs failed)",
                    summary.component, score, summary.failures, summary.runs
                );
            }
        }
        if !self.stale.is_empty() {
            let _ = writeln!(out, "stale components:");
            for (component, reasons) in &self.stale {
                let _ = writeln!(out, "  {component}");
                for r in reasons {
                    let _ = writeln!(out, "    - {r}");
                }
            }
        }
        if !self.flagged.is_empty() {
            let _ = writeln!(out, "{} output(s) flagged for review", self.flagged.len());
        }
        if !self.incidents.is_empty() {
            let _ = writeln!(out, "open incidents:");
            for i in &self.incidents {
                let _ = writeln!(
                    out,
                    "  [{}] {} — {} fire(s), {} suppressed, burning {}ms: {}",
                    i.state.name(),
                    i.key,
                    i.fire_count,
                    i.suppressed_count,
                    self.now_ms.saturating_sub(i.opened_ms),
                    i.detail
                );
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "warnings (not paged):");
            for w in &self.warnings {
                let _ = writeln!(out, "  ⚠ {w}");
            }
        }
        if let Some(e) = &self.engine {
            let _ = writeln!(
                out,
                "engine overhead: {} instrumented run(s), run p50 {} / p95 {}, engine-added p50 {} / p95 {}",
                e.instrumented_runs,
                format_ns(e.run_p50_ns),
                format_ns(e.run_p95_ns),
                format_ns(e.overhead_p50_ns),
                format_ns(e.overhead_p95_ns),
            );
        }
        out
    }
}

/// Build a health report over everything in the store. `horizon_days`
/// controls how quickly old failures stop demanding attention.
pub fn health_report(ml: &Mltrace, horizon_days: u64, top_k: usize) -> Result<HealthReport> {
    let store = ml.store();
    let graph = build_graph(store.as_ref())?;
    let now_ms = ml.now_ms();
    let components: Vec<ComponentSummary> = component_summary(&graph).into_values().collect();
    let problematic = most_problematic(&graph, now_ms, horizon_days.max(1) * MS_PER_DAY, top_k);
    let cmds = Commands::new(ml);
    let stale: Vec<(String, Vec<String>)> = cmds
        .stale(None)?
        .into_iter()
        .filter(|e| !e.reasons.is_empty())
        .map(|e| (e.component, e.reasons.iter().map(|r| r.render()).collect()))
        .collect();
    let flagged = store.flagged()?;
    let total_runs: usize = components.iter().map(|c| c.runs).sum();
    let total_failures: usize = components.iter().map(|c| c.failures).sum();
    let incidents: Vec<IncidentRecord> = store
        .incidents()?
        .into_iter()
        .filter(|i| i.state != IncidentState::Resolved)
        .collect();
    // Warn-tier alert firings: recorded, rendered here, never paged.
    let warn_filter = EventFilter::all()
        .with_kind(EventKind::AlertFired)
        .with_severity(EventSeverity::Warn);
    let mut warnings: Vec<String> = store
        .scan_events(None, &warn_filter, None)?
        .into_iter()
        .map(|e| {
            if e.component.is_empty() {
                e.detail
            } else {
                format!("{}: {}", e.component, e.detail)
            }
        })
        .collect();
    const MAX_WARNINGS: usize = 10;
    if warnings.len() > MAX_WARNINGS {
        warnings = warnings.split_off(warnings.len() - MAX_WARNINGS);
    }
    let snap = ml.telemetry().snapshot();
    let engine = match (
        snap.histograms.get("component_run"),
        snap.histograms.get("run_overhead"),
    ) {
        (Some(run), Some(overhead)) if run.count > 0 => Some(EngineOverhead {
            instrumented_runs: run.count,
            run_p50_ns: run.quantile(0.50).unwrap_or(0),
            run_p95_ns: run.quantile(0.95).unwrap_or(0),
            overhead_p50_ns: overhead.quantile(0.50).unwrap_or(0),
            overhead_p95_ns: overhead.quantile(0.95).unwrap_or(0),
        }),
        _ => None,
    };
    Ok(HealthReport {
        now_ms,
        components,
        problematic,
        stale,
        flagged,
        total_runs,
        total_failures,
        incidents,
        warnings,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::RunSpec;
    use mltrace_store::ManualClock;

    #[test]
    fn healthy_pipeline_reports_healthy() {
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        ml.run(
            "clean",
            RunSpec::new().input("raw.csv").output("c.csv"),
            |_| Ok(()),
        )
        .unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(report.healthy(), "{report:?}");
        assert_eq!(report.total_runs, 2);
        assert_eq!(report.failure_rate(), 0.0);
        assert!(report.render().contains("HEALTHY"));
    }

    #[test]
    fn failures_and_flags_demand_attention() {
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        let _ = ml.run("train", RunSpec::new().input("raw.csv"), |_| {
            Err::<(), _>("diverged".into())
        });
        ml.store().set_flag("raw.csv", true).unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.total_failures, 1);
        assert_eq!(report.problematic[0].0.component, "train");
        assert_eq!(report.flagged, vec!["raw.csv".to_string()]);
        let rendered = report.render();
        assert!(rendered.contains("ATTENTION NEEDED"));
        assert!(rendered.contains("train"));
        assert!(rendered.contains("flagged for review"));
    }

    #[test]
    fn staleness_appears_in_report() {
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("featurize", RunSpec::new().output("f.csv"), |_| Ok(()))
            .unwrap();
        clock.advance(1);
        ml.run("infer", RunSpec::new().input("f.csv").output("p"), |_| {
            Ok(())
        })
        .unwrap();
        clock.advance(40 * MS_PER_DAY);
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].0, "infer");
        assert!(report.stale[0].1[0].contains("days old"));
    }

    #[test]
    fn open_incidents_and_warnings_surface_in_report() {
        use crate::monitor::PipelineMonitor;
        use mltrace_metrics::{AlertRule, Comparator, Severity};
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("infer", RunSpec::new().output("pred"), |_| Ok(()))
            .unwrap();
        let mut mon = PipelineMonitor::new(0);
        mon.add_rule(AlertRule {
            id: "acc-floor".into(),
            metric: "accuracy".into(),
            comparator: Comparator::Gte,
            threshold: 0.9,
            severity: Severity::Page,
            cooldown_ms: 0,
        });
        mon.add_rule(AlertRule {
            id: "latency-creep".into(),
            metric: "p99_ms".into(),
            comparator: Comparator::Lte,
            threshold: 250.0,
            severity: Severity::Warn,
            cooldown_ms: 0,
        });
        let store = ml.store();
        // A warn alone keeps the pipeline healthy but shows up rendered.
        mon.observe(store.as_ref(), "infer", "p99_ms", 400.0, 1_000_100)
            .unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(report.healthy(), "warnings do not flip health");
        assert_eq!(report.warnings.len(), 1);
        assert!(report.render().contains("warnings (not paged):"));
        assert!(report.render().contains("latency-creep"));
        // An open incident demands attention.
        mon.observe(store.as_ref(), "infer", "accuracy", 0.5, 1_000_200)
            .unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.incidents.len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("open incidents:"), "{rendered}");
        assert!(rendered.contains("acc-floor"), "{rendered}");
        // Resolution clears the incident section.
        mon.resolve(store.as_ref(), "acc-floor", 1_000_300).unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(report.incidents.is_empty());
        assert!(report.healthy());
    }

    #[test]
    fn empty_store_is_trivially_healthy() {
        let ml = Mltrace::in_memory();
        let report = health_report(&ml, 30, 5).unwrap();
        assert!(report.healthy());
        assert_eq!(report.total_runs, 0);
        assert_eq!(report.failure_rate(), 0.0);
        assert!(
            report.engine.is_none(),
            "no instrumented runs → no engine section"
        );
        assert!(!report.render().contains("engine overhead"));
    }

    #[test]
    fn problematic_ranking_orders_by_failure_rate_times_recency() {
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        // old_bad: 100% failure rate, but the failure is 29 days old →
        // recency floor 0.1 → score 0.1.
        let _ = ml.run("old_bad", RunSpec::new(), |_| Err::<(), _>("x".into()));
        clock.advance(29 * MS_PER_DAY);
        // recent_bad: 1 of 2 runs failed just now → 0.5 × 1.0 = 0.5.
        ml.run("recent_bad", RunSpec::new(), |_| Ok(())).unwrap();
        let _ = ml.run("recent_bad", RunSpec::new(), |_| Err::<(), _>("x".into()));
        // recent_mild: 1 of 4 runs failed just now → 0.25 × 1.0 = 0.25.
        for _ in 0..3 {
            ml.run("recent_mild", RunSpec::new(), |_| Ok(())).unwrap();
        }
        let _ = ml.run("recent_mild", RunSpec::new(), |_| Err::<(), _>("x".into()));

        let report = health_report(&ml, 30, 5).unwrap();
        let order: Vec<&str> = report
            .problematic
            .iter()
            .map(|(s, _)| s.component.as_str())
            .collect();
        assert_eq!(order, vec!["recent_bad", "recent_mild", "old_bad"]);
        let scores: Vec<f64> = report.problematic.iter().map(|(_, sc)| *sc).collect();
        assert!((scores[0] - 0.5).abs() < 1e-9, "{scores:?}");
        assert!((scores[1] - 0.25).abs() < 1e-9, "{scores:?}");
        assert!((scores[2] - 0.1).abs() < 1e-9, "{scores:?}");
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "descending: {scores:?}"
        );
    }

    #[test]
    fn engine_overhead_section_appears_after_instrumented_runs() {
        let clock = ManualClock::starting_at(1_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        let report = health_report(&ml, 30, 5).unwrap();
        let engine = report.engine.as_ref().expect("engine section populated");
        assert_eq!(engine.instrumented_runs, 2);
        assert!(engine.run_p50_ns > 0);
        assert!(engine.run_p95_ns >= engine.run_p50_ns);
        let rendered = report.render();
        assert!(
            rendered.contains("engine overhead: 2 instrumented run(s)"),
            "{rendered}"
        );
    }
}
