//! The query surface (UI layer of Figure 2): the eight commands the
//! paper's demo UI supports (§5) — `history`, `trace`, `inspect`, `flag`,
//! `unflag`, `review_flagged`, `stale`, and `recent` — each returning
//! structured data plus a text rendering (the Figure 4 views).

use crate::error::{CoreError, Result};
use crate::execution::Mltrace;
use crate::graph::GraphCache;
use crate::staleness::{self, StalenessReason};
use mltrace_provenance::{slice_lineage, trace_output, RankedRun, TraceNode, TraceOptions};
use mltrace_store::{
    CompactionSummary, ComponentRunRecord, EventKind, EventSeverity, ObservabilityEvent, RunId,
    Store,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Stateful command surface over an [`Mltrace`] instance. Keeps an
/// incrementally-refreshed lineage graph for trace/slice commands.
pub struct Commands<'a> {
    ml: &'a Mltrace,
    cache: GraphCache,
}

/// One run in a `history` listing.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The run record.
    pub run: ComponentRunRecord,
    /// Metric points attributed to this run: (name, value).
    pub metrics: Vec<(String, f64)>,
}

/// Output of the `history` command.
#[derive(Debug, Clone)]
pub struct History {
    /// Component queried.
    pub component: String,
    /// Most recent runs, newest first.
    pub entries: Vec<HistoryEntry>,
    /// Aggregates for compacted (older) windows.
    pub compacted: Vec<CompactionSummary>,
}

impl History {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "history of '{}':", self.component);
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {} [{}] start={} dur={}ms deps={:?}",
                e.run.id,
                e.run.status.name(),
                e.run.start_ms,
                e.run.duration_ms(),
                e.run.dependencies.iter().map(|d| d.0).collect::<Vec<_>>()
            );
            for (name, value) in &e.metrics {
                let _ = writeln!(out, "      {name} = {value:.4}");
            }
            for t in &e.run.triggers {
                let mark = if t.passed { "✓" } else { "✗" };
                let _ = writeln!(out, "      {mark} {}:{} {}", t.phase, t.trigger, t.detail);
            }
        }
        for s in &self.compacted {
            let _ = writeln!(
                out,
                "  [compacted] window {}..{}: {} runs, {} failed, mean {:.0}ms",
                s.window_start_ms, s.window_end_ms, s.run_count, s.failed_count, s.mean_duration_ms
            );
        }
        out
    }
}

/// Output of the `stale` command for one component.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// Component name.
    pub component: String,
    /// Latest run evaluated.
    pub run_id: RunId,
    /// Why it is stale (empty = fresh).
    pub reasons: Vec<StalenessReason>,
}

/// Output of the `review_flagged` command (Figure 4's review view).
#[derive(Debug, Clone)]
pub struct FlaggedReview {
    /// Outputs currently flagged.
    pub flagged: Vec<String>,
    /// Component runs ranked by frequency across the flagged traces.
    pub ranked: Vec<RankedRun>,
}

impl FlaggedReview {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} flagged output(s)", self.flagged.len());
        for f in &self.flagged {
            let _ = writeln!(out, "  ⚑ {f}");
        }
        let _ = writeln!(out, "component runs by frequency in flagged traces:");
        for r in &self.ranked {
            let mark = if r.failed { "✗" } else { " " };
            let _ = writeln!(
                out,
                "  {:>4}× run#{} {mark} {}",
                r.frequency, r.run_id, r.component
            );
        }
        out
    }
}

impl<'a> Commands<'a> {
    /// Create a command surface over an mltrace instance.
    pub fn new(ml: &'a Mltrace) -> Self {
        Commands {
            ml,
            cache: GraphCache::new(),
        }
    }

    fn store(&self) -> &dyn Store {
        self.ml.store().as_ref()
    }

    /// `history <component> [limit]`: recent runs (newest first) with
    /// their metrics and trigger outcomes, plus compacted aggregates.
    pub fn history(&self, component: &str, limit: usize) -> Result<History> {
        if self.store().component(component)?.is_none() {
            return Err(CoreError::UnknownComponent(component.to_owned()));
        }
        // One batched accessor (one index lock + one fetch per shard)
        // instead of a point lookup per run.
        let runs = self.store().component_history(component, limit)?;
        // Attribute metric points in a single pass over each series rather
        // than rescanning every series once per run. Per-run metric order
        // is unchanged: series in `metric_names` order, points in log
        // order within a series.
        let wanted: HashMap<RunId, usize> =
            runs.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        let mut metrics: Vec<Vec<(String, f64)>> = vec![Vec::new(); runs.len()];
        for name in self.store().metric_names(component)? {
            for point in self.store().metrics(component, &name)? {
                if let Some(&i) = point.run_id.as_ref().and_then(|id| wanted.get(id)) {
                    metrics[i].push((name.clone(), point.value));
                }
            }
        }
        let entries = runs
            .into_iter()
            .zip(metrics)
            .map(|(run, metrics)| HistoryEntry { run, metrics })
            .collect();
        Ok(History {
            component: component.to_owned(),
            entries,
            compacted: self.store().summaries(component)?,
        })
    }

    /// `trace <output>`: the lineage tree of an output pointer, computed
    /// by DFS with time-travel producer resolution.
    pub fn trace(&mut self, output: &str) -> Result<TraceNode> {
        let ml = self.ml;
        let _span = ml.telemetry().span("provenance.trace");
        self.cache.refresh(ml.store().as_ref())?;
        trace_output(self.cache.graph(), output, TraceOptions::default())
            .ok_or_else(|| CoreError::UnknownOutput(output.to_owned()))
    }

    /// `inspect <run_id>`: the full ComponentRun record.
    pub fn inspect(&self, run_id: u64) -> Result<ComponentRunRecord> {
        self.store()
            .run(RunId(run_id))?
            .ok_or(CoreError::UnknownRun(run_id))
    }

    /// Render an inspected run in the Figure 4 detail style.
    pub fn render_inspect(&self, run: &ComponentRunRecord) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", run.id, run.component);
        let _ = writeln!(out, "  status:   {}", run.status.name());
        let _ = writeln!(
            out,
            "  started:  {} (+{}ms)",
            run.start_ms,
            run.duration_ms()
        );
        let _ = writeln!(
            out,
            "  code:     {}",
            if run.code_hash.is_empty() {
                "<none>"
            } else {
                &run.code_hash
            }
        );
        let _ = writeln!(out, "  inputs:   {:?}", run.inputs);
        let _ = writeln!(out, "  outputs:  {:?}", run.outputs);
        let _ = writeln!(
            out,
            "  deps:     {:?}",
            run.dependencies.iter().map(|d| d.0).collect::<Vec<_>>()
        );
        if !run.notes.is_empty() {
            let _ = writeln!(out, "  notes:    {}", run.notes);
        }
        for t in &run.triggers {
            let mark = if t.passed { "✓" } else { "✗" };
            let _ = writeln!(out, "  {mark} {}:{} {}", t.phase, t.trigger, t.detail);
            for (k, v) in &t.values {
                let _ = writeln!(out, "      {k} = {v}");
            }
        }
        for (k, v) in &run.metadata {
            let _ = writeln!(out, "  meta {k} = {v}");
        }
        out
    }

    /// `flag <output>`: mark an output for review. Returns prior state.
    pub fn flag(&self, output: &str) -> Result<bool> {
        Ok(self.store().set_flag(output, true)?)
    }

    /// `unflag <output>`: clear a review flag. Returns prior state.
    pub fn unflag(&self, output: &str) -> Result<bool> {
        Ok(self.store().set_flag(output, false)?)
    }

    /// `review_flagged`: aggregate the traces of all flagged outputs and
    /// rank the component runs in them by frequency (Example 4.4's
    /// debugging move, and the Figure 4 review screen).
    pub fn review_flagged(&mut self) -> Result<FlaggedReview> {
        let ml = self.ml;
        let flagged = ml.store().flagged()?;
        self.cache.refresh(ml.store().as_ref())?;
        let report = slice_lineage(self.cache.graph(), &flagged, TraceOptions::default());
        Ok(FlaggedReview {
            flagged,
            ranked: report.ranked,
        })
    }

    /// `stale [component]`: evaluate staleness of the latest run of one
    /// component, or of every registered component.
    pub fn stale(&self, component: Option<&str>) -> Result<Vec<StaleEntry>> {
        let components: Vec<String> = match component {
            Some(c) => vec![c.to_owned()],
            None => self
                .store()
                .components()?
                .into_iter()
                .map(|c| c.name)
                .collect(),
        };
        let now = self.ml.now_ms();
        let mut entries = Vec::new();
        for c in components {
            let policy = self.ml.staleness_policy(&c);
            if let Some((run_id, reasons)) =
                staleness::evaluate_component(self.store(), &c, &policy, now)?
            {
                entries.push(StaleEntry {
                    component: c,
                    run_id,
                    reasons,
                });
            }
        }
        Ok(entries)
    }

    /// `stale` plus journal emission: every component found stale is
    /// recorded as a `staleness_flagged` event tied to the evaluated run.
    /// The plain [`Commands::stale`] stays emission-free so passive
    /// surfaces (the health report) can poll without flooding the journal.
    pub fn stale_journaled(&self, component: Option<&str>) -> Result<Vec<StaleEntry>> {
        let entries = self.stale(component)?;
        let now = self.ml.now_ms();
        let events: Vec<ObservabilityEvent> = entries
            .iter()
            .filter(|e| !e.reasons.is_empty())
            .map(|e| {
                ObservabilityEvent::new(EventKind::StalenessFlagged, EventSeverity::Warn, now)
                    .component(e.component.clone())
                    .run(e.run_id)
                    .detail(
                        e.reasons
                            .iter()
                            .map(|r| r.render())
                            .collect::<Vec<_>>()
                            .join("; "),
                    )
            })
            .collect();
        self.store().log_events(events)?;
        Ok(entries)
    }

    /// Render the stale listing.
    pub fn render_stale(&self, entries: &[StaleEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            if e.reasons.is_empty() {
                let _ = writeln!(out, "  fresh  {} ({})", e.component, e.run_id);
            } else {
                let _ = writeln!(out, "  STALE  {} ({})", e.component, e.run_id);
                for r in &e.reasons {
                    let _ = writeln!(out, "         - {}", r.render());
                }
            }
        }
        out
    }

    /// `recent [limit]`: the most recently logged runs across all
    /// components, newest first.
    pub fn recent(&self, limit: usize) -> Result<Vec<ComponentRunRecord>> {
        let ids = self.store().run_ids()?;
        let mut out = Vec::new();
        for &id in ids.iter().rev().take(limit) {
            if let Some(run) = self.store().run(id)? {
                out.push(run);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::RunSpec;
    use mltrace_store::ManualClock;
    use std::sync::Arc;

    fn demo() -> (Mltrace, Arc<ManualClock>) {
        let clock = ManualClock::starting_at(1_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("etl", RunSpec::new().output("raw.csv"), |ctx| {
            ctx.log_metric("rows", 100.0);
            Ok(())
        })
        .unwrap();
        clock.advance(10);
        ml.run(
            "clean",
            RunSpec::new().input("raw.csv").output("clean.csv"),
            |_| Ok(()),
        )
        .unwrap();
        clock.advance(10);
        ml.run(
            "infer",
            RunSpec::new().input("clean.csv").output("pred-1"),
            |_| Ok(()),
        )
        .unwrap();
        (ml, clock)
    }

    #[test]
    fn history_lists_runs_and_metrics() {
        let (ml, _clock) = demo();
        let cmds = Commands::new(&ml);
        let h = cmds.history("etl", 10).unwrap();
        assert_eq!(h.entries.len(), 1);
        assert_eq!(h.entries[0].metrics, vec![("rows".to_string(), 100.0)]);
        assert!(h.render().contains("rows = 100"));
        assert!(matches!(
            cmds.history("ghost", 5),
            Err(CoreError::UnknownComponent(_))
        ));
    }

    #[test]
    fn history_limit_and_order() {
        let (ml, clock) = demo();
        for _ in 0..5 {
            clock.advance(10);
            ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
                .unwrap();
        }
        let cmds = Commands::new(&ml);
        let h = cmds.history("etl", 3).unwrap();
        assert_eq!(h.entries.len(), 3);
        // Newest first.
        assert!(h.entries[0].run.start_ms > h.entries[1].run.start_ms);
    }

    #[test]
    fn trace_follows_lineage() {
        let (ml, _clock) = demo();
        let mut cmds = Commands::new(&ml);
        let t = cmds.trace("pred-1").unwrap();
        assert_eq!(t.component, "infer");
        assert_eq!(t.depth(), 3);
        assert!(matches!(
            cmds.trace("ghost"),
            Err(CoreError::UnknownOutput(_))
        ));
    }

    #[test]
    fn inspect_shows_run() {
        let (ml, _clock) = demo();
        let cmds = Commands::new(&ml);
        let run = cmds.inspect(1).unwrap();
        assert_eq!(run.component, "etl");
        let rendered = cmds.render_inspect(&run);
        assert!(rendered.contains("run#1"));
        assert!(rendered.contains("raw.csv"));
        assert!(matches!(cmds.inspect(999), Err(CoreError::UnknownRun(999))));
    }

    #[test]
    fn flag_review_unflag_cycle() {
        let (ml, _clock) = demo();
        let mut cmds = Commands::new(&ml);
        assert!(!cmds.flag("pred-1").unwrap());
        let review = cmds.review_flagged().unwrap();
        assert_eq!(review.flagged, vec!["pred-1".to_string()]);
        // Trace of pred-1 has 3 runs, all frequency 1.
        assert_eq!(review.ranked.len(), 3);
        assert!(review.render().contains("⚑ pred-1"));
        assert!(cmds.unflag("pred-1").unwrap());
        let review = cmds.review_flagged().unwrap();
        assert!(review.flagged.is_empty());
        assert!(review.ranked.is_empty());
    }

    #[test]
    fn stale_command_reports_reasons() {
        let (ml, clock) = demo();
        // Jump 40 days: infer's dependencies are now ancient.
        clock.advance(40 * mltrace_store::MS_PER_DAY);
        ml.run(
            "infer",
            RunSpec::new().input("clean.csv").output("pred-2"),
            |_| Ok(()),
        )
        .unwrap();
        let cmds = Commands::new(&ml);
        let entries = cmds.stale(Some("infer")).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].reasons.is_empty(), "old dependency expected");
        let rendered = cmds.render_stale(&entries);
        assert!(rendered.contains("STALE"));
        // All components view includes fresh ones.
        let all = cmds.stale(None).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn stale_journaled_emits_flag_events() {
        use mltrace_store::EventFilter;
        let (ml, clock) = demo();
        clock.advance(40 * mltrace_store::MS_PER_DAY);
        let cmds = Commands::new(&ml);
        let flagged_filter =
            EventFilter::all().with_kind(mltrace_store::EventKind::StalenessFlagged);
        // The passive evaluator journals nothing.
        let entries = cmds.stale(None).unwrap();
        assert!(entries.iter().any(|e| !e.reasons.is_empty()));
        let store = ml.store();
        assert!(store
            .scan_events(None, &flagged_filter, None)
            .unwrap()
            .is_empty());
        // The journaling variant emits one event per stale component,
        // tied to the evaluated run.
        let entries = cmds.stale_journaled(None).unwrap();
        let stale_count = entries.iter().filter(|e| !e.reasons.is_empty()).count();
        assert!(stale_count > 0);
        let events = store.scan_events(None, &flagged_filter, None).unwrap();
        assert_eq!(events.len(), stale_count);
        assert!(events.iter().all(|e| e.run_id.is_some()));
        assert!(events[0].detail.contains("days old"), "{events:?}");
        assert_eq!(events[0].severity, mltrace_store::EventSeverity::Warn);
    }

    #[test]
    fn recent_lists_newest_first() {
        let (ml, _clock) = demo();
        let cmds = Commands::new(&ml);
        let recent = cmds.recent(2).unwrap();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].component, "infer");
        assert_eq!(recent[1].component, "clean");
    }
}
