//! Export a run's provenance tree as a standard trace file.
//!
//! §5's debugging stories end with a human staring at a DAG; existing
//! trace viewers (Perfetto / `chrome://tracing`, any OTLP-JSON consumer)
//! already render such trees well. [`export_trace`] walks a run's
//! dependency closure — the same run-to-run edges the execution layer
//! infers from I/O identity — and serializes it either as a Chrome trace
//! (`ph: "X"` complete events, microsecond timestamps) or as OTLP-JSON
//! `resourceSpans` where each run is a span and its parent is the run
//! that consumed its outputs.
//!
//! JSON is assembled by hand: the shapes are fixed and tiny, and only
//! strings need escaping.

use crate::error::{CoreError, Result};
use mltrace_store::{ComponentRunRecord, RunId, RunStatus, Store};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-component blame note from the persisted diagnosis rankings: each
/// suspect keeps its best (lowest) rank across every diagnosed incident.
/// Spans of implicated components carry the note, so a trace viewer shows
/// the suspected root cause right next to the timing it explains. Stores
/// with no diagnoses yield an empty map and an unannotated trace.
fn blame_map(store: &dyn Store) -> Result<HashMap<String, String>> {
    let mut best: HashMap<String, (u64, String)> = HashMap::new();
    for row in store.diagnoses()? {
        // diagnoses() iterates incident keys in order and ranks ascending
        // within each, so "first strictly-better rank wins" is stable.
        let keep = best
            .get(&row.suspect)
            .is_none_or(|(rank, _)| row.rank < *rank);
        if keep {
            let note = format!("#{} suspect for {}", row.rank, row.incident_key);
            best.insert(row.suspect.clone(), (row.rank, note));
        }
    }
    Ok(best.into_iter().map(|(k, (_, note))| (k, note)).collect())
}

/// Supported trace file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace event format (Perfetto, `chrome://tracing`).
    Chrome,
    /// OpenTelemetry OTLP-JSON `resourceSpans`.
    OtlpJson,
}

impl TraceFormat {
    /// Parse a CLI format name.
    pub fn parse(name: &str) -> Option<TraceFormat> {
        match name.to_ascii_lowercase().as_str() {
            "chrome" => Some(TraceFormat::Chrome),
            "otlp" | "otlp-json" | "otlp_json" => Some(TraceFormat::OtlpJson),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The run's dependency closure in discovery (BFS) order, plus for each
/// run the id of the run that consumed it (absent for the root).
fn dependency_closure(
    store: &dyn Store,
    root: RunId,
) -> Result<(Vec<ComponentRunRecord>, HashMap<RunId, RunId>)> {
    let root_run = store.run(root)?.ok_or(CoreError::UnknownRun(root.0))?;
    let mut runs = vec![root_run];
    let mut parent: HashMap<RunId, RunId> = HashMap::new();
    let mut queue = 0;
    while queue < runs.len() {
        let (id, deps) = (runs[queue].id, runs[queue].dependencies.clone());
        queue += 1;
        for dep in deps {
            if dep == root || parent.contains_key(&dep) {
                continue; // already reached via a shorter consumer chain
            }
            // A dependency compacted out of the log is skipped, not fatal:
            // the exported trace is the surviving subtree.
            if let Some(run) = store.run(dep)? {
                parent.insert(dep, id);
                runs.push(run);
            }
        }
    }
    Ok((runs, parent))
}

/// Export the provenance trace of `run_id` as a `format` document. Spans
/// of components implicated by a stored diagnosis carry a blame
/// annotation (`args.blame` in Chrome traces, the `mltrace.blame`
/// attribute in OTLP).
pub fn export_trace(store: &dyn Store, run_id: RunId, format: TraceFormat) -> Result<String> {
    let (runs, parent) = dependency_closure(store, run_id)?;
    let blame = blame_map(store)?;
    Ok(match format {
        TraceFormat::Chrome => chrome_trace(&runs, &blame),
        TraceFormat::OtlpJson => otlp_trace(run_id, &runs, &parent, &blame),
    })
}

fn chrome_trace(runs: &[ComponentRunRecord], blame: &HashMap<String, String>) -> String {
    // One lane (tid) per component, in discovery order, so parallel runs
    // of different components stack instead of overlapping.
    let mut lanes: HashMap<&str, usize> = HashMap::new();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, run) in runs.iter().enumerate() {
        let next = lanes.len() + 1;
        let tid = *lanes.entry(run.component.as_str()).or_insert(next);
        if i > 0 {
            out.push(',');
        }
        let blame_field = match blame.get(run.component.as_str()) {
            Some(note) => format!(",\"blame\":{}", json_str(note)),
            None => String::new(),
        };
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"component_run\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\
             \"run_id\":{},\"status\":{},\"inputs\":{},\"outputs\":{}{blame_field}}}}}",
            json_str(&format!("{} {}", run.component, run.id)),
            run.start_ms * 1000,
            run.duration_ms() * 1000,
            tid,
            run.id.0,
            json_str(run.status.name()),
            json_list(&run.inputs),
            json_list(&run.outputs),
        );
    }
    out.push_str("]}");
    out
}

fn json_list(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
    out
}

fn otlp_trace(
    root: RunId,
    runs: &[ComponentRunRecord],
    parent: &HashMap<RunId, RunId>,
    blame: &HashMap<String, String>,
) -> String {
    let trace_id = format!("{:032x}", root.0);
    let mut out = String::from(
        "{\"resourceSpans\":[{\"resource\":{\"attributes\":[\
         {\"key\":\"service.name\",\"value\":{\"stringValue\":\"mltrace\"}}]},\
         \"scopeSpans\":[{\"scope\":{\"name\":\"mltrace\"},\"spans\":[",
    );
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent_field = match parent.get(&run.id) {
            Some(consumer) => format!("\"parentSpanId\":\"{:016x}\",", consumer.0),
            None => String::new(),
        };
        // OTLP status: 1 = OK, 2 = ERROR.
        let status_code = match run.status {
            RunStatus::Success => 1,
            _ => 2,
        };
        let blame_attr = match blame.get(run.component.as_str()) {
            Some(note) => format!(
                ",{{\"key\":\"mltrace.blame\",\"value\":{{\"stringValue\":{}}}}}",
                json_str(note)
            ),
            None => String::new(),
        };
        let _ = write!(
            out,
            "{{\"traceId\":\"{trace_id}\",\"spanId\":\"{:016x}\",{parent_field}\
             \"name\":{},\"kind\":1,\
             \"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\
             \"attributes\":[\
             {{\"key\":\"mltrace.run_id\",\"value\":{{\"intValue\":\"{}\"}}}},\
             {{\"key\":\"mltrace.status\",\"value\":{{\"stringValue\":{}}}}},\
             {{\"key\":\"mltrace.outputs\",\"value\":{{\"stringValue\":{}}}}}{blame_attr}],\
             \"status\":{{\"code\":{status_code}}}}}",
            run.id.0,
            json_str(&run.component),
            run.start_ms * 1_000_000,
            run.end_ms * 1_000_000,
            run.id.0,
            json_str(run.status.name()),
            json_str(&run.outputs.join(",")),
        );
    }
    out.push_str("]}]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{Mltrace, RunSpec};
    use mltrace_store::ManualClock;

    fn pipeline() -> Mltrace {
        let clock = ManualClock::starting_at(1_000);
        let ml = Mltrace::with_clock(clock.clone());
        ml.run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
            .unwrap();
        clock.advance(10);
        ml.run(
            "clean",
            RunSpec::new().input("raw.csv").output("clean.csv"),
            |_| Ok(()),
        )
        .unwrap();
        clock.advance(10);
        let _ = ml.run(
            "infer",
            RunSpec::new().input("clean.csv").output("pred-1"),
            |_| Err::<(), _>("boom".into()),
        );
        ml
    }

    #[test]
    fn format_parse() {
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("OTLP-JSON"), Some(TraceFormat::OtlpJson));
        assert_eq!(TraceFormat::parse("otlp"), Some(TraceFormat::OtlpJson));
        assert_eq!(TraceFormat::parse("jaeger"), None);
    }

    #[test]
    fn chrome_trace_covers_dependency_closure() {
        let ml = pipeline();
        let store = ml.store();
        let doc = export_trace(store.as_ref(), RunId(3), TraceFormat::Chrome).unwrap();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        for name in ["etl run#1", "clean run#2", "infer run#3"] {
            assert!(doc.contains(name), "{doc}");
        }
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(
            doc.contains("\"ts\":1020000"),
            "infer start 1020 ms → µs: {doc}"
        );
        assert!(doc.contains("\"status\":\"failed\""), "{doc}");
        // Three distinct components → three lanes.
        for tid in 1..=3 {
            assert!(doc.contains(&format!("\"tid\":{tid}")), "{doc}");
        }
    }

    #[test]
    fn otlp_trace_parents_spans_by_consumer() {
        let ml = pipeline();
        let store = ml.store();
        let doc = export_trace(store.as_ref(), RunId(3), TraceFormat::OtlpJson).unwrap();
        let root_span = format!("\"spanId\":\"{:016x}\"", 3);
        assert!(doc.contains(&root_span), "{doc}");
        // clean (run 2) is parented by infer (run 3); etl (1) by clean (2).
        assert!(
            doc.contains(&format!("\"parentSpanId\":\"{:016x}\"", 3)),
            "{doc}"
        );
        assert!(
            doc.contains(&format!("\"parentSpanId\":\"{:016x}\"", 2)),
            "{doc}"
        );
        // Exactly one span (the root) has no parent.
        assert_eq!(doc.matches("\"parentSpanId\"").count(), 2, "{doc}");
        assert_eq!(doc.matches("\"traceId\"").count(), 3, "{doc}");
        assert!(doc.contains("\"code\":2"), "failed root → ERROR: {doc}");
        assert!(doc.contains("\"code\":1"), "clean deps → OK: {doc}");
    }

    #[test]
    fn diagnosed_suspects_get_blame_annotations() {
        use mltrace_store::DiagnosisRecord;
        let ml = pipeline();
        let store = ml.store();
        store
            .put_diagnosis(
                "drift:infer/pred",
                vec![DiagnosisRecord {
                    incident_key: "drift:infer/pred".into(),
                    rank: 1,
                    suspect: "clean".into(),
                    evidence_kind: "run_failed".into(),
                    score: 2.7,
                    onset_ms: 1_010,
                    distance: 1,
                    detail: "latest run failed".into(),
                }],
            )
            .unwrap();
        let chrome = export_trace(store.as_ref(), RunId(3), TraceFormat::Chrome).unwrap();
        assert!(
            chrome.contains("\"blame\":\"#1 suspect for drift:infer/pred\""),
            "{chrome}"
        );
        // Only the implicated component's span is annotated.
        assert_eq!(chrome.matches("\"blame\"").count(), 1, "{chrome}");
        let otlp = export_trace(store.as_ref(), RunId(3), TraceFormat::OtlpJson).unwrap();
        assert!(
            otlp.contains(
                "{\"key\":\"mltrace.blame\",\"value\":\
                 {\"stringValue\":\"#1 suspect for drift:infer/pred\"}}"
            ),
            "{otlp}"
        );
        assert_eq!(otlp.matches("mltrace.blame").count(), 1, "{otlp}");
    }

    #[test]
    fn unknown_run_errors_and_strings_escape() {
        let ml = pipeline();
        let store = ml.store();
        assert!(matches!(
            export_trace(store.as_ref(), RunId(99), TraceFormat::Chrome),
            Err(CoreError::UnknownRun(99))
        ));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
