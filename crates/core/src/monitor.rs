//! The alert → journal → incident bridge.
//!
//! [`PipelineMonitor`] owns an [`AlertManager`] and an [`IncidentManager`]
//! and wires both into the store's observability journal: every firing
//! (and every cooldown suppression) becomes an `alert_fired` /
//! `alert_suppressed` event, Page-tier firings fold into deduplicated
//! incidents, and each incident lifecycle step both persists an
//! [`IncidentRecord`] (queryable via the `incidents` SQL table) and emits
//! an `incident_*` journal event.

use crate::error::Result;
use mltrace_metrics::{
    Alert, AlertManager, AlertRule, AlertStats, Incident, IncidentChange, IncidentManager,
    IncidentPhase, Severity,
};
use mltrace_store::{
    EventKind, EventSeverity, IncidentRecord, IncidentState, ObservabilityEvent, Store, Value,
};

/// Map an alert tier onto a journal severity.
fn event_severity(s: Severity) -> EventSeverity {
    match s {
        Severity::Log => EventSeverity::Info,
        Severity::Warn => EventSeverity::Warn,
        Severity::Page => EventSeverity::Page,
    }
}

/// Map an incident phase onto the persisted state.
fn incident_state(p: IncidentPhase) -> IncidentState {
    match p {
        IncidentPhase::Open => IncidentState::Open,
        IncidentPhase::Acknowledged => IncidentState::Acknowledged,
        IncidentPhase::Resolved => IncidentState::Resolved,
    }
}

/// Convert a live incident into its persisted record, freezing SLA burn
/// at `now_ms` for unresolved incidents.
fn incident_record(inc: &Incident, now_ms: u64) -> IncidentRecord {
    IncidentRecord {
        key: inc.key.clone(),
        state: incident_state(inc.phase),
        severity: event_severity(inc.severity),
        subject: inc.subject.clone(),
        opened_ms: inc.opened_ms,
        last_fire_ms: inc.last_fire_ms,
        resolved_ms: inc.resolved_ms,
        fire_count: inc.fire_count,
        suppressed_count: inc.suppressed_count,
        burn_ms: inc.burn_ms(now_ms),
        detail: inc.detail.clone(),
    }
}

/// Alerting plus incident lifecycle, journaled and persisted.
pub struct PipelineMonitor {
    alerts: AlertManager,
    incidents: IncidentManager,
}

impl PipelineMonitor {
    /// Monitor with quiet-period incident auto-resolution (0 disables).
    pub fn new(quiet_resolve_ms: u64) -> Self {
        PipelineMonitor {
            alerts: AlertManager::new(),
            incidents: IncidentManager::new(quiet_resolve_ms),
        }
    }

    /// Install an alert rule.
    pub fn add_rule(&mut self, rule: AlertRule) {
        self.alerts.add_rule(rule);
    }

    /// Fatigue counters of the underlying alert manager.
    pub fn alert_stats(&self) -> AlertStats {
        self.alerts.stats()
    }

    /// Live (in-memory) incidents, keyed order.
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.incidents()
    }

    /// Feed one metric observation attributed to `component`. Journals
    /// every decision, folds Page firings into incidents, persists each
    /// touched incident, and returns the alerts that actually fired.
    pub fn observe(
        &mut self,
        store: &dyn Store,
        component: &str,
        metric: &str,
        value: f64,
        ts_ms: u64,
    ) -> Result<Vec<Alert>> {
        let outcomes = self.alerts.observe_outcomes(metric, value, ts_ms);
        if outcomes.is_empty() {
            return Ok(Vec::new());
        }
        let mut events = Vec::with_capacity(outcomes.len() * 2);
        let mut fired = Vec::new();
        for outcome in &outcomes {
            let a = &outcome.alert;
            let (kind, severity) = if outcome.suppressed {
                // Suppressions are bookkeeping, not pages.
                (EventKind::AlertSuppressed, EventSeverity::Info)
            } else {
                (EventKind::AlertFired, event_severity(a.severity))
            };
            events.push(
                ObservabilityEvent::new(kind, severity, ts_ms)
                    .component(component)
                    .detail(format!(
                        "rule {} on {} = {}{}",
                        a.rule_id,
                        a.metric,
                        a.value,
                        if outcome.suppressed {
                            " (cooldown)"
                        } else {
                            ""
                        },
                    ))
                    .payload("rule", Value::from(a.rule_id.clone()))
                    .payload("value", Value::Float(a.value)),
            );
            match self.incidents.fold(outcome) {
                IncidentChange::Opened => {
                    let inc = self.incidents.get(&a.rule_id).expect("just opened");
                    store.upsert_incident(incident_record(inc, ts_ms))?;
                    events.push(
                        ObservabilityEvent::new(
                            EventKind::IncidentOpened,
                            EventSeverity::Page,
                            ts_ms,
                        )
                        .component(component)
                        .detail(inc.detail.clone())
                        .payload("key", Value::from(inc.key.clone())),
                    );
                }
                IncidentChange::Refired | IncidentChange::Suppressed => {
                    let inc = self.incidents.get(&a.rule_id).expect("exists");
                    store.upsert_incident(incident_record(inc, ts_ms))?;
                }
                _ => {}
            }
            if !outcome.suppressed {
                fired.push(a.clone());
            }
        }
        store.log_events(events)?;
        Ok(fired)
    }

    /// Mark an incident as seen. Returns false when there was nothing
    /// open under that key.
    pub fn acknowledge(&mut self, store: &dyn Store, key: &str, ts_ms: u64) -> Result<bool> {
        if self.incidents.acknowledge(key) != IncidentChange::Acknowledged {
            return Ok(false);
        }
        let inc = self.incidents.get(key).expect("just acknowledged");
        store.upsert_incident(incident_record(inc, ts_ms))?;
        store.log_events(vec![ObservabilityEvent::new(
            EventKind::IncidentAcknowledged,
            EventSeverity::Info,
            ts_ms,
        )
        .component(inc.subject.clone())
        .detail(format!("incident {key} acknowledged"))
        .payload("key", Value::from(key))])?;
        Ok(true)
    }

    /// Explicitly resolve an incident. Returns false for unknown or
    /// already-resolved keys.
    pub fn resolve(&mut self, store: &dyn Store, key: &str, ts_ms: u64) -> Result<bool> {
        if self.incidents.resolve(key, ts_ms) != IncidentChange::Resolved {
            return Ok(false);
        }
        let inc = self.incidents.get(key).expect("just resolved").clone();
        self.journal_resolution(store, &inc, ts_ms)?;
        Ok(true)
    }

    /// Auto-resolve incidents quiet past the manager's quiet period;
    /// returns the keys resolved.
    pub fn resolve_quiet(&mut self, store: &dyn Store, now_ms: u64) -> Result<Vec<String>> {
        let resolved = self.incidents.resolve_quiet(now_ms);
        for inc in &resolved {
            self.journal_resolution(store, inc, now_ms)?;
        }
        Ok(resolved.into_iter().map(|i| i.key).collect())
    }

    fn journal_resolution(&self, store: &dyn Store, inc: &Incident, ts_ms: u64) -> Result<()> {
        store.upsert_incident(incident_record(inc, ts_ms))?;
        store.log_events(vec![ObservabilityEvent::new(
            EventKind::IncidentResolved,
            EventSeverity::Info,
            ts_ms,
        )
        .component(inc.subject.clone())
        .detail(format!(
            "incident {} resolved after {} fire(s), burn {}ms",
            inc.key,
            inc.fire_count,
            inc.burn_ms(ts_ms),
        ))
        .payload("key", Value::from(inc.key.clone()))])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_metrics::Comparator;
    use mltrace_store::{EventFilter, MemoryStore};

    fn page_rule(cooldown: u64) -> AlertRule {
        AlertRule {
            id: "acc-floor".into(),
            metric: "accuracy".into(),
            comparator: Comparator::Gte,
            threshold: 0.9,
            severity: Severity::Page,
            cooldown_ms: cooldown,
        }
    }

    fn kinds(store: &MemoryStore) -> Vec<EventKind> {
        store
            .scan_events(None, &EventFilter::all(), None)
            .unwrap()
            .into_iter()
            .map(|e| e.kind)
            .collect()
    }

    #[test]
    fn fire_journals_and_opens_incident() {
        let store = MemoryStore::new();
        let mut mon = PipelineMonitor::new(0);
        mon.add_rule(page_rule(1000));
        assert!(mon
            .observe(&store, "infer", "accuracy", 0.95, 10)
            .unwrap()
            .is_empty());
        let fired = mon.observe(&store, "infer", "accuracy", 0.5, 20).unwrap();
        assert_eq!(fired.len(), 1);
        // Suppressed within the cooldown: tallied, journaled, no page.
        assert!(mon
            .observe(&store, "infer", "accuracy", 0.4, 30)
            .unwrap()
            .is_empty());
        assert_eq!(
            kinds(&store),
            vec![
                EventKind::AlertFired,
                EventKind::IncidentOpened,
                EventKind::AlertSuppressed,
            ]
        );
        let incidents = store.incidents().unwrap();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.key, "acc-floor");
        assert_eq!(inc.state, IncidentState::Open);
        assert_eq!(inc.severity, EventSeverity::Page);
        assert_eq!((inc.fire_count, inc.suppressed_count), (1, 1));
        assert_eq!(inc.last_fire_ms, 30);
    }

    #[test]
    fn lifecycle_persists_and_journals_each_step() {
        let store = MemoryStore::new();
        let mut mon = PipelineMonitor::new(0);
        mon.add_rule(page_rule(0));
        mon.observe(&store, "infer", "accuracy", 0.5, 10).unwrap();
        assert!(mon.acknowledge(&store, "acc-floor", 20).unwrap());
        assert!(!mon.acknowledge(&store, "acc-floor", 21).unwrap(), "no-op");
        assert!(mon.resolve(&store, "acc-floor", 110).unwrap());
        assert!(!mon.resolve(&store, "ghost", 111).unwrap());
        assert_eq!(
            kinds(&store),
            vec![
                EventKind::AlertFired,
                EventKind::IncidentOpened,
                EventKind::IncidentAcknowledged,
                EventKind::IncidentResolved,
            ]
        );
        let inc = &store.incidents().unwrap()[0];
        assert_eq!(inc.state, IncidentState::Resolved);
        assert_eq!(inc.resolved_ms, Some(110));
        assert_eq!(inc.burn_ms, 100, "burn frozen at resolution");
    }

    #[test]
    fn quiet_period_resolution_is_journaled() {
        let store = MemoryStore::new();
        let mut mon = PipelineMonitor::new(500);
        mon.add_rule(page_rule(0));
        mon.observe(&store, "infer", "accuracy", 0.5, 10).unwrap();
        assert!(mon.resolve_quiet(&store, 400).unwrap().is_empty());
        assert_eq!(mon.resolve_quiet(&store, 600).unwrap(), vec!["acc-floor"]);
        let inc = &store.incidents().unwrap()[0];
        assert_eq!(inc.state, IncidentState::Resolved);
        let resolved = store
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::IncidentResolved),
                None,
            )
            .unwrap();
        assert_eq!(resolved.len(), 1);
        assert!(resolved[0].detail.contains("burn 590ms"), "{resolved:?}");
    }

    #[test]
    fn warn_rules_journal_but_never_open_incidents() {
        let store = MemoryStore::new();
        let mut mon = PipelineMonitor::new(0);
        mon.add_rule(AlertRule {
            id: "latency-creep".into(),
            metric: "p99_ms".into(),
            comparator: Comparator::Lte,
            threshold: 250.0,
            severity: Severity::Warn,
            cooldown_ms: 0,
        });
        let fired = mon.observe(&store, "serve", "p99_ms", 400.0, 10).unwrap();
        assert_eq!(fired.len(), 1);
        let events = store.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::AlertFired);
        assert_eq!(events[0].severity, EventSeverity::Warn);
        assert!(store.incidents().unwrap().is_empty(), "warns never page");
        assert_eq!(mon.alert_stats().warns, 1);
    }
}
