//! The component library (§3.2): off-the-shelf triggers and component
//! templates — "MLTRACE will have a library of common components that
//! practitioners can use off-the-shelf, such as a TrainingComponent that
//! might check for train-test leakage in its beforeRun method and verify
//! there is no overfitting in the afterRun method."

use crate::component::{ComponentBuilder, ComponentDef};
use crate::trigger::{Trigger, TriggerContext, TriggerOutcome};
use mltrace_metrics::{DriftConfig, DriftDetector, DriftMethod, StreamingMoments};
use mltrace_store::Value;

// ---------------------------------------------------------------------
// Data-quality triggers
// ---------------------------------------------------------------------

/// Fails when the null fraction of a captured numeric list exceeds a
/// bound (the Figure 3a `checkMissing` example, and the root cause probe
/// of Example 4.1).
pub struct NoMissingTrigger {
    /// Captured variable to check.
    pub var: String,
    /// Maximum tolerated null fraction.
    pub max_null_fraction: f64,
}

impl Trigger for NoMissingTrigger {
    fn name(&self) -> &str {
        "no_missing"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(values) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        if values.is_empty() {
            return TriggerOutcome::fail(format!("variable '{}' is empty", self.var));
        }
        let nulls = values.iter().filter(|v| !v.is_finite()).count();
        let fraction = nulls as f64 / values.len() as f64;
        let metric = format!("null_fraction:{}", self.var);
        let outcome = if fraction <= self.max_null_fraction {
            TriggerOutcome::pass(format!("{:.1}% nulls in {}", fraction * 100.0, self.var))
        } else {
            TriggerOutcome::fail(format!(
                "{:.1}% nulls in {} exceeds limit {:.1}%",
                fraction * 100.0,
                self.var,
                self.max_null_fraction * 100.0
            ))
        };
        outcome
            .with_value("null_fraction", fraction)
            .with_metric(metric, fraction)
    }
}

/// Fails when any value lies more than `max_abs_z` standard deviations
/// from the mean (the Figure 3a `checkOutliers` example).
pub struct OutlierTrigger {
    /// Captured variable to check.
    pub var: String,
    /// Maximum tolerated |z|-score.
    pub max_abs_z: f64,
}

impl Trigger for OutlierTrigger {
    fn name(&self) -> &str {
        "no_outliers"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(values) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let moments = StreamingMoments::from_slice(&values);
        let (mean, std) = (moments.mean(), moments.std_dev());
        if !std.is_finite() || std == 0.0 {
            return TriggerOutcome::pass("constant or empty column, no outliers")
                .with_value("outliers", 0i64);
        }
        let outliers = values
            .iter()
            .filter(|v| v.is_finite() && ((*v - mean) / std).abs() > self.max_abs_z)
            .count();
        let outcome = if outliers == 0 {
            TriggerOutcome::pass(format!(
                "no outliers beyond {}σ in {}",
                self.max_abs_z, self.var
            ))
        } else {
            TriggerOutcome::fail(format!(
                "{outliers} outliers beyond {}σ in {}",
                self.max_abs_z, self.var
            ))
        };
        outcome
            .with_value("outliers", outliers)
            .with_metric(format!("outliers:{}", self.var), outliers as f64)
    }
}

/// Fails when a captured value (count, size) is below a minimum.
pub struct MinCountTrigger {
    /// Captured variable holding the count.
    pub var: String,
    /// Minimum acceptable value.
    pub min: f64,
}

impl Trigger for MinCountTrigger {
    fn name(&self) -> &str {
        "min_count"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let got = ctx
            .capture(&self.var)
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        if got.is_finite() && got >= self.min {
            TriggerOutcome::pass(format!("{} = {got} ≥ {}", self.var, self.min))
        } else {
            TriggerOutcome::fail(format!("{} = {got} < {}", self.var, self.min))
        }
        .with_value("observed", got)
    }
}

// ---------------------------------------------------------------------
// Training triggers
// ---------------------------------------------------------------------

/// Fails when the train and test id sets overlap (train-test leakage —
/// the paper's canonical TrainingComponent `beforeRun` check).
pub struct LeakageTrigger {
    /// Captured variable holding train row ids.
    pub train_var: String,
    /// Captured variable holding test row ids.
    pub test_var: String,
}

impl Trigger for LeakageTrigger {
    fn name(&self) -> &str {
        "train_test_leakage"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let ids = |name: &str| -> Option<Vec<i64>> {
            match ctx.capture(name)? {
                Value::List(items) => Some(items.iter().filter_map(Value::as_i64).collect()),
                _ => None,
            }
        };
        let (Some(train), Some(test)) = (ids(&self.train_var), ids(&self.test_var)) else {
            return TriggerOutcome::fail("train/test id variables not captured");
        };
        let train_set: std::collections::HashSet<i64> = train.into_iter().collect();
        let overlap = test.iter().filter(|id| train_set.contains(id)).count();
        if overlap == 0 {
            TriggerOutcome::pass("no train/test overlap")
        } else {
            TriggerOutcome::fail(format!("{overlap} test rows leak into training"))
        }
        .with_value("overlap", overlap)
    }
}

/// Fails when train-set performance exceeds test-set performance by more
/// than `max_gap` (overfitting — the TrainingComponent `afterRun` check).
pub struct OverfitTrigger {
    /// Captured variable with the training-set metric.
    pub train_metric_var: String,
    /// Captured variable with the test-set metric.
    pub test_metric_var: String,
    /// Maximum tolerated (train − test) gap.
    pub max_gap: f64,
}

impl Trigger for OverfitTrigger {
    fn name(&self) -> &str {
        "overfit_check"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let get = |name: &str| ctx.capture(name).and_then(Value::as_f64);
        let (Some(train), Some(test)) = (get(&self.train_metric_var), get(&self.test_metric_var))
        else {
            return TriggerOutcome::fail("train/test metric variables not captured");
        };
        let gap = train - test;
        if gap <= self.max_gap {
            TriggerOutcome::pass(format!("train-test gap {gap:.4} within {}", self.max_gap))
        } else {
            TriggerOutcome::fail(format!("train-test gap {gap:.4} exceeds {}", self.max_gap))
        }
        .with_value("gap", gap)
        .with_metric("train_test_gap", gap)
    }
}

// ---------------------------------------------------------------------
// Monitoring triggers
// ---------------------------------------------------------------------

/// Compares a captured window against a training-time reference
/// distribution (Example 4.2's KL-divergence-between-train-and-inference
/// monitoring). Logs the score as a metric either way.
pub struct DriftTrigger {
    /// Captured variable with the live window.
    pub var: String,
    /// Reference snapshot.
    pub detector: DriftDetector,
    /// Method to apply.
    pub method: DriftMethod,
}

impl DriftTrigger {
    /// Snapshot `reference` with default thresholds.
    pub fn new(var: impl Into<String>, reference: &[f64], method: DriftMethod) -> Self {
        DriftTrigger {
            var: var.into(),
            detector: DriftDetector::fit(reference, DriftConfig::default()),
            method,
        }
    }
}

impl Trigger for DriftTrigger {
    fn name(&self) -> &str {
        "distribution_drift"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(window) = ctx.numeric_capture(&self.var) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let finite: Vec<f64> = window.into_iter().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return TriggerOutcome::fail(format!("variable '{}' has no finite values", self.var));
        }
        let finding = self.detector.check(self.method, &finite);
        let metric = format!("drift_{}:{}", self.method.name(), self.var);
        let outcome = if finding.drifted {
            TriggerOutcome::fail(format!(
                "{} drift on {}: score {:.4}",
                self.method.name(),
                self.var,
                finding.score
            ))
        } else {
            TriggerOutcome::pass(format!(
                "{} stable on {}: score {:.4}",
                self.method.name(),
                self.var,
                finding.score
            ))
        };
        outcome
            .with_value("score", finding.score)
            .with_value("drifted", finding.drifted)
            .with_metric(metric, finding.score)
    }
}

/// Fails when a captured metric breaches a floor — the per-run half of an
/// SLA (§4.1). Logs the metric either way so history queries see it.
pub struct MetricFloorTrigger {
    /// Captured variable with the metric value.
    pub var: String,
    /// Metric series name to log.
    pub metric: String,
    /// Minimum acceptable value.
    pub floor: f64,
}

impl Trigger for MetricFloorTrigger {
    fn name(&self) -> &str {
        "metric_floor"
    }

    fn run(&self, ctx: &TriggerContext<'_>) -> TriggerOutcome {
        let Some(v) = ctx.capture(&self.var).and_then(Value::as_f64) else {
            return TriggerOutcome::fail(format!("variable '{}' not captured", self.var));
        };
        let outcome = if v >= self.floor {
            TriggerOutcome::pass(format!("{} = {v:.4} ≥ {:.4}", self.metric, self.floor))
        } else {
            TriggerOutcome::fail(format!("{} = {v:.4} < {:.4}", self.metric, self.floor))
        };
        outcome.with_metric(self.metric.clone(), v)
    }
}

// ---------------------------------------------------------------------
// Component templates
// ---------------------------------------------------------------------

/// A preprocessing component with missing-value and outlier checks on the
/// named variables (Figure 3a's `Preprocessor`).
pub fn preprocessing_component(
    name: impl Into<String>,
    input_var: impl Into<String>,
    output_var: impl Into<String>,
) -> ComponentBuilder {
    ComponentDef::builder(name)
        .tag("library:preprocessing")
        .before_run(NoMissingTrigger {
            var: input_var.into(),
            max_null_fraction: 0.05,
        })
        .after_run(OutlierTrigger {
            var: output_var.into(),
            max_abs_z: 5.0,
        })
}

/// A training component with leakage and overfitting checks (the paper's
/// `TrainingComponent`).
pub fn training_component(
    name: impl Into<String>,
    train_ids_var: impl Into<String>,
    test_ids_var: impl Into<String>,
    train_metric_var: impl Into<String>,
    test_metric_var: impl Into<String>,
    max_gap: f64,
) -> ComponentBuilder {
    ComponentDef::builder(name)
        .tag("library:training")
        .before_run(LeakageTrigger {
            train_var: train_ids_var.into(),
            test_var: test_ids_var.into(),
        })
        .after_run(OverfitTrigger {
            train_metric_var: train_metric_var.into(),
            test_metric_var: test_metric_var.into(),
            max_gap,
        })
}

/// An inference component with a drift check against a training-time
/// reference and an accuracy floor.
pub fn inference_component(
    name: impl Into<String>,
    prediction_var: impl Into<String>,
    reference_predictions: &[f64],
    accuracy_var: impl Into<String>,
    accuracy_floor: f64,
) -> ComponentBuilder {
    ComponentDef::builder(name)
        .tag("library:inference")
        .after_run(DriftTrigger::new(
            prediction_var,
            reference_predictions,
            DriftMethod::Ks,
        ))
        .after_run(MetricFloorTrigger {
            var: accuracy_var.into(),
            metric: "accuracy".into(),
            floor: accuracy_floor,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::MemoryStore;
    use std::collections::BTreeMap;

    fn ctx_with<'a>(
        captures: &'a BTreeMap<String, Value>,
        store: &'a MemoryStore,
    ) -> TriggerContext<'a> {
        TriggerContext::new("c", captures, &[], &[], 0, store)
    }

    fn float_list(values: &[f64]) -> Value {
        Value::List(values.iter().map(|&v| Value::Float(v)).collect())
    }

    #[test]
    fn no_missing_trigger_thresholds() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("col".to_string(), float_list(&[1.0, 2.0, f64::NAN, 4.0]));
        let ctx = ctx_with(&caps, &store);
        let strict = NoMissingTrigger {
            var: "col".into(),
            max_null_fraction: 0.1,
        };
        let o = strict.run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["null_fraction"], Value::Float(0.25));
        let lax = NoMissingTrigger {
            var: "col".into(),
            max_null_fraction: 0.5,
        };
        assert!(lax.run(&ctx).passed);
        // Missing variable fails.
        let missing = NoMissingTrigger {
            var: "ghost".into(),
            max_null_fraction: 0.5,
        };
        assert!(!missing.run(&ctx).passed);
    }

    #[test]
    fn outlier_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        let mut vals: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        caps.insert("clean".to_string(), float_list(&vals));
        vals.push(1e6);
        caps.insert("dirty".to_string(), float_list(&vals));
        caps.insert("constant".to_string(), float_list(&[5.0; 10]));
        let ctx = ctx_with(&caps, &store);
        assert!(
            OutlierTrigger {
                var: "clean".into(),
                max_abs_z: 5.0
            }
            .run(&ctx)
            .passed
        );
        let o = OutlierTrigger {
            var: "dirty".into(),
            max_abs_z: 5.0,
        }
        .run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["outliers"], Value::Int(1));
        assert!(
            OutlierTrigger {
                var: "constant".into(),
                max_abs_z: 5.0
            }
            .run(&ctx)
            .passed
        );
    }

    #[test]
    fn min_count_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("rows".to_string(), Value::Int(500));
        let ctx = ctx_with(&caps, &store);
        assert!(
            MinCountTrigger {
                var: "rows".into(),
                min: 100.0
            }
            .run(&ctx)
            .passed
        );
        assert!(
            !MinCountTrigger {
                var: "rows".into(),
                min: 1000.0
            }
            .run(&ctx)
            .passed
        );
        assert!(
            !MinCountTrigger {
                var: "ghost".into(),
                min: 1.0
            }
            .run(&ctx)
            .passed
        );
    }

    #[test]
    fn leakage_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("train_ids".to_string(), Value::from(vec![1i64, 2, 3]));
        caps.insert("test_ids".to_string(), Value::from(vec![4i64, 5]));
        caps.insert("leaky_ids".to_string(), Value::from(vec![3i64, 4]));
        let ctx = ctx_with(&caps, &store);
        let t = LeakageTrigger {
            train_var: "train_ids".into(),
            test_var: "test_ids".into(),
        };
        assert!(t.run(&ctx).passed);
        let leaky = LeakageTrigger {
            train_var: "train_ids".into(),
            test_var: "leaky_ids".into(),
        };
        let o = leaky.run(&ctx);
        assert!(!o.passed);
        assert_eq!(o.values["overlap"], Value::Int(1));
    }

    #[test]
    fn overfit_trigger() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("train_acc".to_string(), Value::Float(0.99));
        caps.insert("test_acc".to_string(), Value::Float(0.80));
        let ctx = ctx_with(&caps, &store);
        let t = OverfitTrigger {
            train_metric_var: "train_acc".into(),
            test_metric_var: "test_acc".into(),
            max_gap: 0.05,
        };
        let o = t.run(&ctx);
        assert!(!o.passed);
        assert!(o
            .metrics
            .iter()
            .any(|(n, v)| n == "train_test_gap" && (*v - 0.19).abs() < 1e-9));
        let tolerant = OverfitTrigger {
            train_metric_var: "train_acc".into(),
            test_metric_var: "test_acc".into(),
            max_gap: 0.25,
        };
        assert!(tolerant.run(&ctx).passed);
    }

    #[test]
    fn drift_trigger_detects_shift_and_logs_metric() {
        let store = MemoryStore::new();
        let reference: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 / 100.0).collect();
        let t = DriftTrigger::new("preds", &reference, DriftMethod::Ks);
        let mut caps = BTreeMap::new();
        caps.insert("preds".to_string(), float_list(&reference[..1000]));
        let ctx = ctx_with(&caps, &store);
        let o = t.run(&ctx);
        assert!(o.passed, "same distribution: {o:?}");
        assert!(o.metrics.iter().any(|(n, _)| n == "drift_ks:preds"));

        let shifted: Vec<f64> = reference.iter().map(|x| x + 0.5).collect();
        let mut caps = BTreeMap::new();
        caps.insert("preds".to_string(), float_list(&shifted));
        let ctx = ctx_with(&caps, &store);
        assert!(!t.run(&ctx).passed, "shifted distribution must fail");
    }

    #[test]
    fn metric_floor_trigger_logs_even_when_passing() {
        let store = MemoryStore::new();
        let mut caps = BTreeMap::new();
        caps.insert("acc".to_string(), Value::Float(0.93));
        let ctx = ctx_with(&caps, &store);
        let t = MetricFloorTrigger {
            var: "acc".into(),
            metric: "accuracy".into(),
            floor: 0.9,
        };
        let o = t.run(&ctx);
        assert!(o.passed);
        assert_eq!(o.metrics, vec![("accuracy".to_string(), 0.93)]);
        let strict = MetricFloorTrigger {
            var: "acc".into(),
            metric: "accuracy".into(),
            floor: 0.95,
        };
        assert!(!strict.run(&ctx).passed);
    }

    #[test]
    fn component_templates_have_expected_triggers() {
        let prep = preprocessing_component("prep", "raw", "clean").build();
        assert_eq!(prep.before.len(), 1);
        assert_eq!(prep.after.len(), 1);
        assert!(prep
            .record
            .tags
            .contains(&"library:preprocessing".to_string()));
        let train = training_component("train", "tr", "te", "m_tr", "m_te", 0.1).build();
        assert_eq!(train.before.len(), 1);
        assert_eq!(train.after.len(), 1);
        let infer = inference_component("infer", "preds", &[0.1, 0.2, 0.3], "acc", 0.9).build();
        assert_eq!(infer.after.len(), 2);
    }
}
