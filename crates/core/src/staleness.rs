//! Staleness (§3.1): "A component is defined as stale when at least one of
//! its dependencies was generated a long time ago (default of 30 days) or
//! was not the 'freshest' representation (i.e., for an inference
//! component, newer features or better models were available). We are also
//! extending the definition of staleness to include failing user-defined
//! tests."
//!
//! Staleness is a *derived* property computed at query time from the run
//! log, never stored — so policy changes apply retroactively.

use crate::error::Result;
use mltrace_store::{ComponentRunRecord, RunId, Store, MS_PER_DAY};

/// Per-component staleness policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessPolicy {
    /// A dependency older than this makes the run stale (paper default:
    /// 30 days).
    pub max_dependency_age_ms: u64,
    /// Flag runs whose inputs have fresher producers than the dependency
    /// actually used.
    pub check_freshness: bool,
    /// Flag runs with failing triggers (the paper's extension).
    pub include_failing_tests: bool,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            max_dependency_age_ms: 30 * MS_PER_DAY,
            check_freshness: true,
            include_failing_tests: true,
        }
    }
}

/// Why a run is considered stale.
#[derive(Debug, Clone, PartialEq)]
pub enum StalenessReason {
    /// A dependency run is older than the policy allows.
    OldDependency {
        /// The old dependency.
        dependency: RunId,
        /// Its component.
        component: String,
        /// Age at evaluation time, in days.
        age_days: f64,
    },
    /// An input has a fresher producer than the dependency used.
    NotFreshest {
        /// The input pointer.
        input: String,
        /// The dependency that produced the version used.
        used: RunId,
        /// The newer producer available.
        newer: RunId,
    },
    /// A user-defined trigger failed on this run.
    FailingTests {
        /// Name of the failing trigger.
        trigger: String,
    },
}

impl StalenessReason {
    /// One-line rendering for the `stale` command.
    pub fn render(&self) -> String {
        match self {
            StalenessReason::OldDependency {
                dependency,
                component,
                age_days,
            } => format!("dependency {dependency} ({component}) is {age_days:.1} days old"),
            StalenessReason::NotFreshest { input, used, newer } => {
                format!("input {input}: used {used}, but {newer} is fresher")
            }
            StalenessReason::FailingTests { trigger } => {
                format!("trigger '{trigger}' failed")
            }
        }
    }
}

/// Evaluate a run's staleness at time `now_ms` under `policy`.
pub fn evaluate_run(
    store: &dyn Store,
    run: &ComponentRunRecord,
    policy: &StalenessPolicy,
    now_ms: u64,
) -> Result<Vec<StalenessReason>> {
    let mut reasons = Vec::new();

    // 1. Old dependencies.
    for &dep_id in &run.dependencies {
        if let Some(dep) = store.run(dep_id)? {
            let age = now_ms.saturating_sub(dep.start_ms);
            if age > policy.max_dependency_age_ms {
                reasons.push(StalenessReason::OldDependency {
                    dependency: dep_id,
                    component: dep.component,
                    age_days: age as f64 / MS_PER_DAY as f64,
                });
            }
        }
    }

    // 2. Not the freshest representation: for each input, was there a
    //    newer producer (at evaluation time) than the dependency used?
    if policy.check_freshness {
        for input in &run.inputs {
            let producers = store.producers_of(input)?;
            let Some(&latest) = producers.last() else {
                continue;
            };
            // Which producer did this run actually use? The latest one
            // started at or before this run's start.
            let used = run
                .dependencies
                .iter()
                .copied()
                .filter(|d| producers.contains(d))
                .max();
            if let Some(used) = used {
                if latest != used {
                    reasons.push(StalenessReason::NotFreshest {
                        input: input.clone(),
                        used,
                        newer: latest,
                    });
                }
            }
        }
    }

    // 3. Failing user-defined tests.
    if policy.include_failing_tests {
        for t in &run.triggers {
            if !t.passed {
                reasons.push(StalenessReason::FailingTests {
                    trigger: t.trigger.clone(),
                });
            }
        }
    }

    Ok(reasons)
}

/// Evaluate the *latest* run of a component. `Ok(None)` when the component
/// has no runs.
pub fn evaluate_component(
    store: &dyn Store,
    component: &str,
    policy: &StalenessPolicy,
    now_ms: u64,
) -> Result<Option<(RunId, Vec<StalenessReason>)>> {
    match store.latest_run(component)? {
        Some(run) => {
            let reasons = evaluate_run(store, &run, policy, now_ms)?;
            Ok(Some((run.id, reasons)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{ComponentRunRecord, MemoryStore, TriggerOutcomeRecord};

    fn log(
        s: &MemoryStore,
        component: &str,
        start: u64,
        inputs: &[&str],
        outputs: &[&str],
        deps: &[RunId],
    ) -> RunId {
        s.log_run(ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|x| x.to_string()).collect(),
            outputs: outputs.iter().map(|x| x.to_string()).collect(),
            dependencies: deps.to_vec(),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn fresh_run_is_not_stale() {
        let s = MemoryStore::new();
        let f = log(&s, "featurize", 1000, &[], &["f.csv"], &[]);
        let i = log(&s, "infer", 2000, &["f.csv"], &["p"], &[f]);
        let run = s.run(i).unwrap().unwrap();
        let reasons = evaluate_run(&s, &run, &StalenessPolicy::default(), 3000).unwrap();
        assert!(reasons.is_empty(), "{reasons:?}");
    }

    #[test]
    fn thirty_day_old_dependency_is_stale() {
        let s = MemoryStore::new();
        let f = log(&s, "featurize", 0, &[], &["f.csv"], &[]);
        let i = log(&s, "infer", 10, &["f.csv"], &["p"], &[f]);
        let run = s.run(i).unwrap().unwrap();
        let now = 31 * MS_PER_DAY;
        let reasons = evaluate_run(&s, &run, &StalenessPolicy::default(), now).unwrap();
        assert_eq!(reasons.len(), 1);
        match &reasons[0] {
            StalenessReason::OldDependency {
                component,
                age_days,
                ..
            } => {
                assert_eq!(component, "featurize");
                assert!((age_days - 31.0).abs() < 0.01);
            }
            other => panic!("expected OldDependency, got {other:?}"),
        }
        // Exactly at the boundary: not stale.
        let reasons = evaluate_run(&s, &run, &StalenessPolicy::default(), 30 * MS_PER_DAY).unwrap();
        assert!(reasons.is_empty());
    }

    #[test]
    fn newer_producer_marks_not_freshest() {
        let s = MemoryStore::new();
        let old = log(&s, "featurize", 100, &[], &["f.csv"], &[]);
        let infer = log(&s, "infer", 200, &["f.csv"], &["p"], &[old]);
        // A newer featurization appears after the inference run.
        let newer = log(&s, "featurize", 300, &[], &["f.csv"], &[]);
        let run = s.run(infer).unwrap().unwrap();
        let reasons = evaluate_run(&s, &run, &StalenessPolicy::default(), 400).unwrap();
        assert_eq!(reasons.len(), 1);
        match &reasons[0] {
            StalenessReason::NotFreshest {
                input,
                used,
                newer: n,
            } => {
                assert_eq!(input, "f.csv");
                assert_eq!(*used, old);
                assert_eq!(*n, newer);
            }
            other => panic!("expected NotFreshest, got {other:?}"),
        }
        // Disabled by policy.
        let policy = StalenessPolicy {
            check_freshness: false,
            ..Default::default()
        };
        assert!(evaluate_run(&s, &run, &policy, 400).unwrap().is_empty());
    }

    #[test]
    fn failing_trigger_marks_stale() {
        let s = MemoryStore::new();
        let id = s
            .log_run(ComponentRunRecord {
                component: "prep".into(),
                start_ms: 10,
                end_ms: 20,
                triggers: vec![TriggerOutcomeRecord {
                    trigger: "no_nulls".into(),
                    phase: "before".into(),
                    passed: false,
                    detail: "".into(),
                    values: Default::default(),
                }],
                ..Default::default()
            })
            .unwrap();
        let run = s.run(id).unwrap().unwrap();
        let reasons = evaluate_run(&s, &run, &StalenessPolicy::default(), 30).unwrap();
        assert_eq!(
            reasons,
            vec![StalenessReason::FailingTests {
                trigger: "no_nulls".into()
            }]
        );
        let policy = StalenessPolicy {
            include_failing_tests: false,
            ..Default::default()
        };
        assert!(evaluate_run(&s, &run, &policy, 30).unwrap().is_empty());
    }

    #[test]
    fn evaluate_component_uses_latest_run() {
        let s = MemoryStore::new();
        assert!(
            evaluate_component(&s, "ghost", &StalenessPolicy::default(), 0)
                .unwrap()
                .is_none()
        );
        let f = log(&s, "featurize", 0, &[], &["f.csv"], &[]);
        let _i1 = log(&s, "infer", 10, &["f.csv"], &["p1"], &[f]);
        let i2 = log(&s, "infer", 20, &["f.csv"], &["p2"], &[f]);
        let (id, reasons) =
            evaluate_component(&s, "infer", &StalenessPolicy::default(), 40 * MS_PER_DAY)
                .unwrap()
                .unwrap();
        assert_eq!(id, i2);
        assert!(!reasons.is_empty());
    }

    #[test]
    fn reasons_render() {
        let r = StalenessReason::FailingTests {
            trigger: "x".into(),
        };
        assert!(r.render().contains("'x' failed"));
        let r = StalenessReason::NotFreshest {
            input: "f.csv".into(),
            used: RunId(1),
            newer: RunId(5),
        };
        assert!(r.render().contains("run#5 is fresher"));
    }
}
