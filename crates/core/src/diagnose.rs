//! Root-cause diagnosis: from an open incident to a ranked culprit list
//! across the lineage graph.
//!
//! The paper's §4 walkthroughs all end with an engineer manually tracing a
//! symptom back through the pipeline to the component that caused it. This
//! module automates that walk: starting from the symptomatic component, it
//! traverses the provenance DAG upstream and ranks every component in the
//! cone by joining evidence the system already holds — failed runs and
//! failure-rate deltas from the lineage graph, `drift_scored` /
//! `alert_fired` / `staleness_flagged` journal events, and the monitoring
//! plane's current per-(component, metric) drift scores.
//!
//! # Scoring contract (the diagnosis contract)
//!
//! Every evidence item contributes `base_weight × precedence`, where
//! `precedence` is 1.0 when the item's onset is at or before the symptom's
//! onset and [`LATE_EVIDENCE_FACTOR`] otherwise (anomalies that *follow*
//! the symptom are weak explanations of it). A suspect's score is the sum
//! of its contributions times [`DISTANCE_DECAY`]^distance, where distance
//! is the suspect's minimum hop count upstream of the symptomatic
//! component (0 = the symptomatic component itself). Base weights:
//!
//! | kind | weight | source |
//! |---|---|---|
//! | `run_failed` | 3.0 | lineage graph: latest failed run |
//! | `drift_onset` | 2.0 + min(score, 1.0) | earliest Page-tier `drift_scored` journal event per metric |
//! | `alert_fired` | 1.5 | earliest `alert_fired` journal event |
//! | `staleness_flagged` | 1.0 | earliest `staleness_flagged` journal event |
//! | `failure_rate` | recent − lifetime failure-rate delta (0..1] | lineage graph, last [`RECENT_RUNS`] runs |
//! | `drift_score` | 0.25 × min(score, 2.0) | monitoring-plane summary, when no drift event was journaled for the pair |
//!
//! The symptomatic metric itself (parsed from a `drift:<component>/<metric>`
//! incident key) is excluded as evidence for the symptomatic component: the
//! symptom must not explain itself.
//!
//! # Determinism invariant
//!
//! A diagnosis is a pure function of store state: the lineage graph, the
//! journal (scanned in ascending event-id order), the incident record, and
//! the monitoring plane — no wall clock, no randomness, no iteration over
//! unordered maps. Evidence is accumulated in a fixed kind order and the
//! final ranking breaks ties by (score descending via `total_cmp`, onset
//! ascending, suspect name ascending), so replaying the same WAL —
//! directly, segmented, or through a checkpoint — reproduces every ranking
//! bit-identically.

use crate::error::{CoreError, Result};
use crate::graph::build_graph;
use mltrace_provenance::{LineageGraph, RunIdx};
use mltrace_store::{
    DiagnosisRecord, EventFilter, EventKind, EventSeverity, IncidentRecord, IncidentState,
    ObservabilityEvent, Store, Value,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Per-hop upstream attenuation of evidence.
pub const DISTANCE_DECAY: f64 = 0.9;
/// Weight multiplier for evidence whose onset follows the symptom's.
pub const LATE_EVIDENCE_FACTOR: f64 = 0.25;
/// Window (in runs) for the recent failure-rate delta.
pub const RECENT_RUNS: usize = 5;

/// A completed diagnosis: the ranked hypothesis rows plus the resolved
/// symptom they explain.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Incident dedup key (or synthetic `run:<id>` key).
    pub incident_key: String,
    /// The symptomatic component the upstream walk started from.
    pub symptom_component: String,
    /// The symptomatic metric, when the incident names one (drift keys).
    pub symptom_metric: Option<String>,
    /// Symptom onset, epoch ms (incident `opened_ms`, or run start).
    pub symptom_onset_ms: u64,
    /// Ranked hypothesis rows, rank 1 first. Empty when no upstream
    /// component carries any evidence.
    pub rows: Vec<DiagnosisRecord>,
}

impl Diagnosis {
    /// Multi-line human rendering: a header, one line per ranked suspect,
    /// and an evidence chain for the top hypothesis.
    pub fn render(&self) -> String {
        let mut out = format!(
            "incident {} — symptom `{}`, onset {}\n",
            self.incident_key, self.symptom_component, self.symptom_onset_ms
        );
        if self.rows.is_empty() {
            out.push_str("  no upstream evidence: every component in the lineage cone is clean\n");
            return out;
        }
        for row in &self.rows {
            out.push_str(&format!(
                "  #{} {:<20} {:<17} score {:.4}  onset {:>13}  {} hop{}\n",
                row.rank,
                row.suspect,
                row.evidence_kind,
                row.score,
                row.onset_ms,
                row.distance,
                if row.distance == 1 { "" } else { "s" },
            ));
        }
        let top = &self.rows[0];
        out.push_str(&format!(
            "  chain: {} on `{}` ← {} on `{}` ({})\n",
            self.incident_key, self.symptom_component, top.evidence_kind, top.suspect, top.detail,
        ));
        out
    }
}

/// One contribution to a suspect's score, pre-decay.
struct Evidence {
    kind: &'static str,
    onset_ms: u64,
    weight: f64,
    detail: String,
}

/// Per-component run statistics extracted from the lineage graph in one
/// pass.
#[derive(Default)]
struct RunStats {
    /// (start_ms, run_id, failed), ascending.
    runs: Vec<(u64, u64, bool)>,
}

impl RunStats {
    fn latest_failed(&self) -> Option<(u64, u64)> {
        self.runs
            .iter()
            .rev()
            .find(|(_, _, failed)| *failed)
            .map(|&(start, id, _)| (start, id))
    }

    /// Failure rate over the last [`RECENT_RUNS`] runs minus the lifetime
    /// rate; positive means the component got *worse* recently.
    fn failure_rate_delta(&self) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        let total = self.runs.len() as f64;
        let failed = self.runs.iter().filter(|(_, _, f)| *f).count() as f64;
        let recent = &self.runs[self.runs.len().saturating_sub(RECENT_RUNS)..];
        let recent_failed = recent.iter().filter(|(_, _, f)| *f).count() as f64;
        recent_failed / recent.len() as f64 - failed / total
    }

    fn earliest_recent_failure(&self) -> Option<u64> {
        let recent = &self.runs[self.runs.len().saturating_sub(RECENT_RUNS)..];
        recent
            .iter()
            .find(|(_, _, f)| *f)
            .map(|&(start, _, _)| start)
    }
}

/// Parse a monitoring-plane drift incident key (`drift:<component>/<metric>`).
fn parse_drift_key(key: &str) -> Option<(&str, &str)> {
    let rest = key.strip_prefix("drift:")?;
    let slash = rest.find('/')?;
    Some((&rest[..slash], &rest[slash + 1..]))
}

/// The latest run of `component`, by (start_ms, run_id).
fn latest_run_of(graph: &LineageGraph, component: &str) -> Option<RunIdx> {
    graph
        .run_indexes()
        .filter(|&idx| graph.run(idx).component == component)
        .max_by_key(|&idx| {
            let run = graph.run(idx);
            (run.start_ms, run.run_id)
        })
}

/// BFS upstream from `start` through run dependencies and input-producer
/// edges, returning each reachable component's minimum hop distance.
/// Deterministic: neighbor sets are ordered (`BTreeSet<RunIdx>`) and BFS
/// visits in queue order.
fn upstream_components(graph: &LineageGraph, start: RunIdx) -> BTreeMap<String, u32> {
    let mut dist: BTreeMap<String, u32> = BTreeMap::new();
    let mut seen: HashMap<RunIdx, u32> = HashMap::new();
    let mut queue: VecDeque<(RunIdx, u32)> = VecDeque::new();
    seen.insert(start, 0);
    queue.push_back((start, 0));
    while let Some((idx, d)) = queue.pop_front() {
        let run = graph.run(idx);
        let entry = dist.entry(run.component.clone()).or_insert(d);
        *entry = (*entry).min(d);
        let mut next: BTreeSet<RunIdx> = run.deps.iter().copied().collect();
        for &io in &run.inputs {
            // The producer the paper's dependency-resolution rule would
            // have picked at this run's start time.
            if let Some(p) = graph.producer_at(io, run.start_ms) {
                next.insert(p);
            }
        }
        for n in next {
            if !seen.contains_key(&n) {
                seen.insert(n, d + 1);
                queue.push_back((n, d + 1));
            }
        }
    }
    dist
}

/// Resolve the symptomatic component (and metric, when known) an incident
/// is about.
fn resolve_symptom(
    graph: &LineageGraph,
    incident: &IncidentRecord,
) -> Result<(String, Option<String>)> {
    let components: BTreeSet<&str> = graph
        .run_indexes()
        .map(|idx| graph.run(idx).component.as_str())
        .collect();
    for key in [incident.key.as_str(), incident.subject.as_str()] {
        if let Some((comp, metric)) = parse_drift_key(key) {
            if components.contains(comp) {
                return Ok((comp.to_string(), Some(metric.to_string())));
            }
        }
    }
    if components.contains(incident.subject.as_str()) {
        return Ok((incident.subject.clone(), None));
    }
    Err(CoreError::Invalid(format!(
        "cannot resolve a symptom component for incident '{}' (subject '{}')",
        incident.key, incident.subject
    )))
}

/// Earliest journal event per (component, payload-metric) of `kind`,
/// ascending by event id. Page-only when `page_only`.
fn scan_kind(
    store: &dyn Store,
    kind: EventKind,
    page_only: bool,
) -> Result<Vec<ObservabilityEvent>> {
    let events = store.scan_events(None, &EventFilter::all().with_kind(kind), None)?;
    Ok(events
        .into_iter()
        .filter(|e| !page_only || e.severity == EventSeverity::Page)
        .collect())
}

/// Diagnose one incident against a prebuilt lineage graph: walk upstream,
/// score suspects, persist the ranked rows, and journal a
/// [`EventKind::DiagnosisReady`] event carrying the list.
pub fn diagnose_incident(
    store: &dyn Store,
    graph: &LineageGraph,
    incident: &IncidentRecord,
) -> Result<Diagnosis> {
    let (symptom, metric) = resolve_symptom(graph, incident)?;
    diagnose(
        store,
        graph,
        &incident.key,
        &symptom,
        metric.as_deref(),
        incident.opened_ms,
        incident.last_fire_ms.max(incident.opened_ms),
    )
}

/// Diagnose a run on demand (no incident required): the run's component is
/// the symptom and its start time the onset. Rows persist under the
/// synthetic key `run:<id>`.
pub fn diagnose_run(store: &dyn Store, graph: &LineageGraph, run_id: u64) -> Result<Diagnosis> {
    let idx = graph
        .run_by_id(run_id)
        .ok_or(CoreError::UnknownRun(run_id))?;
    let run = graph.run(idx);
    diagnose(
        store,
        graph,
        &format!("run:{run_id}"),
        &run.component.clone(),
        None,
        run.start_ms,
        run.start_ms,
    )
}

/// Diagnose by incident key, building the graph from the store.
pub fn diagnose_key(store: &dyn Store, key: &str) -> Result<Diagnosis> {
    let graph = build_graph(store)?;
    let incident = store
        .incidents()
        .map_err(CoreError::from)?
        .into_iter()
        .find(|i| i.key == key)
        .ok_or_else(|| CoreError::Invalid(format!("no incident with key '{key}'")))?;
    diagnose_incident(store, &graph, &incident)
}

/// Diagnose every unresolved (open or acknowledged) incident, building the
/// graph once. Incidents whose symptom cannot be resolved to a component
/// are skipped rather than failing the batch.
pub fn diagnose_open_incidents(store: &dyn Store) -> Result<Vec<Diagnosis>> {
    let graph = build_graph(store)?;
    let mut out = Vec::new();
    for incident in store.incidents().map_err(CoreError::from)? {
        if incident.state == IncidentState::Resolved {
            continue;
        }
        match diagnose_incident(store, &graph, &incident) {
            Ok(d) => out.push(d),
            Err(CoreError::Invalid(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// The engine core: shared by the incident and run entry points.
#[allow(clippy::too_many_arguments)] // internal seam; public API is narrow
fn diagnose(
    store: &dyn Store,
    graph: &LineageGraph,
    incident_key: &str,
    symptom: &str,
    symptom_metric: Option<&str>,
    symptom_onset_ms: u64,
    event_ts_ms: u64,
) -> Result<Diagnosis> {
    let tele = store.telemetry();
    let _span = tele.map(|t| t.span("core.diagnose"));

    let start = latest_run_of(graph, symptom)
        .ok_or_else(|| CoreError::UnknownComponent(symptom.to_string()))?;
    let suspects = upstream_components(graph, start);

    // One pass over the graph for per-component run statistics.
    let mut stats: BTreeMap<&str, RunStats> = BTreeMap::new();
    for idx in graph.run_indexes() {
        let run = graph.run(idx);
        if suspects.contains_key(&run.component) {
            stats.entry(run.component.as_str()).or_default().runs.push((
                run.start_ms,
                run.run_id,
                run.failed,
            ));
        }
    }
    for st in stats.values_mut() {
        st.runs.sort_unstable();
    }

    // Journal evidence, ascending by event id (replay-stable order).
    let drift_events = scan_kind(store, EventKind::DriftScored, true)?;
    let alert_events = scan_kind(store, EventKind::AlertFired, false)?;
    let stale_events = scan_kind(store, EventKind::StalenessFlagged, false)?;
    let summaries = store.monitor_summaries()?;

    let precedence = |onset: u64| {
        if onset <= symptom_onset_ms {
            1.0
        } else {
            LATE_EVIDENCE_FACTOR
        }
    };

    let mut scored: Vec<DiagnosisRecord> = Vec::new();
    for (component, &distance) in &suspects {
        let mut items: Vec<Evidence> = Vec::new();
        let st = stats.get(component.as_str());

        if let Some((start_ms, run_id)) = st.and_then(RunStats::latest_failed) {
            items.push(Evidence {
                kind: "run_failed",
                onset_ms: start_ms,
                weight: 3.0,
                detail: format!("run#{run_id} failed at {start_ms}"),
            });
        }
        if let Some(st) = st {
            let delta = st.failure_rate_delta();
            if delta > 0.0 {
                items.push(Evidence {
                    kind: "failure_rate",
                    onset_ms: st.earliest_recent_failure().unwrap_or(0),
                    weight: delta,
                    detail: format!(
                        "failure rate up {:.0}% over the last {} runs",
                        delta * 100.0,
                        st.runs.len().min(RECENT_RUNS)
                    ),
                });
            }
        }

        // Earliest Page-tier drift event per metric of this component.
        let mut drifted_metrics: BTreeSet<&str> = BTreeSet::new();
        for e in drift_events.iter().filter(|e| e.component == *component) {
            let metric = e
                .payload
                .get("metric")
                .and_then(Value::as_str)
                .unwrap_or("");
            if component == symptom && Some(metric) == symptom_metric {
                continue; // the symptom must not explain itself
            }
            if !drifted_metrics.insert(metric) {
                continue;
            }
            let score = e
                .payload
                .get("score")
                .and_then(Value::as_f64)
                .filter(|s| s.is_finite())
                .unwrap_or(0.0);
            items.push(Evidence {
                kind: "drift_onset",
                onset_ms: e.ts_ms,
                weight: 2.0 + score.min(1.0),
                detail: format!("drift onset on `{component}.{metric}` at {}", e.ts_ms),
            });
        }

        if let Some(e) = alert_events.iter().find(|e| e.component == *component) {
            items.push(Evidence {
                kind: "alert_fired",
                onset_ms: e.ts_ms,
                weight: 1.5,
                detail: format!("alert fired at {}: {}", e.ts_ms, e.detail),
            });
        }
        if let Some(e) = stale_events.iter().find(|e| e.component == *component) {
            items.push(Evidence {
                kind: "staleness_flagged",
                onset_ms: e.ts_ms,
                weight: 1.0,
                detail: format!("staleness flagged at {}", e.ts_ms),
            });
        }

        // Monitoring-plane drift level, for pairs with no journaled drift.
        for s in summaries.iter().filter(|s| s.component == *component) {
            if s.drift_score <= 0.0
                || !s.drift_score.is_finite()
                || drifted_metrics.contains(s.metric.as_str())
                || (component == symptom && Some(s.metric.as_str()) == symptom_metric)
            {
                continue;
            }
            items.push(Evidence {
                kind: "drift_score",
                onset_ms: s.last_ts_ms,
                weight: 0.25 * s.drift_score.min(2.0),
                detail: format!(
                    "plane drift score {:.4} on `{component}.{}`",
                    s.drift_score, s.metric
                ),
            });
        }

        if items.is_empty() {
            continue;
        }
        let decay = DISTANCE_DECAY.powi(distance as i32);
        let mut total = 0.0;
        let mut best = 0usize;
        let mut best_contribution = f64::NEG_INFINITY;
        for (i, item) in items.iter().enumerate() {
            let contribution = item.weight * precedence(item.onset_ms);
            total += contribution;
            if contribution > best_contribution {
                best_contribution = contribution;
                best = i;
            }
        }
        let score = total * decay;
        if score <= 0.0 || !score.is_finite() {
            continue;
        }
        let onset_ms = items.iter().map(|i| i.onset_ms).min().unwrap_or(0);
        scored.push(DiagnosisRecord {
            incident_key: incident_key.to_string(),
            rank: 0,
            suspect: component.clone(),
            evidence_kind: items[best].kind.to_string(),
            score,
            onset_ms,
            distance,
            detail: items[best].detail.clone(),
        });
    }

    // The written-down tie-break: score descending (total order), then
    // onset ascending (earlier anomalies are better explanations), then
    // suspect name ascending.
    scored.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.onset_ms.cmp(&b.onset_ms))
            .then_with(|| a.suspect.cmp(&b.suspect))
    });
    for (i, row) in scored.iter_mut().enumerate() {
        row.rank = (i + 1) as u64;
    }

    store
        .put_diagnosis(incident_key, scored.clone())
        .map_err(CoreError::from)?;
    let suspects_payload: Vec<Value> = scored
        .iter()
        .map(|r| {
            Value::Str(format!(
                "{}:{}:{}:{:.4}",
                r.rank, r.suspect, r.evidence_kind, r.score
            ))
        })
        .collect();
    let top = scored
        .first()
        .map(|r| format!("top suspect `{}` ({})", r.suspect, r.evidence_kind))
        .unwrap_or_else(|| "no suspects".to_string());
    store
        .log_events(vec![ObservabilityEvent::new(
            EventKind::DiagnosisReady,
            EventSeverity::Info,
            event_ts_ms,
        )
        .component(symptom)
        .detail(format!(
            "{} suspects ranked for {incident_key}; {top}",
            scored.len()
        ))
        .payload("key", Value::Str(incident_key.to_string()))
        .payload("suspects", Value::List(suspects_payload))])
        .map_err(CoreError::from)?;

    if let Some(t) = tele {
        t.incr("core.diagnose_total");
        t.add("core.diagnose_suspects_total", scored.len() as u64);
    }

    Ok(Diagnosis {
        incident_key: incident_key.to_string(),
        symptom_component: symptom.to_string(),
        symptom_metric: symptom_metric.map(str::to_string),
        symptom_onset_ms,
        rows: scored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{ComponentRunRecord, MemoryStore, RunStatus};

    fn log(
        s: &MemoryStore,
        component: &str,
        start: u64,
        inputs: &[&str],
        outputs: &[&str],
        status: RunStatus,
    ) -> u64 {
        s.log_run(ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|x| x.to_string()).collect(),
            outputs: outputs.iter().map(|x| x.to_string()).collect(),
            status,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn drift_event(component: &str, metric: &str, score: f64, ts: u64) -> ObservabilityEvent {
        ObservabilityEvent::new(EventKind::DriftScored, EventSeverity::Page, ts)
            .component(component)
            .payload("metric", Value::Str(metric.into()))
            .payload("score", Value::Float(score))
    }

    fn incident(key: &str, opened: u64) -> IncidentRecord {
        IncidentRecord {
            key: key.into(),
            state: IncidentState::Open,
            severity: EventSeverity::Page,
            subject: key.into(),
            opened_ms: opened,
            last_fire_ms: opened,
            resolved_ms: None,
            fire_count: 1,
            suppressed_count: 0,
            burn_ms: 0,
            detail: String::new(),
        }
    }

    /// ingest → clean (failed + drifted) → featurize → inference chain:
    /// the faulty upstream component must rank first, and the diagnosis
    /// must be persisted and journaled.
    #[test]
    fn ranks_faulty_upstream_component_first() {
        let s = MemoryStore::new();
        log(&s, "ingest", 100, &[], &["raw"], RunStatus::Success);
        log(&s, "clean", 200, &["raw"], &["clean"], RunStatus::Failed);
        log(
            &s,
            "featurize",
            300,
            &["clean"],
            &["feats"],
            RunStatus::Success,
        );
        log(&s, "inference", 400, &["feats"], &[], RunStatus::Success);
        s.log_events(vec![drift_event("clean", "null_rate", 0.8, 250)])
            .unwrap();
        let inc = incident("drift:inference/prediction", 500);
        s.upsert_incident(inc.clone()).unwrap();

        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        assert_eq!(d.symptom_component, "inference");
        assert_eq!(d.symptom_metric.as_deref(), Some("prediction"));
        assert_eq!(d.rows[0].suspect, "clean");
        assert_eq!(d.rows[0].rank, 1);
        assert_eq!(d.rows[0].evidence_kind, "run_failed");
        assert_eq!(d.rows[0].distance, 2);
        assert_eq!(d.rows[0].onset_ms, 200);
        // run_failed 3.0 + drift_onset (2.0 + 0.8), both preceding the
        // symptom, decayed two hops.
        let expected = (3.0 + 2.8) * DISTANCE_DECAY * DISTANCE_DECAY;
        assert!((d.rows[0].score - expected).abs() < 1e-12);

        // Persisted rows match the returned ranking exactly.
        assert_eq!(s.diagnoses_for(&inc.key).unwrap(), d.rows);
        // And a diagnosis_ready event carries the ranked list.
        let events = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::DiagnosisReady),
                None,
            )
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].payload.get("key").and_then(Value::as_str),
            Some(inc.key.as_str())
        );
        match events[0].payload.get("suspects") {
            Some(Value::List(l)) => assert_eq!(l.len(), d.rows.len()),
            other => panic!("suspects payload missing: {other:?}"),
        }
    }

    /// The symptomatic metric's own drift must not be counted as evidence
    /// for the symptomatic component, but other metrics of it may.
    #[test]
    fn symptom_metric_does_not_explain_itself() {
        let s = MemoryStore::new();
        log(&s, "inference", 100, &[], &[], RunStatus::Success);
        s.log_events(vec![drift_event("inference", "prediction", 0.9, 150)])
            .unwrap();
        let inc = incident("drift:inference/prediction", 200);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        assert!(d.rows.is_empty(), "self-evidence must be excluded: {d:?}");
    }

    /// Equal evidence at equal distance falls back to the written-down
    /// tie-break: suspect name ascending.
    #[test]
    fn tie_break_is_name_order() {
        let s = MemoryStore::new();
        log(&s, "b_side", 100, &[], &["b_out"], RunStatus::Failed);
        log(&s, "a_side", 100, &[], &["a_out"], RunStatus::Failed);
        log(
            &s,
            "sink",
            200,
            &["a_out", "b_out"],
            &[],
            RunStatus::Success,
        );
        let inc = incident("drift:sink/m", 300);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].score, d.rows[1].score);
        assert_eq!(d.rows[0].suspect, "a_side");
        assert_eq!(d.rows[1].suspect, "b_side");
    }

    /// Components outside the symptom's upstream cone are never suspects,
    /// however bad their evidence.
    #[test]
    fn downstream_and_sibling_components_are_not_suspects() {
        let s = MemoryStore::new();
        log(&s, "up", 100, &[], &["x"], RunStatus::Failed);
        log(&s, "mid", 200, &["x"], &["y"], RunStatus::Success);
        log(&s, "down", 300, &["y"], &[], RunStatus::Failed);
        log(&s, "stranger", 50, &[], &["z"], RunStatus::Failed);
        let inc = incident("drift:mid/m", 400);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        let suspects: Vec<&str> = d.rows.iter().map(|r| r.suspect.as_str()).collect();
        assert_eq!(suspects, vec!["up"]);
    }

    /// On-demand run diagnosis uses the synthetic `run:<id>` key and the
    /// run's own start as the onset.
    #[test]
    fn run_diagnosis_uses_synthetic_key() {
        let s = MemoryStore::new();
        log(&s, "up", 100, &[], &["x"], RunStatus::Failed);
        let sink = log(&s, "sink", 200, &["x"], &[], RunStatus::Success);
        let graph = build_graph(&s).unwrap();
        let d = diagnose_run(&s, &graph, sink).unwrap();
        assert_eq!(d.incident_key, format!("run:{sink}"));
        assert_eq!(d.symptom_onset_ms, 200);
        assert_eq!(d.rows[0].suspect, "up");
        assert_eq!(s.diagnoses_for(&d.incident_key).unwrap(), d.rows);
        assert!(diagnose_run(&s, &graph, 999).is_err());
    }

    /// Evidence whose onset follows the symptom's is attenuated, so an
    /// earlier-but-weaker anomaly can outrank a later-but-stronger one.
    #[test]
    fn temporal_precedence_outranks_strength() {
        let s = MemoryStore::new();
        log(&s, "early", 100, &[], &["a"], RunStatus::Success);
        // `late` is lineage-connected through its pre-symptom run, but its
        // *failure* evidence lands after the symptom onset (110 > 105).
        log(&s, "late", 101, &[], &["b"], RunStatus::Success);
        log(&s, "late", 110, &[], &["b"], RunStatus::Failed);
        log(&s, "sink", 105, &["a", "b"], &[], RunStatus::Success);
        s.log_events(vec![drift_event("early", "m", 0.1, 90)])
            .unwrap();
        let inc = incident("drift:sink/x", 105);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        // early: drift 2.1 × 1.0 × 0.9 = 1.89; late: failed 3.0 × 0.25 × 0.9.
        assert_eq!(d.rows[0].suspect, "early");
        assert_eq!(d.rows[1].suspect, "late");
        assert!(d.rows[0].score > d.rows[1].score);
    }

    /// Unresolvable symptoms error as `Invalid`, and the batch entry point
    /// skips them instead of failing.
    #[test]
    fn unresolvable_symptom_is_invalid_and_skipped_in_batch() {
        let s = MemoryStore::new();
        log(&s, "only", 100, &[], &[], RunStatus::Success);
        let inc = incident("tip-accuracy-sla", 200);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        assert!(matches!(
            diagnose_incident(&s, &graph, &inc),
            Err(CoreError::Invalid(_))
        ));
        assert!(diagnose_open_incidents(&s).unwrap().is_empty());
    }

    /// `render` shows the header, the ranked rows, and the evidence chain.
    #[test]
    fn render_shows_chain() {
        let s = MemoryStore::new();
        log(&s, "up", 100, &[], &["x"], RunStatus::Failed);
        log(&s, "sink", 200, &["x"], &[], RunStatus::Success);
        let inc = incident("drift:sink/m", 300);
        s.upsert_incident(inc.clone()).unwrap();
        let graph = build_graph(&s).unwrap();
        let d = diagnose_incident(&s, &graph, &inc).unwrap();
        let text = d.render();
        assert!(text.contains("symptom `sink`"));
        assert!(text.contains("#1 up"));
        assert!(text.contains("← run_failed on `up`"));
    }
}
