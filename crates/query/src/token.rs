//! Tokenizer for the SQL subset (§4.2: "for more specific queries, users
//! can query the logs and metadata via SQL").

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Single-quoted string literal (with `''` escapes).
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// Punctuation / operator.
    Symbol(Symbol),
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?` — a positional placeholder in a prepared statement.
    Question,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Symbol(s) => write!(f, "{s:?}"),
        }
    }
}

/// Tokenization error with byte position.
#[derive(Debug, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            '?' => {
                tokens.push(Token::Symbol(Symbol::Question));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol(Symbol::Le));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("bad number '{text}'"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.'
                        || bytes[i] == b':')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let t = tokenize("SELECT * FROM runs WHERE a >= 2 AND b != 'x'").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Symbol(Symbol::Star));
        assert!(t.contains(&Token::Symbol(Symbol::Ge)));
        assert!(t.contains(&Token::Symbol(Symbol::Ne)));
        assert!(t.contains(&Token::Str("x".into())));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e3 1.5e-2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.015),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("'it''s fine'").unwrap();
        assert_eq!(t, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(tokenize("<>").unwrap(), vec![Token::Symbol(Symbol::Ne)]);
        assert_eq!(tokenize("!=").unwrap(), vec![Token::Symbol(Symbol::Ne)]);
    }

    #[test]
    fn identifiers_allow_metric_names() {
        // Metric series like `drift_ks:fare` are addressable.
        let t = tokenize("drift_ks:fare").unwrap();
        assert_eq!(t, vec![Token::Ident("drift_ks:fare".into())]);
    }

    #[test]
    fn placeholders_lex() {
        let t = tokenize("a = ? AND b = ?").unwrap();
        assert_eq!(
            t.iter()
                .filter(|t| **t == Token::Symbol(Symbol::Question))
                .count(),
            2
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = tokenize("a @ b").unwrap_err();
        assert_eq!(e.position, 2);
        let e = tokenize("'unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = tokenize("!x").unwrap_err();
        assert!(e.message.contains("after '!'"));
    }
}
