//! Predicate pushdown planning: split a WHERE clause into the part a
//! [`RunFilter`] can evaluate inside the store scan and a residual the
//! executor still evaluates row-at-a-time.
//!
//! The contract is strict row-for-row equivalence with the naive path
//! (scan everything, evaluate the whole WHERE per row). A conjunct is
//! absorbed into the scan filter only when the filter's semantics provably
//! match the executor's [`Value`] comparison semantics for it:
//!
//! * `component = '<str>'` / `status = '<exact status name>'` — exact
//!   string equality on both sides. A status literal that
//!   [`RunStatus::from_name`] rejects (wrong casing, unknown name) stays
//!   residual rather than being coerced.
//! * `id` / `start_ms` / `end_ms` compared (`=`, `<`, `<=`, `>`, `>=`,
//!   `BETWEEN`) against non-negative integer literals below `i64::MAX` —
//!   the range where the row's `u64 → i64`-saturating [`Value`]
//!   conversion is the identity, so `u64` bounds in the filter agree with
//!   the executor's `i64` comparisons. Negative or float literals stay
//!   residual.
//!
//! Everything else (`OR`, `NOT`, `LIKE`, arithmetic, other columns) is
//! residual. Two equality conjuncts on the same slot with different
//! values leave the second one residual: the scan returns the first
//! value's rows and the residual rejects them all, which is exactly the
//! naive path's empty result. Range conjuncts always absorb — bounds
//! intersect, and an infeasible intersection matches nothing, again
//! matching the naive path.

use crate::ast::{BinOp, Expr};
use mltrace_store::{
    EventFilter, EventKind, EventSeverity, IndexRoute, IndexStats, RunFilter, RunStatus, Value,
};

/// Pushdown plan for a `component_runs` scan.
#[derive(Debug, Clone, Default)]
pub struct RunScanPlan {
    /// Predicate evaluated inside the store scan.
    pub filter: RunFilter,
    /// Conjuncts the scan cannot evaluate; `None` when everything was
    /// pushed down.
    pub residual: Option<Expr>,
}

/// Pushdown plan for a `metrics` scan.
#[derive(Debug, Clone, Default)]
pub struct MetricScanPlan {
    /// Restrict the scan to one component's series.
    pub component: Option<String>,
    /// Conjuncts the scan cannot evaluate.
    pub residual: Option<Expr>,
}

/// Pushdown plan for a `summaries` (monitoring plane) scan.
#[derive(Debug, Clone, Default)]
pub struct SummaryScanPlan {
    /// Restrict to one component's keys.
    pub component: Option<String>,
    /// Restrict to one metric name.
    pub metric: Option<String>,
    /// Conjuncts the scan cannot evaluate.
    pub residual: Option<Expr>,
}

/// Pushdown plan for a `diagnoses` scan.
#[derive(Debug, Clone, Default)]
pub struct DiagnosisScanPlan {
    /// Restrict to one incident's ranking.
    pub incident_key: Option<String>,
    /// Restrict to rows blaming one suspect component.
    pub suspect: Option<String>,
    /// Conjuncts the scan cannot evaluate.
    pub residual: Option<Expr>,
}

/// Pushdown plan for an `events` (journal) scan.
#[derive(Debug, Clone, Default)]
pub struct EventScanPlan {
    /// Predicate evaluated inside the journal scan.
    pub filter: EventFilter,
    /// Conjuncts the scan cannot evaluate.
    pub residual: Option<Expr>,
}

/// How the executor fetches `component_runs` rows for a planned filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanRoute {
    /// Sharded full scan with the pushed-down filter (the default).
    #[default]
    FullScan,
    /// Secondary-index lookup narrowing the candidate set before the full
    /// filter re-checks each candidate — row-for-row equivalent to the
    /// scan, just touching fewer rows.
    Index(IndexRoute),
}

impl ScanRoute {
    /// Render for `EXPLAIN` output: `scan` or `index(component)`.
    pub fn describe(&self) -> String {
        match self {
            ScanRoute::FullScan => "scan".to_owned(),
            ScanRoute::Index(route) => format!("index({})", route.name()),
        }
    }
}

/// An index route is only worth taking when it narrows the candidate set
/// well below the full table; at or past `runs / SELECTIVITY_DENOM`
/// estimated candidates, the sharded scan's sequential locality wins.
const SELECTIVITY_DENOM: u64 = 4;

/// Pick the cheapest applicable index route for `filter`, or the full
/// scan when no route's estimated candidate count clears the selectivity
/// bar. Estimates come from the store's live [`IndexStats`]; correctness
/// never depends on them — every route re-checks the full filter.
pub fn choose_run_route(filter: &RunFilter, stats: &IndexStats) -> ScanRoute {
    match best_run_route(filter, stats) {
        Some((route, est)) if est.saturating_mul(SELECTIVITY_DENOM) <= stats.runs => {
            ScanRoute::Index(route)
        }
        _ => ScanRoute::FullScan,
    }
}

/// Like [`choose_run_route`] but take the best applicable index route
/// regardless of selectivity — the test hook behind the equivalence
/// grid's forced-route axis.
pub fn choose_run_route_forced(filter: &RunFilter, stats: &IndexStats) -> ScanRoute {
    match best_run_route(filter, stats) {
        Some((route, _)) => ScanRoute::Index(route),
        None => ScanRoute::FullScan,
    }
}

/// The applicable route with the smallest candidate estimate.
fn best_run_route(filter: &RunFilter, stats: &IndexStats) -> Option<(IndexRoute, u64)> {
    let mut best: Option<(IndexRoute, u64)> = None;
    for route in [
        IndexRoute::Component,
        IndexRoute::Status,
        IndexRoute::StartTime,
        IndexRoute::IdRange,
    ] {
        if !route.applicable(filter) {
            continue;
        }
        let est = estimate_candidates(route, filter, stats);
        if best.is_none_or(|(_, b)| est < b) {
            best = Some((route, est));
        }
    }
    best
}

/// Estimated candidates a route would examine, under uniformity
/// assumptions (runs spread evenly over components, statuses, and the
/// observed `start_ms` span).
pub(crate) fn estimate_candidates(
    route: IndexRoute,
    filter: &RunFilter,
    stats: &IndexStats,
) -> u64 {
    match route {
        IndexRoute::Component => stats.runs / stats.distinct_components.max(1),
        IndexRoute::Status => stats.runs / stats.distinct_statuses.max(1),
        IndexRoute::StartTime => {
            let (Some(lo), Some(hi)) = (stats.min_start_ms, stats.max_start_ms) else {
                return 0; // no runs at all
            };
            let w_lo = filter.min_start_ms.unwrap_or(lo).max(lo);
            let w_hi = filter.max_start_ms.unwrap_or(hi).min(hi);
            if w_lo > w_hi {
                return 0;
            }
            let span = (hi - lo) as u128 + 1;
            let window = (w_hi - w_lo) as u128 + 1;
            ((stats.runs as u128 * window / span) as u64).min(stats.runs)
        }
        IndexRoute::IdRange => {
            // The route enumerates the clamped dense id range, so its
            // cost is the range width, not a uniformity estimate.
            let hi_id = stats.next_id.saturating_sub(1);
            let lo = filter.min_id.unwrap_or(1).max(1);
            let hi = filter.max_id.unwrap_or(hi_id).min(hi_id);
            if lo > hi {
                0
            } else {
                hi - lo + 1
            }
        }
    }
}

/// Plan a `component_runs` scan for `where_clause`.
pub fn plan_run_scan(where_clause: Option<&Expr>) -> RunScanPlan {
    let mut plan = RunScanPlan::default();
    let Some(clause) = where_clause else {
        return plan;
    };
    let mut residual: Vec<&Expr> = Vec::new();
    for conjunct in clause.conjuncts() {
        if !absorb_run_conjunct(&mut plan.filter, conjunct) {
            residual.push(conjunct);
        }
    }
    plan.residual = rejoin(residual);
    plan
}

/// Plan a `metrics` scan for `where_clause` (component equality only).
pub fn plan_metric_scan(where_clause: Option<&Expr>) -> MetricScanPlan {
    let mut plan = MetricScanPlan::default();
    let Some(clause) = where_clause else {
        return plan;
    };
    let mut residual: Vec<&Expr> = Vec::new();
    for conjunct in clause.conjuncts() {
        let absorbed = match as_column_cmp(conjunct) {
            Some(("component", BinOp::Eq, Value::Str(s))) => match &plan.component {
                None => {
                    plan.component = Some(s.clone());
                    true
                }
                Some(existing) => existing == s,
            },
            _ => false,
        };
        if !absorbed {
            residual.push(conjunct);
        }
    }
    plan.residual = rejoin(residual);
    plan
}

/// Plan a `summaries` scan for `where_clause`: `component` and `metric`
/// string-equality conjuncts push into the plane snapshot's restriction,
/// under the same exactness rules as [`plan_metric_scan`]. Everything
/// else (drift_score ranges, etc.) stays residual — the plane snapshot is
/// small (one row per key), so only the key restriction is worth pushing.
pub fn plan_summary_scan(where_clause: Option<&Expr>) -> SummaryScanPlan {
    let mut plan = SummaryScanPlan::default();
    let Some(clause) = where_clause else {
        return plan;
    };
    let mut residual: Vec<&Expr> = Vec::new();
    for conjunct in clause.conjuncts() {
        let absorbed = match as_column_cmp(conjunct) {
            Some(("component", BinOp::Eq, Value::Str(s))) => match &plan.component {
                None => {
                    plan.component = Some(s.clone());
                    true
                }
                Some(existing) => existing == s,
            },
            Some(("metric", BinOp::Eq, Value::Str(s))) => match &plan.metric {
                None => {
                    plan.metric = Some(s.clone());
                    true
                }
                Some(existing) => existing == s,
            },
            _ => false,
        };
        if !absorbed {
            residual.push(conjunct);
        }
    }
    plan.residual = rejoin(residual);
    plan
}

/// Plan a `diagnoses` scan for `where_clause`: `incident_key` and
/// `suspect` string-equality conjuncts push into the store lookup, under
/// the same exactness rules as [`plan_summary_scan`]. Score / rank ranges
/// stay residual — rankings are short (one row per suspect), so only the
/// key restriction is worth pushing.
pub fn plan_diagnosis_scan(where_clause: Option<&Expr>) -> DiagnosisScanPlan {
    let mut plan = DiagnosisScanPlan::default();
    let Some(clause) = where_clause else {
        return plan;
    };
    let mut residual: Vec<&Expr> = Vec::new();
    for conjunct in clause.conjuncts() {
        let absorbed = match as_column_cmp(conjunct) {
            Some(("incident_key", BinOp::Eq, Value::Str(s))) => match &plan.incident_key {
                None => {
                    plan.incident_key = Some(s.clone());
                    true
                }
                Some(existing) => existing == s,
            },
            Some(("suspect", BinOp::Eq, Value::Str(s))) => match &plan.suspect {
                None => {
                    plan.suspect = Some(s.clone());
                    true
                }
                Some(existing) => existing == s,
            },
            _ => false,
        };
        if !absorbed {
            residual.push(conjunct);
        }
    }
    plan.residual = rejoin(residual);
    plan
}

/// Plan an `events` scan for `where_clause`: kind / severity / component /
/// run_id equality plus id / ts_ms ranges push into the [`EventFilter`],
/// under the same provable-equivalence rules as [`plan_run_scan`]. A kind
/// or severity literal that `from_name` rejects (wrong casing, unknown)
/// stays residual rather than being coerced. `run_id = <int>` pushes
/// because the filter matches only stamped events, exactly as the
/// executor's NULL-comparison-is-false semantics drop unstamped rows.
pub fn plan_event_scan(where_clause: Option<&Expr>) -> EventScanPlan {
    let mut plan = EventScanPlan::default();
    let Some(clause) = where_clause else {
        return plan;
    };
    let mut residual: Vec<&Expr> = Vec::new();
    for conjunct in clause.conjuncts() {
        if !absorb_event_conjunct(&mut plan.filter, conjunct) {
            residual.push(conjunct);
        }
    }
    plan.residual = rejoin(residual);
    plan
}

/// AND the residual conjuncts back together, preserving order.
fn rejoin(conjuncts: Vec<&Expr>) -> Option<Expr> {
    conjuncts
        .into_iter()
        .cloned()
        .reduce(|left, right| Expr::Binary {
            op: BinOp::And,
            left: Box::new(left),
            right: Box::new(right),
        })
}

/// View a conjunct as `column <op> literal`, flipping a
/// `literal <op> column` form. Returns the lowercased column name.
fn as_column_cmp(e: &Expr) -> Option<(&str, BinOp, &Value)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    let cmp = matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    );
    if !cmp {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) => Some((c.as_str(), *op, v)),
        (Expr::Literal(v), Expr::Column(c)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            Some((c.as_str(), flipped, v))
        }
        _ => None,
    }
}

/// Integer literal in the range where the executor's saturating
/// `u64 → i64` row conversion is the identity, making `u64` filter
/// bounds and `i64` row comparisons agree.
fn pushable_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 && *i < i64::MAX => Some(*i as u64),
        _ => None,
    }
}

fn tighten_min(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.max(v)));
}

fn tighten_max(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.min(v)));
}

/// Try to absorb one conjunct into the run filter; `false` leaves it
/// residual.
fn absorb_run_conjunct(filter: &mut RunFilter, e: &Expr) -> bool {
    // BETWEEN on a time/id column with pushable integer bounds.
    if let Expr::Between {
        expr,
        lo,
        hi,
        negated: false,
    } = e
    {
        if let (Expr::Column(c), Expr::Literal(l), Expr::Literal(h)) =
            (expr.as_ref(), lo.as_ref(), hi.as_ref())
        {
            if let (Some(slots), Some(l), Some(h)) =
                (range_slots(filter, c), pushable_u64(l), pushable_u64(h))
            {
                tighten_min(slots.0, l);
                tighten_max(slots.1, h);
                return true;
            }
        }
        return false;
    }

    let Some((column, op, literal)) = as_column_cmp(e) else {
        return false;
    };

    if column.eq_ignore_ascii_case("component") {
        if op != BinOp::Eq {
            return false;
        }
        let Value::Str(s) = literal else { return false };
        return match &filter.component {
            None => {
                filter.component = Some(s.clone());
                true
            }
            Some(existing) => existing == s,
        };
    }

    if column.eq_ignore_ascii_case("status") {
        if op != BinOp::Eq {
            return false;
        }
        // Only the exact short names; anything else (wrong casing,
        // unknown) keeps the executor's string comparison.
        let Some(status) = literal.as_str().and_then(RunStatus::from_name) else {
            return false;
        };
        return match filter.status {
            None => {
                filter.status = Some(status);
                true
            }
            Some(existing) => existing == status,
        };
    }

    let Some((min_slot, max_slot)) = range_slots(filter, column) else {
        return false;
    };
    let Some(v) = pushable_u64(literal) else {
        return false;
    };
    absorb_range_cmp(min_slot, max_slot, op, v)
}

/// Absorb `col <op> v` into a (min, max) bound pair; `false` leaves the
/// conjunct residual.
fn absorb_range_cmp(
    min_slot: &mut Option<u64>,
    max_slot: &mut Option<u64>,
    op: BinOp,
    v: u64,
) -> bool {
    match op {
        BinOp::Eq => {
            tighten_min(min_slot, v);
            tighten_max(max_slot, v);
            true
        }
        BinOp::Ge => {
            tighten_min(min_slot, v);
            true
        }
        BinOp::Gt => {
            // v < i64::MAX so v + 1 cannot overflow u64.
            tighten_min(min_slot, v + 1);
            true
        }
        BinOp::Le => {
            tighten_max(max_slot, v);
            true
        }
        BinOp::Lt => {
            if v == 0 {
                // `col < 0` is false for every row; leave it residual
                // rather than inventing an unsatisfiable u64 bound.
                return false;
            }
            tighten_max(max_slot, v - 1);
            true
        }
        _ => false,
    }
}

/// Try to absorb one conjunct into the event filter; `false` leaves it
/// residual.
fn absorb_event_conjunct(filter: &mut EventFilter, e: &Expr) -> bool {
    if let Expr::Between {
        expr,
        lo,
        hi,
        negated: false,
    } = e
    {
        if let (Expr::Column(c), Expr::Literal(l), Expr::Literal(h)) =
            (expr.as_ref(), lo.as_ref(), hi.as_ref())
        {
            if let (Some(slots), Some(l), Some(h)) = (
                event_range_slots(filter, c),
                pushable_u64(l),
                pushable_u64(h),
            ) {
                tighten_min(slots.0, l);
                tighten_max(slots.1, h);
                return true;
            }
        }
        return false;
    }

    let Some((column, op, literal)) = as_column_cmp(e) else {
        return false;
    };

    if column.eq_ignore_ascii_case("component") {
        if op != BinOp::Eq {
            return false;
        }
        let Value::Str(s) = literal else { return false };
        return match &filter.component {
            None => {
                filter.component = Some(s.clone());
                true
            }
            Some(existing) => existing == s,
        };
    }

    if column.eq_ignore_ascii_case("kind") {
        if op != BinOp::Eq {
            return false;
        }
        // Only the exact canonical names; anything else keeps the
        // executor's string comparison.
        let Some(kind) = literal.as_str().and_then(EventKind::from_name) else {
            return false;
        };
        return match filter.kind {
            None => {
                filter.kind = Some(kind);
                true
            }
            Some(existing) => existing == kind,
        };
    }

    if column.eq_ignore_ascii_case("severity") {
        if op != BinOp::Eq {
            return false;
        }
        let Some(sev) = literal.as_str().and_then(EventSeverity::from_name) else {
            return false;
        };
        return match filter.severity {
            None => {
                filter.severity = Some(sev);
                true
            }
            Some(existing) => existing == sev,
        };
    }

    if column.eq_ignore_ascii_case("run_id") {
        if op != BinOp::Eq {
            return false;
        }
        let Some(v) = pushable_u64(literal) else {
            return false;
        };
        return match filter.run_id {
            None => {
                filter.run_id = Some(v);
                true
            }
            Some(existing) => existing == v,
        };
    }

    let Some((min_slot, max_slot)) = event_range_slots(filter, column) else {
        return false;
    };
    let Some(v) = pushable_u64(literal) else {
        return false;
    };
    absorb_range_cmp(min_slot, max_slot, op, v)
}

/// The (min, max) filter slots for a pushable event range column.
#[allow(clippy::type_complexity)]
fn event_range_slots<'a>(
    filter: &'a mut EventFilter,
    column: &str,
) -> Option<(&'a mut Option<u64>, &'a mut Option<u64>)> {
    if column.eq_ignore_ascii_case("id") {
        Some((&mut filter.min_id, &mut filter.max_id))
    } else if column.eq_ignore_ascii_case("ts_ms") {
        Some((&mut filter.min_ts_ms, &mut filter.max_ts_ms))
    } else {
        None
    }
}

/// The (min, max) filter slots for a pushable range column.
#[allow(clippy::type_complexity)]
fn range_slots<'a>(
    filter: &'a mut RunFilter,
    column: &str,
) -> Option<(&'a mut Option<u64>, &'a mut Option<u64>)> {
    if column.eq_ignore_ascii_case("id") {
        Some((&mut filter.min_id, &mut filter.max_id))
    } else if column.eq_ignore_ascii_case("start_ms") {
        Some((&mut filter.min_start_ms, &mut filter.max_start_ms))
    } else if column.eq_ignore_ascii_case("end_ms") {
        Some((&mut filter.min_end_ms, &mut filter.max_end_ms))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse a full query and return its WHERE clause.
    fn where_of(sql: &str) -> Expr {
        parse(sql).unwrap().where_clause.unwrap()
    }

    #[test]
    fn no_where_is_full_scan() {
        let plan = plan_run_scan(None);
        assert!(plan.filter.is_all());
        assert!(plan.residual.is_none());
    }

    #[test]
    fn component_and_status_equality_push_fully() {
        let w = where_of("SELECT * FROM runs WHERE component = 'etl' AND status = 'failed'");
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.component.as_deref(), Some("etl"));
        assert_eq!(plan.filter.status, Some(RunStatus::Failed));
        assert!(plan.residual.is_none());
    }

    #[test]
    fn flipped_literal_side_and_case_insensitive_column() {
        let w = where_of("SELECT * FROM runs WHERE 'etl' = Component AND 100 <= START_MS");
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.component.as_deref(), Some("etl"));
        assert_eq!(plan.filter.min_start_ms, Some(100));
        assert!(plan.residual.is_none());
    }

    #[test]
    fn range_bounds_intersect() {
        let w = where_of(
            "SELECT * FROM runs WHERE start_ms >= 100 AND start_ms > 150 \
             AND start_ms <= 900 AND start_ms < 800 AND id = 7",
        );
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.min_start_ms, Some(151));
        assert_eq!(plan.filter.max_start_ms, Some(799));
        assert_eq!(plan.filter.min_id, Some(7));
        assert_eq!(plan.filter.max_id, Some(7));
        assert!(plan.residual.is_none());
    }

    #[test]
    fn between_pushes_inclusive_bounds() {
        let w = where_of("SELECT * FROM runs WHERE end_ms BETWEEN 10 AND 20");
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.min_end_ms, Some(10));
        assert_eq!(plan.filter.max_end_ms, Some(20));
        assert!(plan.residual.is_none());
        // NOT BETWEEN stays residual.
        let w = where_of("SELECT * FROM runs WHERE end_ms NOT BETWEEN 10 AND 20");
        let plan = plan_run_scan(Some(&w));
        assert!(plan.filter.is_all());
        assert!(plan.residual.is_some());
    }

    #[test]
    fn unpushable_conjuncts_stay_residual() {
        for sql in [
            // OR is not a conjunct.
            "SELECT * FROM runs WHERE component = 'a' OR component = 'b'",
            // Wrong-case status literal must keep string semantics.
            "SELECT * FROM runs WHERE status = 'Success'",
            // Non-pushable column.
            "SELECT * FROM runs WHERE duration_ms > 100",
            // Negative literal: rows are non-negative, executor compares as i64.
            "SELECT * FROM runs WHERE start_ms > 0 - 5",
            // Float literal keeps numeric-interleave comparison.
            "SELECT * FROM runs WHERE start_ms >= 99.5",
            // col < 0 is unsatisfiable; stays residual.
            "SELECT * FROM runs WHERE id < 0",
            // status inequality has no filter form.
            "SELECT * FROM runs WHERE status != 'success'",
        ] {
            let w = where_of(sql);
            let plan = plan_run_scan(Some(&w));
            assert!(plan.filter.is_all(), "{sql}");
            assert_eq!(plan.residual.as_ref(), Some(&w), "{sql}");
        }
    }

    #[test]
    fn mixed_clause_splits() {
        let w = where_of(
            "SELECT * FROM runs WHERE component = 'etl' AND duration_ms > 10 AND start_ms <= 500",
        );
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.component.as_deref(), Some("etl"));
        assert_eq!(plan.filter.max_start_ms, Some(500));
        let residual = plan.residual.unwrap();
        assert_eq!(
            residual,
            where_of("SELECT * FROM runs WHERE duration_ms > 10")
        );
    }

    #[test]
    fn conflicting_equalities_leave_residual() {
        let w = where_of("SELECT * FROM runs WHERE component = 'a' AND component = 'b'");
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.component.as_deref(), Some("a"));
        assert!(plan.residual.is_some(), "second equality rejects all rows");
        // A duplicate of the same value is a no-op, fully pushed.
        let w = where_of("SELECT * FROM runs WHERE component = 'a' AND component = 'a'");
        let plan = plan_run_scan(Some(&w));
        assert_eq!(plan.filter.component.as_deref(), Some("a"));
        assert!(plan.residual.is_none());
    }

    #[test]
    fn event_plan_pushes_equalities_and_ranges() {
        let w = where_of(
            "SELECT * FROM events WHERE kind = 'alert_fired' AND severity = 'page' \
             AND component = 'infer' AND run_id = 4 AND ts_ms BETWEEN 10 AND 90 \
             AND id >= 2 AND id < 8",
        );
        let plan = plan_event_scan(Some(&w));
        assert_eq!(plan.filter.kind, Some(EventKind::AlertFired));
        assert_eq!(plan.filter.severity, Some(EventSeverity::Page));
        assert_eq!(plan.filter.component.as_deref(), Some("infer"));
        assert_eq!(plan.filter.run_id, Some(4));
        assert_eq!(plan.filter.min_ts_ms, Some(10));
        assert_eq!(plan.filter.max_ts_ms, Some(90));
        assert_eq!(plan.filter.min_id, Some(2));
        assert_eq!(plan.filter.max_id, Some(7));
        assert!(plan.residual.is_none());
    }

    #[test]
    fn event_plan_rejects_inexact_names() {
        for sql in [
            // Wrong casing must keep the executor's string comparison.
            "SELECT * FROM events WHERE kind = 'AlertFired'",
            "SELECT * FROM events WHERE severity = 'Page'",
            // Unknown names never become filters.
            "SELECT * FROM events WHERE kind = 'alert_cleared'",
            // Inequalities on name columns have no filter form.
            "SELECT * FROM events WHERE severity != 'info'",
            // Negative run id cannot match any row; stays residual.
            "SELECT * FROM events WHERE run_id = 0 - 1",
        ] {
            let w = where_of(sql);
            let plan = plan_event_scan(Some(&w));
            assert!(plan.filter.is_all(), "{sql}");
            assert_eq!(plan.residual.as_ref(), Some(&w), "{sql}");
        }
    }

    #[test]
    fn event_plan_splits_mixed_clause() {
        let w = where_of(
            "SELECT * FROM events WHERE kind = 'run_failed' AND detail = 'boom' AND ts_ms <= 50",
        );
        let plan = plan_event_scan(Some(&w));
        assert_eq!(plan.filter.kind, Some(EventKind::RunFailed));
        assert_eq!(plan.filter.max_ts_ms, Some(50));
        assert_eq!(
            plan.residual,
            Some(where_of("SELECT * FROM events WHERE detail = 'boom'"))
        );
        // Conflicting kinds: first wins, second stays residual.
        let w =
            where_of("SELECT * FROM events WHERE kind = 'run_failed' AND kind = 'run_finished'");
        let plan = plan_event_scan(Some(&w));
        assert_eq!(plan.filter.kind, Some(EventKind::RunFailed));
        assert!(plan.residual.is_some());
    }

    #[test]
    fn metric_plan_pushes_component_only() {
        let w = where_of("SELECT * FROM metrics WHERE component = 'infer' AND value > 0.5");
        let plan = plan_metric_scan(Some(&w));
        assert_eq!(plan.component.as_deref(), Some("infer"));
        assert_eq!(
            plan.residual,
            Some(where_of("SELECT * FROM metrics WHERE value > 0.5"))
        );
        let plan = plan_metric_scan(None);
        assert!(plan.component.is_none() && plan.residual.is_none());
    }

    #[test]
    fn summary_plan_pushes_component_and_metric() {
        let w = where_of(
            "SELECT * FROM summaries WHERE component = 'infer' AND metric = 'prediction' \
             AND drift_score > 0",
        );
        let plan = plan_summary_scan(Some(&w));
        assert_eq!(plan.component.as_deref(), Some("infer"));
        assert_eq!(plan.metric.as_deref(), Some("prediction"));
        assert_eq!(
            plan.residual,
            Some(where_of("SELECT * FROM summaries WHERE drift_score > 0"))
        );
        // Conflicting metric equality: first wins, second stays residual.
        let w = where_of("SELECT * FROM summaries WHERE metric = 'a' AND metric = 'b'");
        let plan = plan_summary_scan(Some(&w));
        assert_eq!(plan.metric.as_deref(), Some("a"));
        assert!(plan.residual.is_some());
        let plan = plan_summary_scan(None);
        assert!(plan.component.is_none() && plan.metric.is_none() && plan.residual.is_none());
    }

    #[test]
    fn diagnosis_plan_pushes_key_and_suspect() {
        let w = where_of(
            "SELECT * FROM diagnoses WHERE incident_key = 'drift:inference/prediction' \
             AND suspect = 'featurize_online' AND score > 1.0",
        );
        let plan = plan_diagnosis_scan(Some(&w));
        assert_eq!(
            plan.incident_key.as_deref(),
            Some("drift:inference/prediction")
        );
        assert_eq!(plan.suspect.as_deref(), Some("featurize_online"));
        assert_eq!(
            plan.residual,
            Some(where_of("SELECT * FROM diagnoses WHERE score > 1.0"))
        );
        // Conflicting key equality: first wins, second stays residual.
        let w = where_of("SELECT * FROM diagnoses WHERE incident_key = 'a' AND incident_key = 'b'");
        let plan = plan_diagnosis_scan(Some(&w));
        assert_eq!(plan.incident_key.as_deref(), Some("a"));
        assert!(plan.residual.is_some());
        let plan = plan_diagnosis_scan(None);
        assert!(plan.incident_key.is_none() && plan.suspect.is_none() && plan.residual.is_none());
    }

    /// Stats for a store of `runs` runs spread over `components`
    /// components, 2 statuses, starts spanning `[0, runs)`.
    fn stats(runs: u64, components: u64) -> IndexStats {
        IndexStats {
            runs,
            distinct_components: components,
            distinct_statuses: 2,
            min_start_ms: (runs > 0).then_some(0),
            max_start_ms: runs.checked_sub(1),
            next_id: runs + 1,
        }
    }

    #[test]
    fn route_chooser_takes_index_only_when_selective() {
        // 1000 runs over 10 components: est 100 ≤ 1000/4 → index.
        let f = RunFilter::all().with_component("etl");
        assert_eq!(
            choose_run_route(&f, &stats(1000, 10)),
            ScanRoute::Index(IndexRoute::Component)
        );
        // 2 components: est 500 > 250 → the sharded scan wins.
        assert_eq!(choose_run_route(&f, &stats(1000, 2)), ScanRoute::FullScan);
        // ...but the forced chooser still routes (equivalence-grid hook).
        assert_eq!(
            choose_run_route_forced(&f, &stats(1000, 2)),
            ScanRoute::Index(IndexRoute::Component)
        );
        // No applicable route at all: both fall back to the scan.
        assert_eq!(
            choose_run_route_forced(&RunFilter::all(), &stats(1000, 10)),
            ScanRoute::FullScan
        );
    }

    #[test]
    fn route_chooser_picks_smallest_estimate() {
        // Component narrows to 100; a 2-wide id range narrows to 2.
        let f = RunFilter::all()
            .with_component("etl")
            .with_id_at_or_after(5)
            .with_id_at_or_before(6);
        assert_eq!(
            choose_run_route(&f, &stats(1000, 10)),
            ScanRoute::Index(IndexRoute::IdRange)
        );
        // A narrow time window beats the component estimate too.
        let f = RunFilter::all()
            .with_component("etl")
            .started_at_or_after(10)
            .started_at_or_before(19);
        assert_eq!(
            choose_run_route(&f, &stats(1000, 10)),
            ScanRoute::Index(IndexRoute::StartTime)
        );
    }

    #[test]
    fn route_estimates_clamp_to_observed_bounds() {
        // Id range clamps against next_id: [900, ∞) over 1000 ids ≈ 101
        // candidates, well under 1000/4.
        let f = RunFilter::all().with_id_at_or_after(900);
        assert_eq!(
            choose_run_route(&f, &stats(1000, 1)),
            ScanRoute::Index(IndexRoute::IdRange)
        );
        // An infeasible window estimates zero and still routes (the
        // re-check returns no rows, same as the naive path).
        let f = RunFilter::all()
            .with_id_at_or_after(10)
            .with_id_at_or_before(5);
        assert_eq!(
            choose_run_route(&f, &stats(1000, 1)),
            ScanRoute::Index(IndexRoute::IdRange)
        );
        // Empty store: every estimate is 0, routing is still sound.
        let f = RunFilter::all().started_at_or_after(50);
        assert_eq!(
            choose_run_route(&f, &stats(0, 0)),
            ScanRoute::Index(IndexRoute::StartTime)
        );
    }

    #[test]
    fn scan_route_describes_for_explain() {
        assert_eq!(ScanRoute::FullScan.describe(), "scan");
        assert_eq!(
            ScanRoute::Index(IndexRoute::Component).describe(),
            "index(component)"
        );
        assert_eq!(
            ScanRoute::Index(IndexRoute::StartTime).describe(),
            "index(start_time)"
        );
    }
}
