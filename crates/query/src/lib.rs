//! # mltrace-query
//!
//! A SQL subset over the observability store's virtual tables
//! (`components`, `component_runs`, `io_pointers`, `metrics`,
//! `summaries`) — the paper's §4.2 escape hatch: "for more specific
//! queries, users can query the logs and metadata via SQL."
//!
//! Supported: projections with aliases and arithmetic, `SELECT DISTINCT`,
//! `WHERE` with `AND`/`OR`/`NOT`, comparisons, `LIKE`, `IN`,
//! `IS [NOT] NULL`, `[NOT] BETWEEN`, scalar functions (`ABS`, `LENGTH`,
//! `COALESCE`, `LOWER`, `UPPER`, `ROUND`), `GROUP BY` with
//! `COUNT`/`SUM`/`AVG`/`MIN`/`MAX` and `HAVING`, `ORDER BY ... [DESC]`,
//! and `LIMIT`.
//!
//! Execution pushes simple `WHERE` conjuncts (component/status equality,
//! id/time comparisons) and — when nothing downstream can drop or reorder
//! rows — `LIMIT` down into the store's batched snapshot scan (see
//! [`plan`]), and uses a bounded top-K sort when `ORDER BY` and `LIMIT`
//! are combined. When the store keeps secondary indexes, the planner
//! routes selective `component_runs` predicates through an index lookup
//! instead of the sharded scan ([`plan::choose_run_route`]); `EXPLAIN
//! <select>` prints the decision without running the query.
//! [`exec::execute_query_unoptimized`] keeps the naive full-scan path as
//! the reference for equivalence testing.

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod prepare;
pub mod token;

pub use ast::{AggFunc, BinOp, Expr, Query, ScalarFunc, SelectItem};
pub use exec::{
    execute, execute_query, execute_query_unoptimized, execute_query_with_route, explain_query,
    QueryError, QueryResult, RoutePreference,
};
pub use parser::{parse, parse_with_params, ParseError};
pub use plan::{
    choose_run_route, choose_run_route_forced, plan_diagnosis_scan, plan_metric_scan,
    plan_run_scan, DiagnosisScanPlan, MetricScanPlan, RunScanPlan, ScanRoute,
};
pub use prepare::{execute_prepared, prepare, PreparedQuery};
pub use token::{tokenize, LexError, Symbol, Token};
