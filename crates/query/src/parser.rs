//! Recursive-descent parser for the SQL subset:
//!
//! ```text
//! query   := SELECT [DISTINCT] items FROM table join* [WHERE expr]
//!            [GROUP BY cols] [HAVING expr]
//!            [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//! table   := ident [[AS] ident]
//! join    := ([INNER] JOIN | LEFT [OUTER] JOIN) table ON expr
//! items   := * | item (, item)*
//! item    := expr [AS ident]
//! expr    := or
//! or      := and (OR and)*
//! and     := not (AND not)*
//! not     := NOT not | cmp
//! cmp     := add (op add | [NOT] LIKE str | [NOT] IN (...) |
//!            [NOT] BETWEEN add AND add | IS [NOT] NULL)?
//! add     := mul ((+|-) mul)*
//! mul     := unary ((*|/|%) unary)*
//! unary   := - unary | primary
//! primary := number | string | TRUE | FALSE | NULL | func(expr|*) |
//!            ident | ( expr )
//! ```

use crate::ast::{AggFunc, BinOp, Expr, Join, JoinKind, Query, ScalarFunc, SelectItem, TableRef};
use crate::token::{tokenize, LexError, Symbol, Token};
use mltrace_store::Value;
use std::fmt;

/// Parse error.
#[derive(Debug, PartialEq)]
pub struct ParseError {
    /// Description with context.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let (q, _) = parse_with_params(sql)?;
    Ok(q)
}

/// Parse one SELECT statement, also returning the number of `?`
/// placeholders it contains (numbered left-to-right in source order).
pub fn parse_with_params(sql: &str) -> Result<(Query, usize), ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("trailing input at token {}", p.peek_text()),
        });
    }
    Ok((q, p.params))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Count of `?` placeholders seen so far; each occurrence is numbered
    /// with the value of this counter at the time it is parsed.
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<end>".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: format!("{} (at {})", msg.into(), self.peek_text()),
        })
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    fn symbol(&mut self, s: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<(), ParseError> {
        if self.symbol(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected identifier")
            }
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.keyword("DISTINCT");
        let select = self.select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.keyword("JOIN") {
                JoinKind::Inner
            } else if self.keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.keyword("LEFT") {
                self.keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }
        let where_clause = if self.keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.identifier()?);
                if !self.symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let having = if self.keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.keyword("DESC") {
                    true
                } else {
                    self.keyword("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                _ => return self.err("expected non-negative integer after LIMIT"),
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// `ident [[AS] ident]` — a table name with an optional alias. A bare
    /// alias is any identifier that is not a clause-starting keyword, so
    /// `FROM component_runs r JOIN ...` parses while `FROM t WHERE ...`
    /// leaves `WHERE` alone.
    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        const RESERVED: [&str; 10] = [
            "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "OUTER", "ON",
        ];
        let name = self.identifier()?;
        let alias = if self.keyword("AS") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) => {
                    Some(self.identifier()?)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        if self.symbol(Symbol::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.keyword("AS") {
                Some(self.identifier()?)
            } else {
                None
            };
            items.push(SelectItem::Expr { expr, alias });
            if !self.symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        // Optional comparison suffix.
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // [NOT] LIKE / [NOT] IN / IS [NOT] NULL
        let negated = if self.peek_keyword("NOT")
            && self
                .tokens
                .get(self.pos + 1)
                .map(|t| matches!(t, Token::Ident(s) if s.eq_ignore_ascii_case("LIKE") || s.eq_ignore_ascii_case("IN") || s.eq_ignore_ascii_case("BETWEEN")))
                .unwrap_or(false)
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.keyword("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_keyword("AND")?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.keyword("LIKE") {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern,
                        negated,
                    })
                }
                _ => return self.err("expected string pattern after LIKE"),
            }
        }
        if self.keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::In {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return self.err("expected LIKE, IN or BETWEEN after NOT");
        }
        if self.keyword("IS") {
            let negated = self.keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.symbol(Symbol::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Expr::Literal(Value::Int(n as i64)))
                } else {
                    Ok(Expr::Literal(Value::Float(n)))
                }
            }
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Symbol(Symbol::Question)) => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Placeholder(idx))
            }
            Some(Token::Symbol(Symbol::LParen)) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                // Aggregate call?
                if self.peek() == Some(&Token::Symbol(Symbol::LParen)) {
                    if let Some(func) = AggFunc::parse(&name) {
                        self.pos += 1; // consume '('
                        let arg = if self.symbol(Symbol::Star) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Agg { func, arg });
                    }
                    if let Some(func) = ScalarFunc::parse(&name) {
                        self.pos += 1; // consume '('
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::Symbol(Symbol::RParen)) {
                            loop {
                                args.push(self.expr()?);
                                if !self.symbol(Symbol::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Scalar { func, args });
                    }
                    return self.err(format!("unknown function {name}"));
                }
                Ok(Expr::Column(name))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!(
                    "expected expression, got {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "<end>".into())
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_parses() {
        let q = parse(
            "SELECT component, count(*) AS runs FROM component_runs \
             WHERE status != 'success' AND duration_ms >= 100 \
             GROUP BY component HAVING count(*) > 2 \
             ORDER BY runs DESC, component LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.from, TableRef::named("component_runs"));
        assert_eq!(q.select.len(), 2);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by, vec!["component"]);
        assert!(q.having.as_ref().unwrap().has_aggregate());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].1, "first key descending");
        assert!(!q.order_by[1].1);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn wildcard_and_minimal() {
        let q = parse("select * from metrics").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        assert!(q.where_clause.is_none());
        assert!(q.limit.is_none());
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 = c AND d OR e  →  ((((a+(b*2))=c) AND d) OR e)
        let q = parse("SELECT * FROM t WHERE a + b * 2 = c AND d OR e").unwrap();
        let Expr::Binary { op: BinOp::Or, .. } = q.where_clause.unwrap() else {
            panic!("top level should be OR");
        };
    }

    #[test]
    fn like_in_isnull() {
        let q = parse(
            "SELECT * FROM io_pointers WHERE name LIKE 'pred-%' \
             AND ptype IN ('data', 'model') AND artifact IS NOT NULL",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let text = format!("{w:?}");
        assert!(text.contains("Like"));
        assert!(text.contains("In"));
        assert!(text.contains("IsNull"));
        // Negated variants.
        let q = parse("SELECT * FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1,2)").unwrap();
        let text = format!("{:?}", q.where_clause.unwrap());
        assert!(text.contains("negated: true"));
    }

    #[test]
    fn literals() {
        let q =
            parse("SELECT * FROM t WHERE a = TRUE AND b = NULL AND c = 2.5 AND d = -3").unwrap();
        let text = format!("{:?}", q.where_clause.unwrap());
        assert!(text.contains("Bool(true)"));
        assert!(text.contains("Null"));
        assert!(text.contains("Float(2.5)"));
        assert!(text.contains("Neg"));
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
        // `FROM t extra` is now a bare alias; trailing tokens after the
        // alias are still an error.
        assert!(parse("SELECT * FROM t extra tokens").is_err());
        assert!(
            parse("SELECT median(x) FROM t").is_err(),
            "unknown function"
        );
        assert!(parse("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn joins_parse() {
        let q = parse(
            "SELECT r.component, i.state FROM runs r \
             JOIN incidents AS i ON r.status = i.severity \
             LEFT OUTER JOIN events e ON e.run_id = r.id AND e.kind = 'alert' \
             WHERE r.duration_ms > 10",
        )
        .unwrap();
        assert_eq!(q.from.name, "runs");
        assert_eq!(q.from.alias.as_deref(), Some("r"));
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].kind, JoinKind::Inner);
        assert_eq!(q.joins[0].table.label(), "i");
        assert_eq!(q.joins[1].kind, JoinKind::Left);
        assert_eq!(q.joins[1].table.name, "events");
        assert!(q.where_clause.is_some());
        // INNER JOIN spelling; bare alias does not eat clause keywords.
        let q = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y ORDER BY x").unwrap();
        assert_eq!(q.joins.len(), 1);
        assert!(q.from.alias.is_none());
        assert_eq!(q.order_by.len(), 1);
        // A dangling JOIN without ON is an error.
        assert!(parse("SELECT * FROM a JOIN b").is_err());
        assert!(parse("SELECT * FROM a LEFT JOIN b WHERE x = 1").is_err());
    }

    #[test]
    fn placeholders_number_left_to_right() {
        let (q, n) =
            parse_with_params("SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ? LIMIT 5").unwrap();
        assert_eq!(n, 3);
        let text = format!("{:?}", q.where_clause.unwrap());
        assert!(text.contains("Placeholder(0)"));
        assert!(text.contains("Placeholder(1)"));
        assert!(text.contains("Placeholder(2)"));
        // Plain parse() still accepts them (binding is checked at exec).
        assert!(parse("SELECT * FROM t WHERE a = ?").is_ok());
    }

    #[test]
    fn count_star_and_count_col() {
        let q = parse("SELECT count(*), count(run_id) FROM metrics").unwrap();
        assert_eq!(q.select.len(), 2);
        let SelectItem::Expr {
            expr: Expr::Agg { arg, .. },
            ..
        } = &q.select[0]
        else {
            panic!()
        };
        assert!(arg.is_none());
    }
}
