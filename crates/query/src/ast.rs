//! Abstract syntax for the SQL subset.

use mltrace_store::Value;

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`: deduplicate output rows.
    pub distinct: bool,
    /// Projected items.
    pub select: Vec<SelectItem>,
    /// Leftmost source table (resolved by the executor).
    pub from: TableRef,
    /// Joined tables, in join order (left-deep).
    pub joins: Vec<Join>,
    /// Row filter.
    pub where_clause: Option<Expr>,
    /// Grouping columns.
    pub group_by: Vec<String>,
    /// Post-aggregation filter.
    pub having: Option<Expr>,
    /// Sort keys with direction (`true` = descending).
    pub order_by: Vec<(Expr, bool)>,
    /// Row cap.
    pub limit: Option<usize>,
}

/// A table in `FROM`/`JOIN`, with an optional alias. Columns of this
/// source can be qualified by the alias (or the table name when no alias
/// was given): `r.component`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The table name as written.
    pub name: String,
    /// `AS` alias (or bare alias).
    pub alias: Option<String>,
}

impl TableRef {
    /// A reference with no alias.
    pub fn named(name: impl Into<String>) -> TableRef {
        TableRef {
            name: name.into(),
            alias: None,
        }
    }

    /// The label columns of this source are qualified by: the alias if
    /// one was given, else the table name.
    pub fn label(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`: keep matching row pairs only.
    Inner,
    /// `LEFT [OUTER] JOIN`: keep every left row, null-padding the right
    /// columns when nothing matches.
    Left,
}

/// One `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Inner or left outer.
    pub kind: JoinKind,
    /// The joined (right-side) table.
    pub table: TableRef,
    /// The `ON` predicate.
    pub on: Expr,
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS` alias.
        alias: Option<String>,
    },
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `ABS(x)` — absolute value of a numeric.
    Abs,
    /// `LENGTH(s)` — string length (list length for lists).
    Length,
    /// `COALESCE(a, b, ...)` — first non-null argument.
    Coalesce,
    /// `LOWER(s)` / `UPPER(s)` — case folding.
    Lower,
    /// Uppercase.
    Upper,
    /// `ROUND(x)` — nearest integer.
    Round,
}

impl ScalarFunc {
    /// Parse a (case-insensitive) scalar function name.
    pub fn parse(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_uppercase().as_str() {
            "ABS" => Some(ScalarFunc::Abs),
            "LENGTH" => Some(ScalarFunc::Length),
            "COALESCE" => Some(ScalarFunc::Coalesce),
            "LOWER" => Some(ScalarFunc::Lower),
            "UPPER" => Some(ScalarFunc::Upper),
            "ROUND" => Some(ScalarFunc::Round),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Abs => "abs",
            ScalarFunc::Length => "length",
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Round => "round",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// Parse a (case-insensitive) function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation (`NOT expr`).
    Not(Box<Expr>),
    /// Arithmetic negation (`-expr`).
    Neg(Box<Expr>),
    /// `expr LIKE 'pattern'` (with `%`/`_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern.
        pattern: String,
        /// Negated form.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    In {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument expression.
        arg: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Scalar {
        /// Function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr [NOT] BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `?` — positional parameter of a prepared statement, numbered
    /// left-to-right from 0 in source order. Binding replaces it with a
    /// `Literal` before planning, so a bound query plans exactly like its
    /// literal-SQL equivalent.
    Placeholder(usize),
}

impl Expr {
    /// True when the expression (transitively) contains an aggregate.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Placeholder(_) => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::In { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Scalar { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::Between { expr, lo, hi, .. } => {
                expr.has_aggregate() || lo.has_aggregate() || hi.has_aggregate()
            }
        }
    }

    /// Split a predicate into its top-level `AND` conjuncts, in
    /// left-to-right evaluation order. A non-`AND` expression is a single
    /// conjunct. The pushdown planner consumes this: each conjunct can be
    /// absorbed into a scan filter or retained as a residual independently.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                left.collect_conjuncts(out);
                right.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Default output name for an unaliased projection.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(c) => c.clone(),
            Expr::Agg { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name(), a.default_name()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Scalar { func, args } => format!(
                "{}({})",
                func.name(),
                args.iter()
                    .map(Expr::default_name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            _ => "expr".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_parse_and_names() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::Sum.name(), "sum");
    }

    #[test]
    fn has_aggregate_traverses() {
        let plain = Expr::Column("a".into());
        assert!(!plain.has_aggregate());
        let agg = Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(Expr::Agg {
                func: AggFunc::Count,
                arg: None,
            }),
            right: Box::new(Expr::Literal(Value::Int(5))),
        };
        assert!(agg.has_aggregate());
        let nested = Expr::Not(Box::new(agg));
        assert!(nested.has_aggregate());
    }

    #[test]
    fn default_names() {
        assert_eq!(Expr::Column("status".into()).default_name(), "status");
        assert_eq!(
            Expr::Agg {
                func: AggFunc::Count,
                arg: None
            }
            .default_name(),
            "count(*)"
        );
        assert_eq!(
            Expr::Agg {
                func: AggFunc::Avg,
                arg: Some(Box::new(Expr::Column("value".into())))
            }
            .default_name(),
            "avg(value)"
        );
    }
}
