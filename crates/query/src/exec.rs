//! Query executor: scan → filter → group/aggregate → having → project →
//! order → limit, over the store's virtual tables.

use crate::ast::{AggFunc, BinOp, Expr, Join, JoinKind, Query, ScalarFunc, SelectItem};
use crate::parser::{parse, ParseError};
use crate::plan::{
    choose_run_route, choose_run_route_forced, estimate_candidates, plan_diagnosis_scan,
    plan_event_scan, plan_metric_scan, plan_run_scan, plan_summary_scan, ScanRoute,
};
use mltrace_store::aggregate::{canonical_row_key, canonical_value_key};
use mltrace_store::schema::{
    column_index, run_row, scan, scan_diagnosis_rows, scan_events_rows, scan_metrics_rows,
    scan_runs_rows, scan_summary_rows, table_schema, Row, Table,
};
use mltrace_store::{
    AggInput, AggPartial, EventFilter, GroupPartial, RunFilter, Store, StoreError, Value,
};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

/// Execution error.
#[derive(Debug)]
pub enum QueryError {
    /// SQL text did not parse.
    Parse(ParseError),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column in the chosen table.
    UnknownColumn(String),
    /// Storage failure during scan.
    Store(StoreError),
    /// Semantically invalid query (e.g. bare column with aggregates).
    Semantic(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::Store(e) => write!(f, "store error: {e}"),
            QueryError::Semantic(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

/// A query result: column names plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Parse and execute `sql` against `store`.
///
/// ```
/// use mltrace_query::execute;
/// use mltrace_store::{ComponentRecord, MemoryStore, Store};
///
/// let store = MemoryStore::new();
/// store.register_component(ComponentRecord::named("etl")).unwrap();
/// let result = execute(&store, "SELECT name FROM components").unwrap();
/// assert_eq!(result.rows.len(), 1);
/// ```
pub fn execute(store: &dyn Store, sql: &str) -> Result<QueryResult, QueryError> {
    // Self-telemetry rides on the store's registry when it keeps one;
    // parse and execution latency are recorded separately because a slow
    // parse and a slow scan need different fixes.
    let tele = store.telemetry().cloned();
    if let Some(t) = &tele {
        t.incr("query.statements_total");
    }
    let explained = strip_explain(sql);
    let query = {
        let _span = tele.as_ref().map(|t| t.span("query.parse"));
        parse(explained.unwrap_or(sql))?
    };
    let _span = tele.as_ref().map(|t| t.span("query.exec"));
    if explained.is_some() {
        if let Some(t) = &tele {
            t.incr("query.explain_total");
        }
        return explain_query(store, &query);
    }
    execute_query(store, &query)
}

/// Peel a leading `EXPLAIN` keyword off `sql`, returning the statement
/// that follows it, or `None` when the text is a plain statement.
pub(crate) fn strip_explain(sql: &str) -> Option<&str> {
    let t = sql.trim_start();
    let head = t.get(..7)?;
    if head.eq_ignore_ascii_case("EXPLAIN") && t[7..].starts_with(|c: char| c.is_whitespace()) {
        Some(&t[7..])
    } else {
        None
    }
}

/// How the executor picks between the sharded scan and a secondary-index
/// lookup for `component_runs` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePreference {
    /// Planner decides from the store's [`IndexStats`] selectivity
    /// estimate (the default everywhere).
    ///
    /// [`IndexStats`]: mltrace_store::IndexStats
    #[default]
    Auto,
    /// Take the best applicable index route regardless of estimated
    /// selectivity. Test hook: pins the index executor against the scan
    /// path on fixtures too small for `Auto` to pick an index.
    ForceIndex,
    /// Never consult the indexes (the pre-index behavior).
    ForceScan,
}

/// Execute a pre-parsed query through the pushdown planner: simple WHERE
/// conjuncts and (when safe) LIMIT run inside the store scan, so only
/// surviving records are converted to [`Value`] rows.
pub fn execute_query(store: &dyn Store, query: &Query) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, true, RoutePreference::Auto)
}

/// Execute a pre-parsed query on the naive path: full scan, then evaluate
/// the whole WHERE clause per materialized row. Kept as the reference
/// implementation for the pushdown equivalence suite; results must match
/// [`execute_query`] row for row.
pub fn execute_query_unoptimized(
    store: &dyn Store,
    query: &Query,
) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, false, RoutePreference::ForceScan)
}

/// [`execute_query`] with an explicit scan-vs-index routing preference,
/// for tests and benchmarks that pin one executor path.
pub fn execute_query_with_route(
    store: &dyn Store,
    query: &Query,
    pref: RoutePreference,
) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, true, pref)
}

fn execute_query_inner(
    store: &dyn Store,
    query: &Query,
    pushdown: bool,
    pref: RoutePreference,
) -> Result<QueryResult, QueryError> {
    let scope = Scope::build(query)?;
    let resolve = |name: &str| scope.resolve(name);

    // Validate column references and predicate shapes up front, before
    // any scan, so both execution paths fail identically.
    validate_query(query, &scope)?;

    let grouped = !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Expr { expr, .. } if expr.has_aggregate()));

    // Partial-aggregate pushdown: a grouped single-table run query whose
    // WHERE the run filter fully absorbs folds shard-by-shard inside the
    // store, so the executor only sees group-count partial states.
    if pushdown && grouped {
        if let Some(pplan) = plan_partial_agg(query, &scope) {
            if let Some((columns, out_rows)) =
                execute_partial_agg(store, query, &scope, &pplan, pref)?
            {
                return finish_rows(store, query, columns, out_rows, &resolve);
            }
        }
    }

    // Scan each source, splitting WHERE into per-source pushed-down parts
    // and a residual the executor evaluates on the joined rows.
    let (mut rows, residual) = if pushdown {
        let (clauses, extra) = partition_where(query, &scope);
        // LIMIT can run inside the scan only when nothing downstream can
        // drop or reorder rows: single source, whole WHERE pushed, no
        // grouping, DISTINCT, or ORDER BY.
        let limit0 = if query.joins.is_empty()
            && extra.is_empty()
            && !grouped
            && !query.distinct
            && query.order_by.is_empty()
        {
            query.limit
        } else {
            None
        };
        let mut per_source: Vec<Vec<Row>> = Vec::with_capacity(scope.sources.len());
        for (i, src) in scope.sources.iter().enumerate() {
            let limit = if i == 0 { limit0 } else { None };
            let (mut rows, local_residual) =
                scan_source(store, src.table, clauses[i].as_ref(), limit, pref)?;
            // The planner residual references only this source's columns
            // (bare names), so it filters before the join.
            if let Some(res) = &local_residual {
                let table = src.table;
                let local = |name: &str| -> Result<usize, QueryError> {
                    column_index(table, name)
                        .map_err(|_| QueryError::UnknownColumn(name.to_owned()))
                };
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows {
                    if eval(res, &row, &local)?.truthy() {
                        kept.push(row);
                    }
                }
                rows = kept;
            }
            per_source.push(rows);
        }
        let rows = execute_joins(query, &scope, per_source, true)?;
        (rows, and_fold(extra))
    } else {
        let mut per_source: Vec<Vec<Row>> = Vec::with_capacity(scope.sources.len());
        for src in &scope.sources {
            per_source.push(scan(store, src.table)?);
        }
        let rows = execute_joins(query, &scope, per_source, false)?;
        (rows, query.where_clause.clone())
    };

    // Residual WHERE (the full clause on the naive path).
    if let Some(filter) = &residual {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval(filter, &row, &resolve)?.truthy() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let (columns, out_rows) = if grouped {
        aggregate(query, rows, &resolve)?
    } else {
        project_plain(query, rows, &scope, &resolve)?
    };
    finish_rows(store, query, columns, out_rows, &resolve)
}

/// The shared tail of every execution path: DISTINCT, ORDER BY (bounded
/// top-K when a LIMIT rides along), and LIMIT over the projected rows.
fn finish_rows(
    store: &dyn Store,
    query: &Query,
    columns: Vec<String>,
    mut out_rows: Vec<Row>,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<QueryResult, QueryError> {
    let tele = store.telemetry();

    // DISTINCT over the projected rows, via hashed canonical keys (the
    // key encoding matches `Value::loose_eq`, see `canonical_row_key`) —
    // O(n) instead of the old O(n²) pairwise comparison.
    if query.distinct {
        let mut seen: HashSet<String> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|row| seen.insert(canonical_row_key(row)));
    }

    // ORDER BY over output columns first, then table columns (plain mode).
    if !query.order_by.is_empty() {
        let keys: Vec<(SortKey, bool)> = query
            .order_by
            .iter()
            .map(|(e, desc)| Ok((sort_key(e, &columns, query, resolve)?, *desc)))
            .collect::<Result<_, QueryError>>()?;
        let cmp = |a: &Row, b: &Row| -> Ordering {
            for (key, desc) in &keys {
                let (va, vb) = match key {
                    SortKey::Output(i) => (&a[*i], &b[*i]),
                };
                let c = va.total_cmp(vb);
                let c = if *desc { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        };
        match query.limit {
            // Bounded top-K instead of full-sort-then-truncate.
            Some(k) if k < out_rows.len() => {
                if let Some(t) = tele {
                    t.incr("query.topk_total");
                }
                top_k(&mut out_rows, k, cmp);
            }
            _ => out_rows.sort_by(cmp),
        }
    }

    if let Some(limit) = query.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult {
        columns,
        rows: out_rows,
    })
}

/// One source table in the FROM/JOIN chain, with the column-offset range
/// its columns occupy in the joined row.
struct ScopeSource {
    /// Qualifier label: the alias if one was given, else the table name.
    label: String,
    table: Table,
    offset: usize,
    width: usize,
    /// Right side of a LEFT JOIN: its columns may be null-padded, so
    /// WHERE conjuncts on them cannot be pushed below the join.
    left_padded: bool,
}

/// Name resolution over the FROM/JOIN sources: maps (possibly
/// `alias.column`-qualified) names to offsets in the joined row, which is
/// the concatenation of every source's columns in FROM/JOIN order.
struct Scope {
    sources: Vec<ScopeSource>,
}

impl Scope {
    fn build(query: &Query) -> Result<Scope, QueryError> {
        let mut sources: Vec<ScopeSource> = Vec::with_capacity(1 + query.joins.len());
        let mut offset = 0;
        let refs = std::iter::once((&query.from, false)).chain(
            query
                .joins
                .iter()
                .map(|j| (&j.table, j.kind == JoinKind::Left)),
        );
        for (tref, left_padded) in refs {
            let table = Table::parse(&tref.name)
                .ok_or_else(|| QueryError::UnknownTable(tref.name.clone()))?;
            let label = tref.label().to_owned();
            if sources.iter().any(|s| s.label.eq_ignore_ascii_case(&label)) {
                return Err(QueryError::Semantic(format!(
                    "duplicate table label '{label}'"
                )));
            }
            let width = table_schema(table).len();
            sources.push(ScopeSource {
                label,
                table,
                offset,
                width,
                left_padded,
            });
            offset += width;
        }
        Ok(Scope { sources })
    }

    /// Resolve a column name to its offset in the joined row. Qualified
    /// names (`r.component`) look in the named source only; bare names
    /// are searched across every source and must be unambiguous.
    fn resolve(&self, name: &str) -> Result<usize, QueryError> {
        if let Some((qualifier, column)) = name.split_once('.') {
            let src = self
                .sources
                .iter()
                .find(|s| s.label.eq_ignore_ascii_case(qualifier))
                .ok_or_else(|| QueryError::UnknownColumn(name.to_owned()))?;
            let idx = column_index(src.table, column)
                .map_err(|_| QueryError::UnknownColumn(name.to_owned()))?;
            return Ok(src.offset + idx);
        }
        let mut found = None;
        for s in &self.sources {
            if let Ok(idx) = column_index(s.table, name) {
                if found.is_some() {
                    return Err(QueryError::Semantic(format!(
                        "ambiguous column '{name}': qualify it with a table label"
                    )));
                }
                found = Some(s.offset + idx);
            }
        }
        found.ok_or_else(|| QueryError::UnknownColumn(name.to_owned()))
    }

    /// Index of the source whose column range contains `global`.
    fn source_of(&self, global: usize) -> usize {
        self.sources
            .iter()
            .rposition(|s| global >= s.offset)
            .unwrap_or(0)
    }

    /// Output column names for `SELECT *`: bare names for one source,
    /// label-qualified once a join makes bare names collide.
    fn wildcard_columns(&self) -> Vec<String> {
        if let [only] = &self.sources[..] {
            return table_schema(only.table)
                .iter()
                .map(|s| s.to_string())
                .collect();
        }
        let mut out = Vec::new();
        for s in &self.sources {
            for c in table_schema(s.table) {
                out.push(format!("{}.{c}", s.label));
            }
        }
        out
    }
}

/// Up-front semantic checks shared by execution and EXPLAIN: every
/// column resolves, and aggregates appear only above the grouping
/// boundary (not in WHERE or JOIN ON).
fn validate_query(query: &Query, scope: &Scope) -> Result<(), QueryError> {
    let resolve = |name: &str| scope.resolve(name);
    validate_columns(query, &resolve)?;
    if let Some(filter) = &query.where_clause {
        if filter.has_aggregate() {
            return Err(QueryError::Semantic("aggregate in WHERE".into()));
        }
    }
    for join in &query.joins {
        if join.on.has_aggregate() {
            return Err(QueryError::Semantic("aggregate in JOIN ON".into()));
        }
    }
    Ok(())
}

/// Walk every column reference in an expression.
fn for_each_column<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a str)) {
    match e {
        Expr::Column(c) => f(c),
        Expr::Literal(_) | Expr::Placeholder(_) => {}
        Expr::Binary { left, right, .. } => {
            for_each_column(left, f);
            for_each_column(right, f);
        }
        Expr::Not(x) | Expr::Neg(x) => for_each_column(x, f),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => for_each_column(expr, f),
        Expr::In { expr, list, .. } => {
            for_each_column(expr, f);
            for x in list {
                for_each_column(x, f);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                for_each_column(a, f);
            }
        }
        Expr::Scalar { args, .. } => {
            for a in args {
                for_each_column(a, f);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            for_each_column(expr, f);
            for_each_column(lo, f);
            for_each_column(hi, f);
        }
    }
}

/// The set of sources an expression's columns resolve into, or `None`
/// when any column fails to resolve (validation reports those first).
fn column_sources(e: &Expr, scope: &Scope) -> Option<BTreeSet<usize>> {
    let mut srcs = BTreeSet::new();
    let mut unknown = false;
    for_each_column(e, &mut |c| match scope.resolve(c) {
        Ok(g) => {
            srcs.insert(scope.source_of(g));
        }
        Err(_) => unknown = true,
    });
    (!unknown).then_some(srcs)
}

/// Clone an expression with every column name rewritten by `rename`.
fn map_columns(e: &Expr, rename: &dyn Fn(&str) -> String) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(rename(c)),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Placeholder(i) => Expr::Placeholder(*i),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(map_columns(left, rename)),
            right: Box::new(map_columns(right, rename)),
        },
        Expr::Not(x) => Expr::Not(Box::new(map_columns(x, rename))),
        Expr::Neg(x) => Expr::Neg(Box::new(map_columns(x, rename))),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(map_columns(expr, rename)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::In {
            expr,
            list,
            negated,
        } => Expr::In {
            expr: Box::new(map_columns(expr, rename)),
            list: list.iter().map(|x| map_columns(x, rename)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(map_columns(expr, rename)),
            negated: *negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(map_columns(a, rename))),
        },
        Expr::Scalar { func, args } => Expr::Scalar {
            func: *func,
            args: args.iter().map(|a| map_columns(a, rename)).collect(),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(map_columns(expr, rename)),
            lo: Box::new(map_columns(lo, rename)),
            hi: Box::new(map_columns(hi, rename)),
            negated: *negated,
        },
    }
}

/// Rewrite every column in `e` to its bare schema name within source
/// `src`, so the single-table planners (which match unqualified names)
/// can absorb qualified conjuncts. The caller guarantees every column
/// resolves into `src`.
fn strip_qualifiers(e: &Expr, scope: &Scope, src: usize) -> Expr {
    let source = &scope.sources[src];
    map_columns(e, &|c: &str| match scope.resolve(c) {
        Ok(g) => table_schema(source.table)[g - source.offset].to_owned(),
        Err(_) => c.to_owned(),
    })
}

/// AND the conjuncts back together, preserving order.
fn and_fold(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts.into_iter().reduce(|left, right| Expr::Binary {
        op: BinOp::And,
        left: Box::new(left),
        right: Box::new(right),
    })
}

/// Partition the WHERE clause's conjuncts among the sources: a conjunct
/// pushes below the join to source `i` when every column it references
/// lives in source `i` and that source is never null-padded by a LEFT
/// join (filtering a padded source pre-join would change which rows get
/// padding). Column-free conjuncts go to the first source, which is
/// never padded. Returns the per-source clauses (in bare column names)
/// plus the residual conjuncts for the joined rows.
fn partition_where(query: &Query, scope: &Scope) -> (Vec<Option<Expr>>, Vec<Expr>) {
    let mut per_source: Vec<Vec<Expr>> = scope.sources.iter().map(|_| Vec::new()).collect();
    let mut residual = Vec::new();
    if let Some(w) = &query.where_clause {
        for conjunct in w.conjuncts() {
            let target = match column_sources(conjunct, scope) {
                Some(srcs) if srcs.is_empty() => Some(0),
                Some(srcs) if srcs.len() == 1 => {
                    let i = *srcs.iter().next().expect("len checked");
                    (!scope.sources[i].left_padded).then_some(i)
                }
                _ => None,
            };
            match target {
                Some(i) => per_source[i].push(strip_qualifiers(conjunct, scope, i)),
                None => residual.push(conjunct.clone()),
            }
        }
    }
    let clauses = per_source.into_iter().map(and_fold).collect();
    (clauses, residual)
}

/// Scan one source table through its pushdown planner. `clause` must use
/// bare (unqualified) column names; the returned residual (also bare)
/// still needs evaluating against this source's rows. `limit` caps the
/// scan only when the planner absorbed the entire clause.
fn scan_source(
    store: &dyn Store,
    table: Table,
    clause: Option<&Expr>,
    limit: Option<usize>,
    pref: RoutePreference,
) -> Result<(Vec<Row>, Option<Expr>), QueryError> {
    let tele = store.telemetry();
    Ok(match table {
        Table::ComponentRuns => {
            let plan = plan_run_scan(clause);
            let limit = if plan.residual.is_none() { limit } else { None };
            if let Some(t) = tele {
                if !plan.filter.is_all() {
                    t.incr("query.pushdown.filters_total");
                }
                if limit.is_some() {
                    t.incr("query.pushdown.limits_total");
                }
            }
            let route = choose_route(store, &plan.filter, pref)?;
            let rows = match route {
                ScanRoute::Index(idx) => {
                    match store.scan_runs_indexed(None, &plan.filter, limit, idx)? {
                        Some(records) => records.iter().map(run_row).collect(),
                        // The store declined the route (e.g. no
                        // indexes behind this trait object after all).
                        None => scan_runs_rows(store, &plan.filter, limit)?,
                    }
                }
                ScanRoute::FullScan => scan_runs_rows(store, &plan.filter, limit)?,
            };
            (rows, plan.residual)
        }
        Table::Metrics => {
            let plan = plan_metric_scan(clause);
            let limit = if plan.residual.is_none() { limit } else { None };
            if let Some(t) = tele {
                if plan.component.is_some() {
                    t.incr("query.pushdown.filters_total");
                }
                if limit.is_some() {
                    t.incr("query.pushdown.limits_total");
                }
            }
            (
                scan_metrics_rows(store, plan.component.as_deref(), limit)?,
                plan.residual,
            )
        }
        Table::Events => {
            let plan = plan_event_scan(clause);
            let limit = if plan.residual.is_none() { limit } else { None };
            if let Some(t) = tele {
                if !plan.filter.is_all() {
                    t.incr("query.pushdown.filters_total");
                }
                if limit.is_some() {
                    t.incr("query.pushdown.limits_total");
                }
            }
            (scan_events_rows(store, &plan.filter, limit)?, plan.residual)
        }
        Table::Summaries => {
            let plan = plan_summary_scan(clause);
            if let Some(t) = tele {
                if plan.component.is_some() || plan.metric.is_some() {
                    t.incr("query.pushdown.filters_total");
                }
            }
            (
                scan_summary_rows(store, plan.component.as_deref(), plan.metric.as_deref())?,
                plan.residual,
            )
        }
        Table::Diagnoses => {
            let plan = plan_diagnosis_scan(clause);
            if let Some(t) = tele {
                if plan.incident_key.is_some() || plan.suspect.is_some() {
                    t.incr("query.pushdown.filters_total");
                }
            }
            (
                scan_diagnosis_rows(store, plan.incident_key.as_deref(), plan.suspect.as_deref())?,
                plan.residual,
            )
        }
        other => (scan(store, other)?, clause.cloned()),
    })
}

/// Fold the per-source row sets left to right through the join chain.
fn execute_joins(
    query: &Query,
    scope: &Scope,
    per_source: Vec<Vec<Row>>,
    hash: bool,
) -> Result<Vec<Row>, QueryError> {
    let mut iter = per_source.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for (i, (join, right)) in query.joins.iter().zip(iter).enumerate() {
        acc = join_rows(scope, acc, right, join, i + 1, hash)?;
    }
    Ok(acc)
}

/// View an ON conjunct as an equi-join pair: `probe-expr = build-expr`
/// where one side reads only the join's right source and the other only
/// earlier sources. Returns `(left-sides expr, right-side expr)`.
fn split_equi(e: &Expr, scope: &Scope, right_src: usize) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    // true: every column in the right source; false: every column in an
    // earlier source; None: mixed, column-free, or unresolvable.
    let side = |x: &Expr| -> Option<bool> {
        let srcs = column_sources(x, scope)?;
        if srcs.is_empty() {
            None
        } else if srcs.iter().all(|&s| s == right_src) {
            Some(true)
        } else if srcs.iter().all(|&s| s < right_src) {
            Some(false)
        } else {
            None
        }
    };
    match (side(left), side(right)) {
        (Some(false), Some(true)) => Some(((**left).clone(), (**right).clone())),
        (Some(true), Some(false)) => Some(((**right).clone(), (**left).clone())),
        _ => None,
    }
}

/// Join the accumulated left rows against one right source.
///
/// The hash path buckets the smaller input by the canonical key of its
/// equi-join expressions (key equality matches the executor's `=`
/// semantics, including NULL-never-matches) and collects surviving
/// `(left, right)` index pairs; sorting those pairs reproduces the
/// nested-loop emission order exactly, so the pushed and naive paths
/// stay row-for-row equivalent. LEFT joins pad unmatched left rows with
/// NULLs for the right source's columns.
fn join_rows(
    scope: &Scope,
    left: Vec<Row>,
    right: Vec<Row>,
    join: &Join,
    right_src: usize,
    hash: bool,
) -> Result<Vec<Row>, QueryError> {
    let right_off = scope.sources[right_src].offset;
    let right_width = scope.sources[right_src].width;
    let resolve = |name: &str| scope.resolve(name);
    // Right-side equi expressions reference global offsets; shift them
    // back so they evaluate against a bare right row.
    let resolve_right =
        |name: &str| -> Result<usize, QueryError> { resolve(name).map(|g| g - right_off) };

    let mut equi: Vec<(Expr, Expr)> = Vec::new();
    let mut extra: Vec<&Expr> = Vec::new();
    if hash {
        for conjunct in join.on.conjuncts() {
            match split_equi(conjunct, scope, right_src) {
                Some(pair) => equi.push(pair),
                None => extra.push(conjunct),
            }
        }
    }

    let mut out = Vec::new();
    if hash && !equi.is_empty() {
        // Candidate pairs from the hash lookup, then the non-equi ON
        // conjuncts checked per pair.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let key_of = |exprs: &[&Expr],
                      row: &Row,
                      res: &dyn Fn(&str) -> Result<usize, QueryError>|
         -> Result<Option<String>, QueryError> {
            let mut key = String::new();
            for e in exprs {
                let v = eval(e, row, res)?;
                if v.is_null() {
                    // `=` with NULL never matches; the row joins nothing.
                    return Ok(None);
                }
                canonical_value_key(&v, &mut key);
            }
            Ok(Some(key))
        };
        let probe_exprs: Vec<&Expr> = equi.iter().map(|(l, _)| l).collect();
        let build_exprs: Vec<&Expr> = equi.iter().map(|(_, r)| r).collect();
        // Build the hash side from the smaller input (an INNER join can
        // flip; LEFT must enumerate left rows to find the unmatched).
        if join.kind == JoinKind::Inner && left.len() < right.len() {
            let mut buckets: HashMap<String, Vec<usize>> = HashMap::with_capacity(left.len());
            for (li, row) in left.iter().enumerate() {
                if let Some(key) = key_of(&probe_exprs, row, &resolve)? {
                    buckets.entry(key).or_default().push(li);
                }
            }
            for (ri, row) in right.iter().enumerate() {
                if let Some(key) = key_of(&build_exprs, row, &resolve_right)? {
                    if let Some(lis) = buckets.get(&key) {
                        pairs.extend(lis.iter().map(|&li| (li, ri)));
                    }
                }
            }
        } else {
            let mut buckets: HashMap<String, Vec<usize>> = HashMap::with_capacity(right.len());
            for (ri, row) in right.iter().enumerate() {
                if let Some(key) = key_of(&build_exprs, row, &resolve_right)? {
                    buckets.entry(key).or_default().push(ri);
                }
            }
            for (li, row) in left.iter().enumerate() {
                if let Some(key) = key_of(&probe_exprs, row, &resolve)? {
                    if let Some(ris) = buckets.get(&key) {
                        pairs.extend(ris.iter().map(|&ri| (li, ri)));
                    }
                }
            }
        }
        // Nested-loop emission order: ascending (left, right) position.
        pairs.sort_unstable();
        let mut p = 0;
        for (li, lrow) in left.iter().enumerate() {
            let mut matched = false;
            while p < pairs.len() && pairs[p].0 == li {
                let ri = pairs[p].1;
                p += 1;
                let mut cat = lrow.clone();
                cat.extend(right[ri].iter().cloned());
                let mut ok = true;
                for e in &extra {
                    if !eval(e, &cat, &resolve)?.truthy() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(cat);
                    matched = true;
                }
            }
            if join.kind == JoinKind::Left && !matched {
                let mut cat = lrow.clone();
                cat.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(cat);
            }
        }
    } else {
        // Nested loop with the full ON predicate: the reference path,
        // and the fallback when ON has no equi conjunct.
        for lrow in &left {
            let mut matched = false;
            for rrow in &right {
                let mut cat = lrow.clone();
                cat.extend(rrow.iter().cloned());
                if eval(&join.on, &cat, &resolve)?.truthy() {
                    out.push(cat);
                    matched = true;
                }
            }
            if join.kind == JoinKind::Left && !matched {
                let mut cat = lrow.clone();
                cat.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(cat);
            }
        }
    }
    Ok(out)
}

/// A grouped run query decomposed into store-side partial-aggregate
/// form: schema column indices for the group key and one [`AggInput`]
/// per collected aggregate expression.
struct PartialAggPlan {
    filter: RunFilter,
    group_cols: Vec<usize>,
    agg_inputs: Vec<AggInput>,
    agg_exprs: Vec<(AggFunc, Option<Expr>)>,
}

/// Decide whether a grouped query can run as a store-side partial
/// aggregate: a single `component_runs` source, a WHERE the run filter
/// absorbs completely, plain-column GROUP BY keys, and plain-column (or
/// `*`) aggregate arguments. Anything else falls back to the row scan.
fn plan_partial_agg(query: &Query, scope: &Scope) -> Option<PartialAggPlan> {
    let [source] = &scope.sources[..] else {
        return None;
    };
    if source.table != Table::ComponentRuns {
        return None;
    }
    let plan = plan_run_scan(query.where_clause.as_ref());
    if plan.residual.is_some() {
        return None;
    }
    let mut agg_exprs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    if let Some(h) = &query.having {
        collect_aggs(h, &mut agg_exprs);
    }
    let mut agg_inputs = Vec::with_capacity(agg_exprs.len());
    for (_, arg) in &agg_exprs {
        match arg {
            None => agg_inputs.push(AggInput::CountStar),
            Some(Expr::Column(c)) => agg_inputs.push(AggInput::Column(scope.resolve(c).ok()?)),
            Some(_) => return None,
        }
    }
    let mut group_cols = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        group_cols.push(scope.resolve(g).ok()?);
    }
    Some(PartialAggPlan {
        filter: plan.filter,
        group_cols,
        agg_inputs,
        agg_exprs,
    })
}

/// Column names plus the rows under them — the shape both the grouped
/// and plain projection stages hand back to the result assembly.
type NamedRows = (Vec<String>, Vec<Row>);

/// Run the partial-aggregate pushdown: the store folds each shard into
/// hash-grouped partial states in parallel; the executor merges them,
/// reconstructs the naive path's first-seen group order via `first_id`
/// (both scans visit runs in ascending id order), and applies HAVING and
/// the SELECT projection. Returns `None` when the store declines.
fn execute_partial_agg(
    store: &dyn Store,
    query: &Query,
    scope: &Scope,
    plan: &PartialAggPlan,
    pref: RoutePreference,
) -> Result<Option<NamedRows>, QueryError> {
    let route = match choose_route(store, &plan.filter, pref)? {
        ScanRoute::Index(r) => Some(r),
        ScanRoute::FullScan => None,
    };
    let Some(partials) =
        store.scan_runs_grouped(&plan.filter, route, &plan.group_cols, &plan.agg_inputs)?
    else {
        return Ok(None);
    };
    if let Some(t) = store.telemetry() {
        t.incr("query.pushdown.aggregates_total");
        if !plan.filter.is_all() {
            t.incr("query.pushdown.filters_total");
        }
    }
    // The store may return several partials per group (one per worker);
    // merge by the canonical key the naive path also groups on.
    let mut merged: HashMap<String, GroupPartial> = HashMap::with_capacity(partials.len());
    for p in partials {
        match merged.entry(canonical_row_key(&p.key)) {
            Entry::Occupied(mut e) => e.get_mut().merge(&p),
            Entry::Vacant(v) => {
                v.insert(p);
            }
        }
    }
    let mut groups: Vec<GroupPartial> = merged.into_values().collect();
    groups.sort_unstable_by_key(|g| g.first_id);
    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && plan.group_cols.is_empty() {
        groups.push(GroupPartial::new(Vec::new(), 0, plan.agg_inputs.len()));
    }
    project_groups(
        query,
        groups.iter().map(|g| (&g.key[..], &g.aggs[..])),
        &plan.agg_exprs,
        &|name| scope.resolve(name),
    )
    .map(Some)
}

/// Resolve the run-scan route for one query: the preference picks the
/// policy, the store's index stats feed the estimate. Stores without
/// secondary indexes always scan.
fn choose_route(
    store: &dyn Store,
    filter: &RunFilter,
    pref: RoutePreference,
) -> Result<ScanRoute, QueryError> {
    if pref == RoutePreference::ForceScan {
        return Ok(ScanRoute::FullScan);
    }
    Ok(match store.index_stats()? {
        Some(stats) if pref == RoutePreference::ForceIndex => {
            choose_run_route_forced(filter, &stats)
        }
        Some(stats) => choose_run_route(filter, &stats),
        None => ScanRoute::FullScan,
    })
}

/// `EXPLAIN <select>`: plan the statement without scanning and return the
/// decisions as `property`/`value` rows — chosen route, pushed conjuncts,
/// residual size, limit pushdown, and (for cold event reads) how many
/// sealed WAL segments the zone maps would prune.
pub fn explain_query(store: &dyn Store, query: &Query) -> Result<QueryResult, QueryError> {
    let scope = Scope::build(query)?;
    // Surface the same up-front errors a real execution would.
    validate_query(query, &scope)?;

    let grouped = !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Expr { expr, .. } if expr.has_aggregate()));
    let table_prop = std::iter::once(&query.from)
        .chain(query.joins.iter().map(|j| &j.table))
        .map(|t| t.name.to_lowercase())
        .collect::<Vec<_>>()
        .join(" join ");
    let mut props: Vec<(String, String)> = vec![("table".to_owned(), table_prop)];
    let mut push = |k: &str, v: String| props.push((k.to_owned(), v));

    // Mirrors `limit_pushable` in the executor.
    let pushed_limit = |residual: &Option<Expr>| -> Option<usize> {
        if residual.is_none() && !grouped && !query.distinct && query.order_by.is_empty() {
            query.limit
        } else {
            None
        }
    };
    let limit_prop = |l: Option<usize>| match l {
        Some(n) => format!("{n}"),
        None => "none".to_owned(),
    };

    if !query.joins.is_empty() {
        // Join plan: per-source pushed filters, then one line per join
        // with its strategy inputs. Residuals count every conjunct the
        // executor still evaluates above the scans.
        let (clauses, extra) = partition_where(query, &scope);
        let mut residual_total = extra.len();
        let mut all_hash = true;
        let mut source_props: Vec<(String, String)> = Vec::new();
        for (i, src) in scope.sources.iter().enumerate() {
            let (desc, residual) = describe_source_plan(src.table, clauses[i].as_ref());
            residual_total += residual;
            source_props.push((format!("pushed_filter_{}", src.label), desc));
        }
        let mut join_props: Vec<(String, String)> = Vec::new();
        for (i, join) in query.joins.iter().enumerate() {
            let equi = join
                .on
                .conjuncts()
                .iter()
                .filter(|c| split_equi(c, &scope, i + 1).is_some())
                .count();
            if equi == 0 {
                all_hash = false;
            }
            let kind = match join.kind {
                JoinKind::Inner => "inner",
                JoinKind::Left => "left",
            };
            let est =
                estimate_source_rows(store, scope.sources[i + 1].table, clauses[i + 1].as_ref())?;
            join_props.push((
                format!("join_{}", i + 1),
                format!(
                    "{kind} {label} equi_keys={equi} right_rows_est={est}",
                    label = scope.sources[i + 1].label
                ),
            ));
        }
        push(
            "route",
            if all_hash { "hash-join" } else { "nested-loop" }.to_owned(),
        );
        props.extend(source_props);
        props.extend(join_props);
        props.push(("residual_conjuncts".to_owned(), residual_total.to_string()));
        props.push(("pushed_limit".to_owned(), "none".to_owned()));
        return Ok(QueryResult {
            columns: vec!["property".to_owned(), "value".to_owned()],
            rows: props
                .into_iter()
                .map(|(k, v)| vec![Value::from(k), Value::from(v)])
                .collect(),
        });
    }

    let table = scope.sources[0].table;

    // Partial-aggregate pushdown: a plannable grouped run query routes
    // through the store-side fold, so EXPLAIN reports the aggregate
    // route plus a group-count estimate instead of the row-scan shape.
    if grouped {
        if let Some(pplan) = plan_partial_agg(query, &scope) {
            let route = choose_route(store, &pplan.filter, RoutePreference::Auto)?;
            push("route", format!("partial-agg({})", route.describe()));
            push("pushed_filter", describe_run_filter(&pplan.filter));
            push("groups_est", estimate_groups(store, &pplan.group_cols)?);
            push("aggregates", pplan.agg_inputs.len().to_string());
            push("residual_conjuncts", "0".to_owned());
            push("pushed_limit", "none".to_owned());
            return Ok(QueryResult {
                columns: vec!["property".to_owned(), "value".to_owned()],
                rows: props
                    .into_iter()
                    .map(|(k, v)| vec![Value::from(k), Value::from(v)])
                    .collect(),
            });
        }
    }

    match table {
        Table::ComponentRuns => {
            let plan = plan_run_scan(query.where_clause.as_ref());
            let route = choose_route(store, &plan.filter, RoutePreference::Auto)?;
            push("route", route.describe());
            push("pushed_filter", describe_run_filter(&plan.filter));
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
        }
        Table::Metrics => {
            let plan = plan_metric_scan(query.where_clause.as_ref());
            push("route", "scan".to_owned());
            push(
                "pushed_filter",
                match &plan.component {
                    Some(c) => format!("component={c}"),
                    None => "all".to_owned(),
                },
            );
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
        }
        Table::Events => {
            let plan = plan_event_scan(query.where_clause.as_ref());
            let route = if plan.filter.kind.is_some() && store.index_stats()?.is_some() {
                "index(event_kind)".to_owned()
            } else {
                "scan".to_owned()
            };
            push("route", route);
            push("pushed_filter", describe_event_filter(&plan.filter));
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
            if let Some((pruned, total)) = store.prunable_segments(&plan.filter)? {
                push("prunable_segments", format!("{pruned} of {total}"));
            }
        }
        Table::Summaries => {
            let plan = plan_summary_scan(query.where_clause.as_ref());
            push("route", "monitor-plane".to_owned());
            let mut parts = Vec::new();
            if let Some(c) = &plan.component {
                parts.push(format!("component={c}"));
            }
            if let Some(m) = &plan.metric {
                parts.push(format!("metric={m}"));
            }
            push(
                "pushed_filter",
                if parts.is_empty() {
                    "all".to_owned()
                } else {
                    parts.join(", ")
                },
            );
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", "none".to_owned());
        }
        Table::Diagnoses => {
            let plan = plan_diagnosis_scan(query.where_clause.as_ref());
            push("route", "diagnosis-store".to_owned());
            let mut parts = Vec::new();
            if let Some(k) = &plan.incident_key {
                parts.push(format!("incident_key={k}"));
            }
            if let Some(s) = &plan.suspect {
                parts.push(format!("suspect={s}"));
            }
            push(
                "pushed_filter",
                if parts.is_empty() {
                    "all".to_owned()
                } else {
                    parts.join(", ")
                },
            );
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", "none".to_owned());
        }
        _ => {
            push("route", "scan".to_owned());
            push("pushed_filter", "none".to_owned());
            push(
                "residual_conjuncts",
                conjunct_count(query.where_clause.as_ref()).to_string(),
            );
            push("pushed_limit", "none".to_owned());
        }
    }

    Ok(QueryResult {
        columns: vec!["property".to_owned(), "value".to_owned()],
        rows: props
            .into_iter()
            .map(|(k, v)| vec![Value::from(k), Value::from(v)])
            .collect(),
    })
}

/// Per-source EXPLAIN line for a join plan: the pushed-down filter
/// description plus the conjuncts the planner left as a local residual.
fn describe_source_plan(table: Table, clause: Option<&Expr>) -> (String, usize) {
    match table {
        Table::ComponentRuns => {
            let plan = plan_run_scan(clause);
            (
                describe_run_filter(&plan.filter),
                conjunct_count(plan.residual.as_ref()),
            )
        }
        Table::Metrics => {
            let plan = plan_metric_scan(clause);
            let desc = match &plan.component {
                Some(c) => format!("component={c}"),
                None => "all".to_owned(),
            };
            (desc, conjunct_count(plan.residual.as_ref()))
        }
        Table::Events => {
            let plan = plan_event_scan(clause);
            (
                describe_event_filter(&plan.filter),
                conjunct_count(plan.residual.as_ref()),
            )
        }
        Table::Summaries => {
            let plan = plan_summary_scan(clause);
            let mut parts = Vec::new();
            if let Some(c) = &plan.component {
                parts.push(format!("component={c}"));
            }
            if let Some(m) = &plan.metric {
                parts.push(format!("metric={m}"));
            }
            let desc = if parts.is_empty() {
                "all".to_owned()
            } else {
                parts.join(", ")
            };
            (desc, conjunct_count(plan.residual.as_ref()))
        }
        Table::Diagnoses => {
            let plan = plan_diagnosis_scan(clause);
            let mut parts = Vec::new();
            if let Some(k) = &plan.incident_key {
                parts.push(format!("incident_key={k}"));
            }
            if let Some(s) = &plan.suspect {
                parts.push(format!("suspect={s}"));
            }
            let desc = if parts.is_empty() {
                "all".to_owned()
            } else {
                parts.join(", ")
            };
            (desc, conjunct_count(plan.residual.as_ref()))
        }
        _ => ("none".to_owned(), conjunct_count(clause)),
    }
}

/// Row-count estimate for one join source after its pushed filter, used
/// to pick (and report) the hash-join build side. Runs reuse the index
/// selectivity estimates; other tables fall back to their total counts.
fn estimate_source_rows(
    store: &dyn Store,
    table: Table,
    clause: Option<&Expr>,
) -> Result<String, QueryError> {
    let stats = store.stats()?;
    Ok(match table {
        Table::ComponentRuns => {
            let plan = plan_run_scan(clause);
            match store.index_stats()? {
                Some(idx) => match choose_run_route_forced(&plan.filter, &idx) {
                    ScanRoute::Index(route) => {
                        estimate_candidates(route, &plan.filter, &idx).to_string()
                    }
                    ScanRoute::FullScan => idx.runs.to_string(),
                },
                None => stats.runs.to_string(),
            }
        }
        Table::Metrics => stats.metric_points.to_string(),
        Table::Events => stats.events.to_string(),
        Table::Incidents => stats.incidents.to_string(),
        Table::Components => stats.components.to_string(),
        Table::IoPointers => stats.io_pointers.to_string(),
        Table::Rollups => stats.summaries.to_string(),
        Table::Summaries => "unknown".to_owned(),
        Table::Diagnoses => stats.diagnoses.to_string(),
    })
}

/// Group-count estimate for the partial-aggregate route, from the live
/// index cardinalities when the key is one the store tracks.
fn estimate_groups(store: &dyn Store, group_cols: &[usize]) -> Result<String, QueryError> {
    if group_cols.is_empty() {
        return Ok("1".to_owned());
    }
    let Some(stats) = store.index_stats()? else {
        return Ok("unknown".to_owned());
    };
    let component = column_index(Table::ComponentRuns, "component").expect("schema column");
    let status = column_index(Table::ComponentRuns, "status").expect("schema column");
    match group_cols {
        [c] if *c == component => Ok(stats.distinct_components.to_string()),
        [c] if *c == status => Ok(stats.distinct_statuses.to_string()),
        _ => Ok("unknown".to_owned()),
    }
}

/// Count the top-level AND conjuncts of a residual WHERE expression.
fn conjunct_count(e: Option<&Expr>) -> usize {
    fn walk(e: &Expr) -> usize {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => walk(left) + walk(right),
            _ => 1,
        }
    }
    e.map_or(0, walk)
}

/// Human-readable rendering of the pushed-down run filter bounds.
fn describe_run_filter(f: &RunFilter) -> String {
    if f.is_all() {
        return "all".to_owned();
    }
    let mut parts = Vec::new();
    if let Some(c) = &f.component {
        parts.push(format!("component={c}"));
    }
    if let Some(s) = &f.status {
        parts.push(format!("status={}", s.name()));
    }
    bound(&mut parts, "id", f.min_id, f.max_id);
    bound(&mut parts, "start_ms", f.min_start_ms, f.max_start_ms);
    bound(&mut parts, "end_ms", f.min_end_ms, f.max_end_ms);
    parts.join(", ")
}

/// Human-readable rendering of the pushed-down event filter bounds.
fn describe_event_filter(f: &EventFilter) -> String {
    if f.is_all() {
        return "all".to_owned();
    }
    let mut parts = Vec::new();
    if let Some(k) = &f.kind {
        parts.push(format!("kind={}", k.name()));
    }
    if let Some(s) = &f.severity {
        parts.push(format!("severity={}", s.name()));
    }
    if let Some(c) = &f.component {
        parts.push(format!("component={c}"));
    }
    if let Some(r) = &f.run_id {
        parts.push(format!("run_id={r}"));
    }
    bound(&mut parts, "id", f.min_id, f.max_id);
    bound(&mut parts, "ts_ms", f.min_ts_ms, f.max_ts_ms);
    parts.join(", ")
}

fn bound(parts: &mut Vec<String>, name: &str, lo: Option<u64>, hi: Option<u64>) {
    match (lo, hi) {
        (Some(l), Some(h)) => parts.push(format!("{name} in [{l}, {h}]")),
        (Some(l), None) => parts.push(format!("{name} >= {l}")),
        (None, Some(h)) => parts.push(format!("{name} <= {h}")),
        (None, None) => {}
    }
}

/// Keep the `k` smallest rows under `cmp`, in sorted order, equivalent to
/// a full stable sort followed by `truncate(k)` but with memory and sort
/// work bounded by `O(k)` instead of the input size.
///
/// Rows are tagged with their input position and compared by
/// `(cmp, position)` — a total order whose prefix of length `k` is exactly
/// what the stable sort would keep, so pruning the buffer to `k` whenever
/// it reaches `2k` never discards a final survivor.
fn top_k<F: Fn(&Row, &Row) -> Ordering>(rows: &mut Vec<Row>, k: usize, cmp: F) {
    if k == 0 {
        rows.clear();
        return;
    }
    let full = |buf: &mut Vec<(usize, Row)>| {
        buf.sort_by(|a, b| cmp(&a.1, &b.1).then(a.0.cmp(&b.0)));
        buf.truncate(k);
    };
    let mut buf: Vec<(usize, Row)> = Vec::with_capacity(k.saturating_mul(2).min(rows.len()));
    for (i, row) in rows.drain(..).enumerate() {
        buf.push((i, row));
        if buf.len() >= k.saturating_mul(2) {
            full(&mut buf);
        }
    }
    full(&mut buf);
    rows.extend(buf.into_iter().map(|(_, r)| r));
}

enum SortKey {
    /// Index into the projected output row.
    Output(usize),
}

fn sort_key(
    e: &Expr,
    columns: &[String],
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<SortKey, QueryError> {
    // Match by alias / default name of a projected column.
    let name = e.default_name();
    if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(&name)) {
        return Ok(SortKey::Output(i));
    }
    // Match a projected expression structurally.
    for (i, item) in query.select.iter().enumerate() {
        if let SelectItem::Expr { expr, .. } = item {
            if expr == e {
                return Ok(SortKey::Output(i));
            }
        }
    }
    // Plain-table queries: any column is available if SELECT * was used.
    if query.select == vec![SelectItem::Wildcard] {
        if let Expr::Column(c) = e {
            let i = resolve(c)?;
            return Ok(SortKey::Output(i));
        }
    }
    Err(QueryError::Semantic(format!(
        "ORDER BY expression '{name}' is not in the select list"
    )))
}

fn validate_columns(
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(), QueryError> {
    fn walk(
        e: &Expr,
        resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
    ) -> Result<(), QueryError> {
        match e {
            Expr::Column(c) => resolve(c).map(|_| ()),
            Expr::Literal(_) => Ok(()),
            Expr::Placeholder(i) => Err(QueryError::Semantic(format!(
                "unbound placeholder ?{} — bind parameters via PREPARE/EXEC",
                i + 1
            ))),
            Expr::Binary { left, right, .. } => {
                walk(left, resolve)?;
                walk(right, resolve)
            }
            Expr::Not(x) | Expr::Neg(x) => walk(x, resolve),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => walk(expr, resolve),
            Expr::In { expr, list, .. } => {
                walk(expr, resolve)?;
                list.iter().try_for_each(|x| walk(x, resolve))
            }
            Expr::Agg { arg, .. } => arg.as_deref().map_or(Ok(()), |a| walk(a, resolve)),
            Expr::Scalar { args, .. } => args.iter().try_for_each(|a| walk(a, resolve)),
            Expr::Between { expr, lo, hi, .. } => {
                walk(expr, resolve)?;
                walk(lo, resolve)?;
                walk(hi, resolve)
            }
        }
    }
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, resolve)?;
        }
    }
    if let Some(w) = &query.where_clause {
        walk(w, resolve)?;
    }
    for join in &query.joins {
        walk(&join.on, resolve)?;
    }
    if let Some(h) = &query.having {
        walk(h, resolve)?;
    }
    for g in &query.group_by {
        resolve(g)?;
    }
    Ok(())
}

fn project_plain(
    query: &Query,
    rows: Vec<Row>,
    scope: &Scope,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(Vec<String>, Vec<Row>), QueryError> {
    if query.select == vec![SelectItem::Wildcard] {
        return Ok((scope.wildcard_columns(), rows));
    }
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                return Err(QueryError::Semantic(
                    "mixed wildcard and expressions unsupported".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                exprs.push(expr);
            }
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut projected = Vec::with_capacity(exprs.len());
        for e in &exprs {
            projected.push(eval(e, row, resolve)?);
        }
        out.push(projected);
    }
    Ok((columns, out))
}

/// Finish one aggregate from its partial state. Both the in-executor
/// fold and the store-side partial path end here, with states built
/// from the same [`AggPartial`] arithmetic (exact superaccumulator
/// sums), so the two paths produce bitwise-identical floats.
fn finish_agg(state: &AggPartial, func: AggFunc) -> Value {
    match func {
        AggFunc::Count => Value::from(state.count),
        AggFunc::Sum => Value::Float(state.sum.value()),
        AggFunc::Avg => {
            if state.count == 0 {
                Value::Null
            } else {
                Value::Float(state.sum.value() / state.count as f64)
            }
        }
        AggFunc::Min => state.min.clone().unwrap_or(Value::Null),
        AggFunc::Max => state.max.clone().unwrap_or(Value::Null),
    }
}

fn aggregate(
    query: &Query,
    rows: Vec<Row>,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(Vec<String>, Vec<Row>), QueryError> {
    // Collect every aggregate expression appearing in SELECT or HAVING.
    let mut agg_exprs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    if let Some(h) = &query.having {
        collect_aggs(h, &mut agg_exprs);
    }

    let group_idx: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| resolve(g))
        .collect::<Result<_, _>>()?;

    // Group rows by the canonical key of their GROUP BY values — the
    // same keying the store-side partial fold uses, so both paths build
    // identical groups.
    let mut groups: HashMap<String, (Row, Vec<AggPartial>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for row in &rows {
        let key_vals: Row = group_idx.iter().map(|&i| row[i].clone()).collect();
        let key = canonical_row_key(&key_vals);
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (key_vals, vec![AggPartial::new(); agg_exprs.len()])
        });
        for (state, (_, arg)) in entry.1.iter_mut().zip(agg_exprs.iter()) {
            match arg {
                Some(e) => state.observe(&eval(e, row, resolve)?),
                None => state.observe_count_star(),
            }
        }
    }
    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && group_idx.is_empty() {
        order.push(String::new());
        groups.insert(
            String::new(),
            (Vec::new(), vec![AggPartial::new(); agg_exprs.len()]),
        );
    }

    project_groups(
        query,
        order.iter().map(|k| {
            let (key_vals, states) = &groups[k];
            (&key_vals[..], &states[..])
        }),
        &agg_exprs,
        resolve,
    )
}

/// Project grouped states into output rows: validate the SELECT shape,
/// apply HAVING, evaluate the projection. Shared by the in-executor fold
/// and the store-side partial-aggregate path — a single projection
/// implementation is what keeps the two paths result-identical.
fn project_groups<'a>(
    query: &Query,
    groups: impl Iterator<Item = (&'a [Value], &'a [AggPartial])>,
    agg_exprs: &[(AggFunc, Option<Expr>)],
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(Vec<String>, Vec<Row>), QueryError> {
    let mut columns = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                return Err(QueryError::Semantic("SELECT * with GROUP BY".into()))
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                // Bare (non-aggregate, non-group) columns are invalid.
                if !expr.has_aggregate() {
                    if let Expr::Column(c) = expr {
                        if group_position(query, c, resolve).is_none() {
                            return Err(QueryError::Semantic(format!(
                                "column {c} is neither aggregated nor grouped"
                            )));
                        }
                    }
                }
            }
        }
    }

    let mut out_rows = Vec::new();
    for (key_vals, states) in groups {
        // HAVING
        if let Some(h) = &query.having {
            let v = eval_agg(h, key_vals, states, agg_exprs, query, resolve)?;
            if !v.truthy() {
                continue;
            }
        }
        let mut row = Vec::with_capacity(query.select.len());
        for item in &query.select {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?);
            }
        }
        out_rows.push(row);
    }
    Ok((columns, out_rows))
}

/// Position of column `c` among the GROUP BY keys, matching by resolved
/// index so qualified and bare spellings of the same column agree.
fn group_position(
    query: &Query,
    c: &str,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Option<usize> {
    let target = resolve(c).ok()?;
    query
        .group_by
        .iter()
        .position(|g| resolve(g).ok() == Some(target))
}

fn collect_aggs(e: &Expr, out: &mut Vec<(AggFunc, Option<Expr>)>) {
    match e {
        Expr::Agg { func, arg } => {
            let key = (*func, arg.as_deref().cloned());
            if !out.iter().any(|(f, a)| *f == key.0 && *a == key.1) {
                out.push(key);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Not(x) | Expr::Neg(x) => collect_aggs(x, out),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::In { expr, list, .. } => {
            collect_aggs(expr, out);
            for x in list {
                collect_aggs(x, out);
            }
        }
        Expr::Scalar { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Placeholder(_) => {}
    }
}

/// Evaluate an expression in aggregate context: aggregates read their
/// group state; bare grouped columns read the group key.
fn eval_agg(
    e: &Expr,
    key_vals: &[Value],
    states: &[AggPartial],
    agg_exprs: &[(AggFunc, Option<Expr>)],
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<Value, QueryError> {
    match e {
        Expr::Agg { func, arg } => {
            let idx = agg_exprs
                .iter()
                .position(|(f, a)| f == func && a.as_ref() == arg.as_deref())
                .expect("aggregate was collected");
            Ok(finish_agg(&states[idx], *func))
        }
        Expr::Column(c) => {
            let pos = group_position(query, c, resolve).ok_or_else(|| {
                QueryError::Semantic(format!("column {c} is neither aggregated nor grouped"))
            })?;
            Ok(key_vals[pos].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval_agg(left, key_vals, states, agg_exprs, query, resolve)?;
            let r = eval_agg(right, key_vals, states, agg_exprs, query, resolve)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Not(x) => Ok(Value::Bool(
            !eval_agg(x, key_vals, states, agg_exprs, query, resolve)?.truthy(),
        )),
        Expr::Neg(x) => {
            let v = eval_agg(x, key_vals, states, agg_exprs, query, resolve)?;
            Ok(v.as_f64().map(|f| Value::Float(-f)).unwrap_or(Value::Null))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            Ok(Value::Bool(like_match(&v, pattern) != *negated))
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            let mut found = false;
            for item in list {
                let w = eval_agg(item, key_vals, states, agg_exprs, query, resolve)?;
                if v.loose_eq(&w) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Scalar { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_agg(a, key_vals, states, agg_exprs, query, resolve))
                .collect::<Result<_, _>>()?;
            Ok(apply_scalar(*func, &vals))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            let l = eval_agg(lo, key_vals, states, agg_exprs, query, resolve)?;
            let h = eval_agg(hi, key_vals, states, agg_exprs, query, resolve)?;
            Ok(eval_between(&v, &l, &h, *negated))
        }
        Expr::Placeholder(i) => Err(QueryError::Semantic(format!(
            "unbound placeholder ?{}",
            i + 1
        ))),
    }
}

/// Evaluate an expression against one table row.
fn eval(
    e: &Expr,
    row: &Row,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<Value, QueryError> {
    match e {
        Expr::Column(c) => Ok(row[resolve(c)?].clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval(left, row, resolve)?;
            let r = eval(right, row, resolve)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Not(x) => Ok(Value::Bool(!eval(x, row, resolve)?.truthy())),
        Expr::Neg(x) => {
            let v = eval(x, row, resolve)?;
            Ok(v.as_f64().map(|f| Value::Float(-f)).unwrap_or(Value::Null))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            Ok(Value::Bool(like_match(&v, pattern) != *negated))
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            let mut found = false;
            for item in list {
                if v.loose_eq(&eval(item, row, resolve)?) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Agg { .. } => Err(QueryError::Semantic(
            "aggregate outside aggregation context".into(),
        )),
        Expr::Scalar { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, resolve))
                .collect::<Result<_, _>>()?;
            Ok(apply_scalar(*func, &vals))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            let l = eval(lo, row, resolve)?;
            let h = eval(hi, row, resolve)?;
            Ok(eval_between(&v, &l, &h, *negated))
        }
        Expr::Placeholder(i) => Err(QueryError::Semantic(format!(
            "unbound placeholder ?{}",
            i + 1
        ))),
    }
}

/// `v BETWEEN l AND h` with SQL null semantics (null operand → false).
fn eval_between(v: &Value, l: &Value, h: &Value, negated: bool) -> Value {
    if v.is_null() || l.is_null() || h.is_null() {
        return Value::Bool(false);
    }
    let inside = v.total_cmp(l) != Ordering::Less && v.total_cmp(h) != Ordering::Greater;
    Value::Bool(inside != negated)
}

/// Apply a scalar function with loose SQL semantics (null in → null out,
/// except COALESCE).
fn apply_scalar(func: ScalarFunc, args: &[Value]) -> Value {
    match func {
        ScalarFunc::Coalesce => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        ScalarFunc::Abs => match args.first() {
            Some(Value::Int(i)) => Value::Int(i.saturating_abs()),
            Some(v) => v
                .as_f64()
                .map(|f| Value::Float(f.abs()))
                .unwrap_or(Value::Null),
            None => Value::Null,
        },
        ScalarFunc::Round => match args.first().and_then(Value::as_f64) {
            Some(f) if f.is_finite() => Value::Int(f.round() as i64),
            _ => Value::Null,
        },
        ScalarFunc::Length => match args.first() {
            Some(Value::Str(s)) => Value::from(s.chars().count()),
            Some(Value::List(l)) => Value::from(l.len()),
            _ => Value::Null,
        },
        ScalarFunc::Lower => match args.first() {
            Some(Value::Str(s)) => Value::from(s.to_lowercase()),
            _ => Value::Null,
        },
        ScalarFunc::Upper => match args.first() {
            Some(Value::Str(s)) => Value::from(s.to_uppercase()),
            _ => Value::Null,
        },
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    use BinOp::*;
    match op {
        And => Value::Bool(l.truthy() && r.truthy()),
        Or => Value::Bool(l.truthy() || r.truthy()),
        Eq | Ne | Lt | Le | Gt | Ge => {
            // SQL-ish null semantics: comparisons with NULL are false.
            if l.is_null() || r.is_null() {
                return Value::Bool(false);
            }
            let c = l.total_cmp(r);
            let b = match op {
                Eq => c == Ordering::Equal,
                Ne => c != Ordering::Equal,
                Lt => c == Ordering::Less,
                Le => c != Ordering::Greater,
                Gt => c == Ordering::Greater,
                Ge => c != Ordering::Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        Add | Sub | Mul | Div | Mod => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                let x = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                    _ => unreachable!(),
                };
                // Keep integer results integral when both sides were ints.
                match (l, r) {
                    (Value::Int(_), Value::Int(_))
                        if x.fract() == 0.0 && x.is_finite() && !matches!(op, Div) =>
                    {
                        Value::Int(x as i64)
                    }
                    _ => Value::Float(x),
                }
            }
            _ => Value::Null,
        },
    }
}

/// SQL LIKE with `%` (any run) and `_` (single char), case-sensitive.
fn like_match(v: &Value, pattern: &str) -> bool {
    let Value::Str(s) = v else { return false };
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(b'%'), _) => rec(s, &p[1..]) || (!s.is_empty() && rec(&s[1..], p)),
            (Some(b'_'), Some(_)) => rec(&s[1..], &p[1..]),
            (Some(&c), Some(&d)) if c == d => rec(&s[1..], &p[1..]),
            _ => false,
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{
        ComponentRecord, ComponentRunRecord, DiagnosisRecord, EventKind, EventSeverity,
        IncidentRecord, IncidentState, MemoryStore, MetricRecord, ObservabilityEvent, RunId,
        RunStatus,
    };

    #[test]
    fn queries_record_store_telemetry() {
        let s = seeded();
        execute(&s, "SELECT name FROM components").unwrap();
        assert!(execute(&s, "SELECT nonsense FROM").is_err());
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.statements_total"], 2);
        assert_eq!(
            snap.histograms["query.parse"].count, 2,
            "failed parse timed too"
        );
        assert_eq!(snap.histograms["query.exec"].count, 1);
    }

    fn seeded() -> MemoryStore {
        let s = MemoryStore::new();
        for (name, owner) in [("etl", "data-eng"), ("train", "ml"), ("infer", "ml")] {
            let mut c = ComponentRecord::named(name);
            c.owner = owner.into();
            s.register_component(c).unwrap();
        }
        for (component, start, dur, status) in [
            ("etl", 100u64, 50u64, RunStatus::Success),
            ("etl", 200, 60, RunStatus::Success),
            ("train", 300, 500, RunStatus::Failed),
            ("infer", 400, 5, RunStatus::Success),
            ("infer", 500, 7, RunStatus::TriggerFailed),
            ("infer", 600, 6, RunStatus::Success),
        ] {
            s.log_run(ComponentRunRecord {
                component: component.into(),
                start_ms: start,
                end_ms: start + dur,
                outputs: vec![format!("out-{start}")],
                status,
                ..Default::default()
            })
            .unwrap();
        }
        for (ts, v) in [(1u64, 0.9), (2, 0.85), (3, 0.6)] {
            s.log_metric(MetricRecord {
                component: "infer".into(),
                run_id: None,
                name: "accuracy".into(),
                value: v,
                ts_ms: ts,
            })
            .unwrap();
        }
        s.log_events(vec![
            ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, 100)
                .component("etl")
                .run(RunId(1)),
            ObservabilityEvent::new(EventKind::RunFinished, EventSeverity::Info, 150)
                .component("etl")
                .run(RunId(1)),
            ObservabilityEvent::new(EventKind::StalenessFlagged, EventSeverity::Warn, 250)
                .component("train")
                .detail("no fresh run in 2h"),
            ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 400)
                .component("infer")
                .run(RunId(4))
                .detail("accuracy below floor"),
            ObservabilityEvent::new(EventKind::AlertSuppressed, EventSeverity::Info, 450)
                .component("infer")
                .run(RunId(4)),
            ObservabilityEvent::new(EventKind::RunFailed, EventSeverity::Warn, 800)
                .component("train")
                .run(RunId(3))
                .detail("boom"),
        ])
        .unwrap();
        s.upsert_incident(IncidentRecord {
            key: "infer/accuracy".into(),
            state: IncidentState::Open,
            severity: EventSeverity::Page,
            subject: "infer".into(),
            opened_ms: 400,
            last_fire_ms: 400,
            resolved_ms: None,
            fire_count: 1,
            suppressed_count: 1,
            burn_ms: 0,
            detail: "accuracy below floor".into(),
        })
        .unwrap();
        s.put_diagnosis(
            "infer/accuracy",
            vec![
                DiagnosisRecord {
                    incident_key: "infer/accuracy".into(),
                    rank: 1,
                    suspect: "train".into(),
                    evidence_kind: "run_failed".into(),
                    score: 2.7,
                    onset_ms: 800,
                    distance: 1,
                    detail: "latest run failed".into(),
                },
                DiagnosisRecord {
                    incident_key: "infer/accuracy".into(),
                    rank: 2,
                    suspect: "etl".into(),
                    evidence_kind: "drift_score".into(),
                    score: 0.4,
                    onset_ms: 250,
                    distance: 2,
                    detail: String::new(),
                },
            ],
        )
        .unwrap();
        s
    }

    #[test]
    fn select_star_with_filter_and_order() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT * FROM component_runs WHERE component = 'infer' ORDER BY start_ms DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        let start_idx = r.columns.iter().position(|c| c == "start_ms").unwrap();
        assert_eq!(r.rows[0][start_idx], Value::Int(600));
        assert_eq!(r.rows[1][start_idx], Value::Int(500));
    }

    #[test]
    fn projection_with_alias_and_arithmetic() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, duration_ms / 2 AS half FROM component_runs WHERE duration_ms > 100",
        )
        .unwrap();
        assert_eq!(r.columns, vec!["component", "half"]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("train"));
        assert_eq!(r.rows[0][1], Value::Float(250.0));
    }

    #[test]
    fn group_by_with_having_and_order() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, count(*) AS runs, avg(duration_ms) AS avg_dur \
             FROM component_runs GROUP BY component HAVING count(*) >= 2 \
             ORDER BY runs DESC",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("infer"));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[1][0], Value::from("etl"));
        let avg: f64 = r.rows[1][2].as_f64().unwrap();
        assert!((avg - 55.0).abs() < 1e-9);
    }

    #[test]
    fn global_aggregates() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT count(*), min(value), max(value), avg(value) FROM metrics",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][1], Value::Float(0.6));
        assert_eq!(r.rows[0][2], Value::Float(0.9));
        let avg = r.rows[0][3].as_f64().unwrap();
        assert!((avg - 0.7833333).abs() < 1e-5);
    }

    #[test]
    fn global_aggregate_on_empty_scan() {
        let s = MemoryStore::new();
        let r = execute(&s, "SELECT count(*) FROM metrics").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn like_and_in() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT name FROM components WHERE name LIKE 'e%' OR name IN ('train')",
        )
        .unwrap();
        let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["etl", "train"]);
        let r = execute(&s, "SELECT name FROM components WHERE name NOT LIKE '%n%'").unwrap();
        assert_eq!(r.rows.len(), 1); // etl
    }

    #[test]
    fn is_null_semantics() {
        let s = seeded();
        // metrics.run_id is NULL for externally-fed series.
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id IS NULL").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id IS NOT NULL").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        // Comparisons with NULL are false, not errors.
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id = 1").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn errors() {
        let s = seeded();
        assert!(matches!(
            execute(&s, "SELECT * FROM nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT bogus FROM components"),
            Err(QueryError::UnknownColumn(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT owner FROM components GROUP BY name"),
            Err(QueryError::Semantic(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT * FROM components WHERE count(*) > 1"),
            Err(QueryError::Semantic(_))
        ));
        assert!(execute(&s, "SELEC * FROM components").is_err());
    }

    #[test]
    fn render_table() {
        let s = seeded();
        let r = execute(&s, "SELECT name, owner FROM components ORDER BY name").unwrap();
        let text = r.render();
        assert!(text.contains("name"));
        assert!(text.contains("data-eng"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 3, "header + separator + rows");
    }

    #[test]
    fn like_match_wildcards() {
        assert!(like_match(&Value::from("pred-17"), "pred-%"));
        assert!(like_match(&Value::from("abc"), "a_c"));
        assert!(!like_match(&Value::from("abc"), "a_"));
        assert!(like_match(&Value::from(""), "%"));
        assert!(!like_match(&Value::Int(5), "5"));
        assert!(like_match(&Value::from("x%y"), "x%y"));
    }

    #[test]
    fn distinct_deduplicates() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT DISTINCT component FROM component_runs ORDER BY component",
        )
        .unwrap();
        let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(names, vec!["etl", "infer", "train"]);
        // Without DISTINCT there are 6 rows.
        let r = execute(&s, "SELECT component FROM component_runs").unwrap();
        assert_eq!(r.rows.len(), 6);
    }

    #[test]
    fn between_inclusive_and_negated() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms BETWEEN 200 AND 400",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3), "200, 300, 400 inclusive");
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms NOT BETWEEN 200 AND 400",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        // BETWEEN composes with AND.
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms BETWEEN 100 AND 600 AND component = 'infer'",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn scalar_functions() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT upper(name) AS u, length(name) AS l, abs(0 - 3) AS a, \
             round(2.6) AS r, coalesce(NULL, name, 'x') AS c \
             FROM components WHERE name = 'etl'",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::from("ETL"));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[0][2], Value::Int(3));
        assert_eq!(r.rows[0][3], Value::Int(3));
        assert_eq!(r.rows[0][4], Value::from("etl"));
    }

    #[test]
    fn scalar_null_semantics() {
        let s = seeded();
        // run_id is NULL for these metric points: abs(NULL) → NULL.
        let r = execute(&s, "SELECT count(abs(run_id)) FROM metrics").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0), "nulls excluded from count");
        let r = execute(&s, "SELECT count(coalesce(run_id, 0)) FROM metrics").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn scalar_inside_aggregate_group() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, max(abs(duration_ms)) AS m FROM component_runs \
             GROUP BY component ORDER BY m DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::from("train"));
    }

    #[test]
    fn pushdown_matches_naive_on_seeded() {
        let s = seeded();
        for sql in [
            "SELECT * FROM component_runs WHERE component = 'infer'",
            "SELECT * FROM runs WHERE status = 'success' AND start_ms >= 200",
            "SELECT * FROM runs WHERE 300 <= start_ms AND duration_ms > 4",
            "SELECT * FROM runs WHERE start_ms BETWEEN 200 AND 500 LIMIT 2",
            "SELECT component FROM runs WHERE component = 'etl' AND component = 'train'",
            "SELECT * FROM runs WHERE id < 0",
            "SELECT * FROM runs LIMIT 3",
            "SELECT * FROM runs WHERE status = 'Success'",
            "SELECT count(*) FROM runs WHERE component = 'infer'",
            "SELECT DISTINCT component FROM runs WHERE start_ms >= 200 ORDER BY component",
            "SELECT * FROM runs ORDER BY duration_ms DESC LIMIT 2",
            "SELECT * FROM metrics WHERE component = 'infer' AND value > 0.7",
            "SELECT * FROM metrics WHERE component = 'ghost'",
            "SELECT name, value FROM metrics WHERE component = 'infer' LIMIT 2",
            "SELECT * FROM events WHERE kind = 'alert_fired'",
            "SELECT * FROM events WHERE severity = 'warn' AND component = 'train'",
            "SELECT * FROM events WHERE run_id = 4",
            "SELECT * FROM events WHERE ts_ms BETWEEN 100 AND 450 LIMIT 2",
            "SELECT * FROM events WHERE kind = 'AlertFired'",
            "SELECT * FROM journal WHERE id >= 2 AND id < 5",
            "SELECT kind, count(*) AS n FROM events GROUP BY kind ORDER BY kind",
            "SELECT * FROM events ORDER BY ts_ms DESC LIMIT 3",
            "SELECT * FROM events WHERE kind = 'run_failed' AND detail = 'boom'",
            "SELECT key, state, fire_count FROM incidents WHERE state = 'open'",
        ] {
            let q = parse(sql).unwrap();
            let fast = execute_query(&s, &q).unwrap();
            let slow = execute_query_unoptimized(&s, &q).unwrap();
            assert_eq!(fast, slow, "{sql}");
        }
    }

    #[test]
    fn pushdown_records_planner_and_scan_counters() {
        let s = seeded();
        execute(
            &s,
            "SELECT * FROM component_runs WHERE component = 'infer' LIMIT 2",
        )
        .unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.pushdown.filters_total"], 1);
        assert_eq!(snap.counters["query.pushdown.limits_total"], 1);
        assert_eq!(snap.counters["query.rows_scanned"], 6, "all runs examined");
        assert_eq!(
            snap.counters["query.rows_returned"], 2,
            "limit bounds clones"
        );
        assert!(!snap.counters.contains_key("query.topk_total"));

        execute(&s, "SELECT * FROM runs ORDER BY duration_ms DESC LIMIT 1").unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.topk_total"], 1);
        // ORDER BY forbids limit pushdown.
        assert_eq!(snap.counters["query.pushdown.limits_total"], 1);
    }

    #[test]
    fn top_k_equals_stable_sort_truncate() {
        let rows: Vec<Row> = (0i64..100)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i)])
            .collect();
        let cmp = |a: &Row, b: &Row| a[0].total_cmp(&b[0]);
        for k in [0, 1, 5, 7, 50, 99, 100, 150] {
            let mut fast = rows.clone();
            top_k(&mut fast, k, cmp);
            let mut slow = rows.clone();
            slow.sort_by(cmp);
            slow.truncate(k);
            assert_eq!(fast, slow, "k = {k}");
        }
    }

    #[test]
    fn canonical_key_agrees_with_loose_eq() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(1.0),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::Float(-(2f64.powi(63))),
            Value::from("1"),
            Value::from(""),
            Value::List(vec![Value::Int(1)]),
            Value::List(vec![Value::Float(1.0)]),
        ];
        for a in &vals {
            for b in &vals {
                let key = |v: &Value| {
                    let mut s = String::new();
                    canonical_value_key(v, &mut s);
                    s
                };
                assert_eq!(
                    key(a) == key(b),
                    a.loose_eq(b),
                    "key/loose_eq disagree on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn order_by_requires_projected_or_wildcard() {
        let s = seeded();
        assert!(matches!(
            execute(&s, "SELECT name FROM components ORDER BY owner"),
            Err(QueryError::Semantic(_))
        ));
        // But works with wildcard.
        assert!(execute(&s, "SELECT * FROM components ORDER BY owner").is_ok());
    }

    #[test]
    fn strip_explain_peels_only_the_keyword() {
        assert_eq!(strip_explain("EXPLAIN SELECT 1"), Some(" SELECT 1"));
        assert_eq!(strip_explain("  explain\tSELECT 1"), Some("\tSELECT 1"));
        assert!(strip_explain("SELECT 1").is_none());
        // The keyword must be a whole word, not a prefix.
        assert!(strip_explain("EXPLAINSELECT 1").is_none());
        assert!(strip_explain("EXPLAIN").is_none());
        // Multi-byte text must not panic the boundary probe.
        assert!(strip_explain("日本語のテキストです").is_none());
    }

    /// Property → value map of one EXPLAIN result.
    fn explain_map(r: &QueryResult) -> std::collections::BTreeMap<String, String> {
        assert_eq!(r.columns, vec!["property", "value"]);
        r.rows
            .iter()
            .map(|row| {
                let (Value::Str(k), Value::Str(v)) = (&row[0], &row[1]) else {
                    panic!("non-string explain row: {row:?}");
                };
                (k.clone(), v.clone())
            })
            .collect()
    }

    #[test]
    fn explain_reports_route_pushdown_and_counter() {
        let s = seeded();
        // Selective run query: indexable, fully pushed, limit pushed.
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM component_runs WHERE id <= 1 LIMIT 2",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "component_runs");
        assert_eq!(m["route"], "index(id_range)");
        assert_eq!(m["pushed_filter"], "id <= 1");
        assert_eq!(m["residual_conjuncts"], "0");
        assert_eq!(m["pushed_limit"], "2");
        // EXPLAIN plans without scanning: no rows examined, one explain.
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.explain_total"], 1);
        assert_eq!(snap.counters["query.rows_scanned"], 0);

        // Unselective filter on a tiny table: the scan wins, and the
        // unpushable conjunct is counted as residual.
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM component_runs \
             WHERE component = 'infer' AND duration_ms > 5 LIMIT 2",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["route"], "scan");
        assert_eq!(m["pushed_filter"], "component=infer");
        assert_eq!(m["residual_conjuncts"], "1");
        assert_eq!(m["pushed_limit"], "none", "residual blocks limit pushdown");
    }

    #[test]
    fn explain_covers_events_and_errors_like_execution() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM events WHERE kind = 'alert_fired' AND severity = 'page'",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "events");
        assert_eq!(m["route"], "index(event_kind)");
        assert_eq!(m["pushed_filter"], "kind=alert_fired, severity=page");
        // MemoryStore has no WAL segments, so no prunable_segments row.
        assert!(!m.contains_key("prunable_segments"));
        // EXPLAIN surfaces the same up-front errors as execution.
        assert!(matches!(
            execute(&s, "EXPLAIN SELECT * FROM nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&s, "EXPLAIN SELECT nope FROM components"),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn summaries_query_reads_plane_and_pushdown_matches_naive() {
        let s = seeded();
        // Three accuracy points went through the plane.
        let r = execute(
            &s,
            "SELECT component, metric, count, mean FROM summaries \
             WHERE component = 'infer' AND metric = 'accuracy'",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("infer"));
        assert_eq!(r.rows[0][1], Value::from("accuracy"));
        assert_eq!(r.rows[0][2], Value::Int(3));
        let mean = r.rows[0][3].as_f64().unwrap();
        assert!((mean - 0.7833333).abs() < 1e-5);
        // Pushed and naive paths agree row for row.
        let q = parse("SELECT * FROM summaries WHERE component = 'infer'").unwrap();
        assert_eq!(
            execute_query(&s, &q).unwrap(),
            execute_query_unoptimized(&s, &q).unwrap()
        );
        // Nothing drifted yet: the residual drift filter drops the row.
        let r = execute(&s, "SELECT * FROM summaries WHERE drift_score > 0").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn explain_covers_summaries_and_events_kind_index_route() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM summaries WHERE component = 'infer' \
             AND metric = 'accuracy' AND drift_score > 0",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "summaries");
        assert_eq!(m["route"], "monitor-plane");
        assert_eq!(m["pushed_filter"], "component=infer, metric=accuracy");
        assert_eq!(m["residual_conjuncts"], "1");
        assert_eq!(m["pushed_limit"], "none");
        // No pushable conjunct at all: the whole clause stays residual.
        let r = execute(&s, "EXPLAIN SELECT * FROM summaries WHERE count > 10").unwrap();
        let m = explain_map(&r);
        assert_eq!(m["pushed_filter"], "all");
        assert_eq!(m["residual_conjuncts"], "1");

        // A kind-only equality takes the event-kind index on an indexed
        // store; a severity-only one cannot.
        let r = execute(&s, "EXPLAIN SELECT * FROM events WHERE kind = 'run_failed'").unwrap();
        assert_eq!(explain_map(&r)["route"], "index(event_kind)");
        let r = execute(&s, "EXPLAIN SELECT * FROM events WHERE severity = 'page'").unwrap();
        let m = explain_map(&r);
        assert_eq!(m["route"], "scan");
        assert_eq!(m["pushed_filter"], "severity=page");
    }

    #[test]
    fn diagnoses_scan_pushes_down_and_explains() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT suspect, score FROM diagnoses \
             WHERE incident_key = 'infer/accuracy' AND rank = 1",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Str("train".into()), Value::Float(2.7)]]
        );
        // Pushed and naive paths agree when only part of the clause pushes.
        let q = parse("SELECT * FROM diagnoses WHERE suspect = 'etl' AND score < 1.0").unwrap();
        assert_eq!(
            execute_query(&s, &q).unwrap(),
            execute_query_unoptimized(&s, &q).unwrap()
        );
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM diagnoses WHERE incident_key = 'infer/accuracy' \
             AND suspect = 'train' AND score > 1.0",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "diagnoses");
        assert_eq!(m["route"], "diagnosis-store");
        assert_eq!(
            m["pushed_filter"],
            "incident_key=infer/accuracy, suspect=train"
        );
        assert_eq!(m["residual_conjuncts"], "1");
        assert_eq!(m["pushed_limit"], "none");
    }

    #[test]
    fn forced_index_routes_agree_with_scan() {
        let s = seeded();
        for sql in [
            "SELECT * FROM component_runs WHERE component = 'infer'",
            "SELECT * FROM component_runs WHERE status = 'success'",
            "SELECT * FROM component_runs WHERE start_ms BETWEEN 150 AND 450",
            "SELECT * FROM component_runs WHERE id >= 3 AND id <= 5",
            "SELECT id, duration_ms FROM component_runs WHERE component = 'infer' \
             AND duration_ms > 5 ORDER BY id",
        ] {
            let q = parse(sql).unwrap();
            let scan = execute_query_with_route(&s, &q, RoutePreference::ForceScan).unwrap();
            let index = execute_query_with_route(&s, &q, RoutePreference::ForceIndex).unwrap();
            assert_eq!(index, scan, "{sql}");
        }
    }

    /// Every new operator through all four executor paths: pushed
    /// (auto), forced index, forced scan, and fully naive.
    fn assert_four_paths_agree(s: &MemoryStore, sql: &str) -> QueryResult {
        let q = parse(sql).unwrap();
        let fast = execute_query(s, &q).unwrap();
        let naive = execute_query_unoptimized(s, &q).unwrap();
        let index = execute_query_with_route(s, &q, RoutePreference::ForceIndex).unwrap();
        let scan = execute_query_with_route(s, &q, RoutePreference::ForceScan).unwrap();
        assert_eq!(fast, naive, "pushed vs naive: {sql}");
        assert_eq!(index, naive, "forced index vs naive: {sql}");
        assert_eq!(scan, naive, "forced scan vs naive: {sql}");
        fast
    }

    #[test]
    fn issue_acceptance_group_by_having() {
        let s = seeded();
        let r = assert_four_paths_agree(
            &s,
            "SELECT component, COUNT(*), AVG(duration_ms) FROM runs \
             GROUP BY component HAVING COUNT(*) > 1",
        );
        assert_eq!(r.columns, vec!["component", "count(*)", "avg(duration_ms)"]);
        // First-seen group order: etl (2 runs, avg 55), infer (3 runs,
        // avg 6); train has a single run and fails HAVING.
        assert_eq!(
            r.rows,
            vec![
                vec![Value::from("etl"), Value::Int(2), Value::Float(55.0)],
                vec![Value::from("infer"), Value::Int(3), Value::Float(6.0)],
            ]
        );
    }

    #[test]
    fn grouped_queries_match_naive_across_paths() {
        let s = seeded();
        for sql in [
            "SELECT component, count(*) FROM runs GROUP BY component",
            "SELECT status, sum(duration_ms), min(start_ms), max(end_ms) FROM runs \
             GROUP BY status ORDER BY status",
            "SELECT component, avg(duration_ms) AS d FROM runs WHERE start_ms >= 200 \
             GROUP BY component HAVING avg(duration_ms) < 100 ORDER BY d DESC LIMIT 1",
            "SELECT count(*), avg(duration_ms) FROM runs",
            "SELECT count(*) FROM runs WHERE id < 0",
            "SELECT component, status, count(*) FROM runs GROUP BY component, status",
            // Unplannable aggregate args fall back to the row path.
            "SELECT component, sum(duration_ms / 2) FROM runs GROUP BY component",
            "SELECT r.component, count(*) FROM runs r GROUP BY r.component",
        ] {
            assert_four_paths_agree(&s, sql);
        }
    }

    #[test]
    fn partial_agg_counters_and_group_count_rows() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, count(*) FROM runs GROUP BY component",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 3);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.pushdown.aggregates_total"], 1);
        assert_eq!(snap.counters["query.rows_scanned"], 6, "all runs folded");
        assert_eq!(
            snap.counters["query.rows_returned"], 3,
            "the store hands back group partials, not rows"
        );
    }

    #[test]
    fn joins_match_naive_and_expected_rows() {
        let s = seeded();
        for sql in [
            "SELECT r.component, e.kind FROM runs r JOIN events e ON e.run_id = r.id",
            "SELECT r.component, i.key FROM runs r JOIN incidents i ON i.subject = r.component \
             WHERE i.state = 'open'",
            "SELECT r.id, r.component, e.kind FROM runs r LEFT JOIN events e ON e.run_id = r.id \
             ORDER BY r.id",
            "SELECT r.component, e.severity FROM runs r JOIN events e \
             ON e.run_id = r.id AND e.severity = 'warn'",
            "SELECT c.name, count(*) AS n FROM components c JOIN runs r ON r.component = c.name \
             GROUP BY c.name ORDER BY n DESC",
            "SELECT r.component, m.value FROM runs r JOIN metrics m ON m.component = r.component \
             WHERE m.value > 0.7 ORDER BY m.value LIMIT 3",
            // No equi key: nested-loop fallback.
            "SELECT r.id, e.id FROM runs r JOIN events e ON e.ts_ms > r.start_ms \
             ORDER BY r.id, e.id LIMIT 5",
        ] {
            assert_four_paths_agree(&s, sql);
        }

        // Inner join of runs to incidents: only the open infer incident
        // matches, once per infer run.
        let r = assert_four_paths_agree(
            &s,
            "SELECT r.id, i.key FROM runs r JOIN incidents i ON i.subject = r.component",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(4), Value::from("infer/accuracy")],
                vec![Value::Int(5), Value::from("infer/accuracy")],
                vec![Value::Int(6), Value::from("infer/accuracy")],
            ]
        );
    }

    #[test]
    fn left_join_pads_and_supports_anti_join() {
        let s = seeded();
        // Runs with no event at all: ids 2, 5, 6 (events reference runs
        // 1, 3, 4). The IS NULL conjunct touches the padded side, so it
        // must stay residual above the join.
        let r = assert_four_paths_agree(
            &s,
            "SELECT r.id FROM runs r LEFT JOIN events e ON e.run_id = r.id \
             WHERE e.id IS NULL ORDER BY r.id",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(5)],
                vec![Value::Int(6)],
            ]
        );
    }

    #[test]
    fn scope_errors_are_semantic() {
        let s = seeded();
        // Bare `component` exists in both runs and metrics.
        assert!(matches!(
            execute(
                &s,
                "SELECT component FROM runs r JOIN metrics m ON m.component = r.component"
            ),
            Err(QueryError::Semantic(m)) if m.contains("ambiguous")
        ));
        assert!(matches!(
            execute(&s, "SELECT r.id FROM runs r JOIN runs r ON r.id = r.id"),
            Err(QueryError::Semantic(m)) if m.contains("duplicate")
        ));
        assert!(matches!(
            execute(
                &s,
                "SELECT x.id FROM runs r JOIN events e ON e.run_id = r.id"
            ),
            Err(QueryError::UnknownColumn(_))
        ));
        assert!(matches!(
            execute(
                &s,
                "SELECT r.id FROM runs r JOIN events e ON count(*) = 1"
            ),
            Err(QueryError::Semantic(m)) if m.contains("JOIN ON")
        ));
    }

    #[test]
    fn explain_reports_partial_agg_route() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT component, count(*), avg(duration_ms) FROM runs GROUP BY component",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "runs");
        assert_eq!(m["route"], "partial-agg(scan)");
        assert_eq!(m["groups_est"], "3", "live distinct-component estimate");
        assert_eq!(m["aggregates"], "2");
        assert_eq!(m["residual_conjuncts"], "0");
        // An unabsorbable WHERE knocks the query off the aggregate route.
        let r = execute(
            &s,
            "EXPLAIN SELECT component, count(*) FROM runs \
             WHERE duration_ms > 5 GROUP BY component",
        )
        .unwrap();
        assert_eq!(explain_map(&r)["route"], "scan");
    }

    #[test]
    fn explain_reports_join_plan() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT r.id, e.kind FROM runs r JOIN events e ON e.run_id = r.id \
             WHERE r.component = 'infer' AND e.severity = 'warn' AND r.id = e.run_id + 0",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "runs join events");
        assert_eq!(m["route"], "hash-join");
        assert_eq!(m["pushed_filter_r"], "component=infer");
        assert_eq!(m["pushed_filter_e"], "severity=warn");
        assert_eq!(m["join_1"], "inner e equi_keys=1 right_rows_est=6");
        // The cross-source conjunct is the one residual.
        assert_eq!(m["residual_conjuncts"], "1");

        let r = execute(
            &s,
            "EXPLAIN SELECT r.id FROM runs r JOIN events e ON e.ts_ms > r.start_ms",
        )
        .unwrap();
        assert_eq!(explain_map(&r)["route"], "nested-loop");
    }
}
