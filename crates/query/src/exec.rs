//! Query executor: scan → filter → group/aggregate → having → project →
//! order → limit, over the store's virtual tables.

use crate::ast::{AggFunc, BinOp, Expr, Query, ScalarFunc, SelectItem};
use crate::parser::{parse, ParseError};
use crate::plan::{
    choose_run_route, choose_run_route_forced, plan_event_scan, plan_metric_scan, plan_run_scan,
    plan_summary_scan, ScanRoute,
};
use mltrace_store::schema::{
    column_index, run_row, scan, scan_events_rows, scan_metrics_rows, scan_runs_rows,
    scan_summary_rows, table_schema, Row, Table,
};
use mltrace_store::{EventFilter, RunFilter, Store, StoreError, Value};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Execution error.
#[derive(Debug)]
pub enum QueryError {
    /// SQL text did not parse.
    Parse(ParseError),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column in the chosen table.
    UnknownColumn(String),
    /// Storage failure during scan.
    Store(StoreError),
    /// Semantically invalid query (e.g. bare column with aggregates).
    Semantic(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::Store(e) => write!(f, "store error: {e}"),
            QueryError::Semantic(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

/// A query result: column names plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Parse and execute `sql` against `store`.
///
/// ```
/// use mltrace_query::execute;
/// use mltrace_store::{ComponentRecord, MemoryStore, Store};
///
/// let store = MemoryStore::new();
/// store.register_component(ComponentRecord::named("etl")).unwrap();
/// let result = execute(&store, "SELECT name FROM components").unwrap();
/// assert_eq!(result.rows.len(), 1);
/// ```
pub fn execute(store: &dyn Store, sql: &str) -> Result<QueryResult, QueryError> {
    // Self-telemetry rides on the store's registry when it keeps one;
    // parse and execution latency are recorded separately because a slow
    // parse and a slow scan need different fixes.
    let tele = store.telemetry().cloned();
    if let Some(t) = &tele {
        t.incr("query.statements_total");
    }
    let explained = strip_explain(sql);
    let query = {
        let _span = tele.as_ref().map(|t| t.span("query.parse"));
        parse(explained.unwrap_or(sql))?
    };
    let _span = tele.as_ref().map(|t| t.span("query.exec"));
    if explained.is_some() {
        if let Some(t) = &tele {
            t.incr("query.explain_total");
        }
        return explain_query(store, &query);
    }
    execute_query(store, &query)
}

/// Peel a leading `EXPLAIN` keyword off `sql`, returning the statement
/// that follows it, or `None` when the text is a plain statement.
fn strip_explain(sql: &str) -> Option<&str> {
    let t = sql.trim_start();
    let head = t.get(..7)?;
    if head.eq_ignore_ascii_case("EXPLAIN") && t[7..].starts_with(|c: char| c.is_whitespace()) {
        Some(&t[7..])
    } else {
        None
    }
}

/// How the executor picks between the sharded scan and a secondary-index
/// lookup for `component_runs` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePreference {
    /// Planner decides from the store's [`IndexStats`] selectivity
    /// estimate (the default everywhere).
    ///
    /// [`IndexStats`]: mltrace_store::IndexStats
    #[default]
    Auto,
    /// Take the best applicable index route regardless of estimated
    /// selectivity. Test hook: pins the index executor against the scan
    /// path on fixtures too small for `Auto` to pick an index.
    ForceIndex,
    /// Never consult the indexes (the pre-index behavior).
    ForceScan,
}

/// Execute a pre-parsed query through the pushdown planner: simple WHERE
/// conjuncts and (when safe) LIMIT run inside the store scan, so only
/// surviving records are converted to [`Value`] rows.
pub fn execute_query(store: &dyn Store, query: &Query) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, true, RoutePreference::Auto)
}

/// Execute a pre-parsed query on the naive path: full scan, then evaluate
/// the whole WHERE clause per materialized row. Kept as the reference
/// implementation for the pushdown equivalence suite; results must match
/// [`execute_query`] row for row.
pub fn execute_query_unoptimized(
    store: &dyn Store,
    query: &Query,
) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, false, RoutePreference::ForceScan)
}

/// [`execute_query`] with an explicit scan-vs-index routing preference,
/// for tests and benchmarks that pin one executor path.
pub fn execute_query_with_route(
    store: &dyn Store,
    query: &Query,
    pref: RoutePreference,
) -> Result<QueryResult, QueryError> {
    execute_query_inner(store, query, true, pref)
}

fn execute_query_inner(
    store: &dyn Store,
    query: &Query,
    pushdown: bool,
    pref: RoutePreference,
) -> Result<QueryResult, QueryError> {
    let table =
        Table::parse(&query.from).ok_or_else(|| QueryError::UnknownTable(query.from.clone()))?;
    let schema = table_schema(table);
    let resolve = |name: &str| -> Result<usize, QueryError> {
        column_index(table, name).map_err(|_| QueryError::UnknownColumn(name.to_owned()))
    };

    // Validate column references and WHERE shape up front, before any
    // scan, so both execution paths fail identically.
    validate_columns(query, &resolve)?;
    if let Some(filter) = &query.where_clause {
        if filter.has_aggregate() {
            return Err(QueryError::Semantic("aggregate in WHERE".into()));
        }
    }

    let grouped = !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Expr { expr, .. } if expr.has_aggregate()));

    // LIMIT can run inside the scan only when nothing downstream can drop
    // or reorder rows: the whole WHERE must be pushed, and there must be
    // no grouping, DISTINCT, or ORDER BY.
    let limit_pushable = |residual: &Option<Expr>| -> Option<usize> {
        if residual.is_none() && !grouped && !query.distinct && query.order_by.is_empty() {
            query.limit
        } else {
            None
        }
    };
    let tele = store.telemetry();

    // Scan, splitting WHERE into a pushed-down part and a residual the
    // executor still evaluates per row.
    let (mut rows, residual) = if pushdown {
        match table {
            Table::ComponentRuns => {
                let plan = plan_run_scan(query.where_clause.as_ref());
                let limit = limit_pushable(&plan.residual);
                if let Some(t) = tele {
                    if !plan.filter.is_all() {
                        t.incr("query.pushdown.filters_total");
                    }
                    if limit.is_some() {
                        t.incr("query.pushdown.limits_total");
                    }
                }
                let route = choose_route(store, &plan.filter, pref)?;
                let rows = match route {
                    ScanRoute::Index(idx) => {
                        match store.scan_runs_indexed(None, &plan.filter, limit, idx)? {
                            Some(records) => records.iter().map(run_row).collect(),
                            // The store declined the route (e.g. no
                            // indexes behind this trait object after all).
                            None => scan_runs_rows(store, &plan.filter, limit)?,
                        }
                    }
                    ScanRoute::FullScan => scan_runs_rows(store, &plan.filter, limit)?,
                };
                (rows, plan.residual)
            }
            Table::Metrics => {
                let plan = plan_metric_scan(query.where_clause.as_ref());
                let limit = limit_pushable(&plan.residual);
                if let Some(t) = tele {
                    if plan.component.is_some() {
                        t.incr("query.pushdown.filters_total");
                    }
                    if limit.is_some() {
                        t.incr("query.pushdown.limits_total");
                    }
                }
                (
                    scan_metrics_rows(store, plan.component.as_deref(), limit)?,
                    plan.residual,
                )
            }
            Table::Events => {
                let plan = plan_event_scan(query.where_clause.as_ref());
                let limit = limit_pushable(&plan.residual);
                if let Some(t) = tele {
                    if !plan.filter.is_all() {
                        t.incr("query.pushdown.filters_total");
                    }
                    if limit.is_some() {
                        t.incr("query.pushdown.limits_total");
                    }
                }
                (scan_events_rows(store, &plan.filter, limit)?, plan.residual)
            }
            Table::Summaries => {
                let plan = plan_summary_scan(query.where_clause.as_ref());
                if let Some(t) = tele {
                    if plan.component.is_some() || plan.metric.is_some() {
                        t.incr("query.pushdown.filters_total");
                    }
                }
                (
                    scan_summary_rows(store, plan.component.as_deref(), plan.metric.as_deref())?,
                    plan.residual,
                )
            }
            other => (scan(store, other)?, query.where_clause.clone()),
        }
    } else {
        (scan(store, table)?, query.where_clause.clone())
    };

    // Residual WHERE (the full clause on the naive path).
    if let Some(filter) = &residual {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval(filter, &row, &resolve)?.truthy() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let (columns, mut out_rows) = if grouped {
        aggregate(query, rows, &resolve)?
    } else {
        project_plain(query, rows, schema, &resolve)?
    };

    // DISTINCT over the projected rows, via hashed canonical keys (the
    // key encoding matches `Value::loose_eq`, see `canonical_row_key`) —
    // O(n) instead of the old O(n²) pairwise comparison.
    if query.distinct {
        let mut seen: HashSet<String> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|row| seen.insert(canonical_row_key(row)));
    }

    // ORDER BY over output columns first, then table columns (plain mode).
    if !query.order_by.is_empty() {
        let keys: Vec<(SortKey, bool)> = query
            .order_by
            .iter()
            .map(|(e, desc)| Ok((sort_key(e, &columns, query, &resolve)?, *desc)))
            .collect::<Result<_, QueryError>>()?;
        let cmp = |a: &Row, b: &Row| -> Ordering {
            for (key, desc) in &keys {
                let (va, vb) = match key {
                    SortKey::Output(i) => (&a[*i], &b[*i]),
                };
                let c = va.total_cmp(vb);
                let c = if *desc { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        };
        match query.limit {
            // Bounded top-K instead of full-sort-then-truncate.
            Some(k) if k < out_rows.len() => {
                if let Some(t) = tele {
                    t.incr("query.topk_total");
                }
                top_k(&mut out_rows, k, cmp);
            }
            _ => out_rows.sort_by(cmp),
        }
    }

    if let Some(limit) = query.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult {
        columns,
        rows: out_rows,
    })
}

/// Resolve the run-scan route for one query: the preference picks the
/// policy, the store's index stats feed the estimate. Stores without
/// secondary indexes always scan.
fn choose_route(
    store: &dyn Store,
    filter: &RunFilter,
    pref: RoutePreference,
) -> Result<ScanRoute, QueryError> {
    if pref == RoutePreference::ForceScan {
        return Ok(ScanRoute::FullScan);
    }
    Ok(match store.index_stats()? {
        Some(stats) if pref == RoutePreference::ForceIndex => {
            choose_run_route_forced(filter, &stats)
        }
        Some(stats) => choose_run_route(filter, &stats),
        None => ScanRoute::FullScan,
    })
}

/// `EXPLAIN <select>`: plan the statement without scanning and return the
/// decisions as `property`/`value` rows — chosen route, pushed conjuncts,
/// residual size, limit pushdown, and (for cold event reads) how many
/// sealed WAL segments the zone maps would prune.
pub fn explain_query(store: &dyn Store, query: &Query) -> Result<QueryResult, QueryError> {
    let table =
        Table::parse(&query.from).ok_or_else(|| QueryError::UnknownTable(query.from.clone()))?;
    let resolve = |name: &str| -> Result<usize, QueryError> {
        column_index(table, name).map_err(|_| QueryError::UnknownColumn(name.to_owned()))
    };
    // Surface the same up-front errors a real execution would.
    validate_columns(query, &resolve)?;

    let grouped = !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Expr { expr, .. } if expr.has_aggregate()));
    let mut props: Vec<(&'static str, String)> = vec![("table", query.from.to_lowercase())];
    let mut push = |k, v| props.push((k, v));

    // Mirrors `limit_pushable` in the executor.
    let pushed_limit = |residual: &Option<Expr>| -> Option<usize> {
        if residual.is_none() && !grouped && !query.distinct && query.order_by.is_empty() {
            query.limit
        } else {
            None
        }
    };
    let limit_prop = |l: Option<usize>| match l {
        Some(n) => format!("{n}"),
        None => "none".to_owned(),
    };

    match table {
        Table::ComponentRuns => {
            let plan = plan_run_scan(query.where_clause.as_ref());
            let route = choose_route(store, &plan.filter, RoutePreference::Auto)?;
            push("route", route.describe());
            push("pushed_filter", describe_run_filter(&plan.filter));
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
        }
        Table::Metrics => {
            let plan = plan_metric_scan(query.where_clause.as_ref());
            push("route", "scan".to_owned());
            push(
                "pushed_filter",
                match &plan.component {
                    Some(c) => format!("component={c}"),
                    None => "all".to_owned(),
                },
            );
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
        }
        Table::Events => {
            let plan = plan_event_scan(query.where_clause.as_ref());
            let route = if plan.filter.kind.is_some() && store.index_stats()?.is_some() {
                "index(event_kind)".to_owned()
            } else {
                "scan".to_owned()
            };
            push("route", route);
            push("pushed_filter", describe_event_filter(&plan.filter));
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", limit_prop(pushed_limit(&plan.residual)));
            if let Some((pruned, total)) = store.prunable_segments(&plan.filter)? {
                push("prunable_segments", format!("{pruned} of {total}"));
            }
        }
        Table::Summaries => {
            let plan = plan_summary_scan(query.where_clause.as_ref());
            push("route", "monitor-plane".to_owned());
            let mut parts = Vec::new();
            if let Some(c) = &plan.component {
                parts.push(format!("component={c}"));
            }
            if let Some(m) = &plan.metric {
                parts.push(format!("metric={m}"));
            }
            push(
                "pushed_filter",
                if parts.is_empty() {
                    "all".to_owned()
                } else {
                    parts.join(", ")
                },
            );
            push(
                "residual_conjuncts",
                conjunct_count(plan.residual.as_ref()).to_string(),
            );
            push("pushed_limit", "none".to_owned());
        }
        _ => {
            push("route", "scan".to_owned());
            push("pushed_filter", "none".to_owned());
            push(
                "residual_conjuncts",
                conjunct_count(query.where_clause.as_ref()).to_string(),
            );
            push("pushed_limit", "none".to_owned());
        }
    }

    Ok(QueryResult {
        columns: vec!["property".to_owned(), "value".to_owned()],
        rows: props
            .into_iter()
            .map(|(k, v)| vec![Value::from(k), Value::from(v)])
            .collect(),
    })
}

/// Count the top-level AND conjuncts of a residual WHERE expression.
fn conjunct_count(e: Option<&Expr>) -> usize {
    fn walk(e: &Expr) -> usize {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => walk(left) + walk(right),
            _ => 1,
        }
    }
    e.map_or(0, walk)
}

/// Human-readable rendering of the pushed-down run filter bounds.
fn describe_run_filter(f: &RunFilter) -> String {
    if f.is_all() {
        return "all".to_owned();
    }
    let mut parts = Vec::new();
    if let Some(c) = &f.component {
        parts.push(format!("component={c}"));
    }
    if let Some(s) = &f.status {
        parts.push(format!("status={}", s.name()));
    }
    bound(&mut parts, "id", f.min_id, f.max_id);
    bound(&mut parts, "start_ms", f.min_start_ms, f.max_start_ms);
    bound(&mut parts, "end_ms", f.min_end_ms, f.max_end_ms);
    parts.join(", ")
}

/// Human-readable rendering of the pushed-down event filter bounds.
fn describe_event_filter(f: &EventFilter) -> String {
    if f.is_all() {
        return "all".to_owned();
    }
    let mut parts = Vec::new();
    if let Some(k) = &f.kind {
        parts.push(format!("kind={}", k.name()));
    }
    if let Some(s) = &f.severity {
        parts.push(format!("severity={}", s.name()));
    }
    if let Some(c) = &f.component {
        parts.push(format!("component={c}"));
    }
    if let Some(r) = &f.run_id {
        parts.push(format!("run_id={r}"));
    }
    bound(&mut parts, "id", f.min_id, f.max_id);
    bound(&mut parts, "ts_ms", f.min_ts_ms, f.max_ts_ms);
    parts.join(", ")
}

fn bound(parts: &mut Vec<String>, name: &str, lo: Option<u64>, hi: Option<u64>) {
    match (lo, hi) {
        (Some(l), Some(h)) => parts.push(format!("{name} in [{l}, {h}]")),
        (Some(l), None) => parts.push(format!("{name} >= {l}")),
        (None, Some(h)) => parts.push(format!("{name} <= {h}")),
        (None, None) => {}
    }
}

/// Keep the `k` smallest rows under `cmp`, in sorted order, equivalent to
/// a full stable sort followed by `truncate(k)` but with memory and sort
/// work bounded by `O(k)` instead of the input size.
///
/// Rows are tagged with their input position and compared by
/// `(cmp, position)` — a total order whose prefix of length `k` is exactly
/// what the stable sort would keep, so pruning the buffer to `k` whenever
/// it reaches `2k` never discards a final survivor.
fn top_k<F: Fn(&Row, &Row) -> Ordering>(rows: &mut Vec<Row>, k: usize, cmp: F) {
    if k == 0 {
        rows.clear();
        return;
    }
    let full = |buf: &mut Vec<(usize, Row)>| {
        buf.sort_by(|a, b| cmp(&a.1, &b.1).then(a.0.cmp(&b.0)));
        buf.truncate(k);
    };
    let mut buf: Vec<(usize, Row)> = Vec::with_capacity(k.saturating_mul(2).min(rows.len()));
    for (i, row) in rows.drain(..).enumerate() {
        buf.push((i, row));
        if buf.len() >= k.saturating_mul(2) {
            full(&mut buf);
        }
    }
    full(&mut buf);
    rows.extend(buf.into_iter().map(|(_, r)| r));
}

/// Canonical string key for a projected row, used by hashed DISTINCT.
///
/// Two rows get the same key iff elementwise `Value::loose_eq` holds
/// (i.e. `total_cmp == Equal`): cross-type comparisons are never equal
/// except the numeric interleave, where an integer-valued float that
/// round-trips through `i64` exactly shares the integer's key and any
/// other float (NaNs, -0.0, fractional) keys on its exact bits. The one
/// divergence from pairwise `loose_eq` is the regime above 2^53 where
/// float precision makes `loose_eq` non-transitive and the old O(n²)
/// scan was order-dependent anyway; the hashed key is deterministic there.
fn canonical_row_key(row: &Row) -> String {
    let mut key = String::with_capacity(row.len() * 8);
    for v in row {
        canonical_value_key(v, &mut key);
    }
    key
}

fn canonical_value_key(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("n;"),
        Value::Bool(b) => {
            let _ = write!(out, "b{};", u8::from(*b));
        }
        Value::Int(i) => {
            let _ = write!(out, "i{i};");
        }
        Value::Float(f) => {
            // `total_cmp` compares Int × Float by converting the int to
            // f64; a float is loose-equal to an int iff it is that int's
            // exact f64 image, i.e. iff it survives the i64 round-trip
            // bit-for-bit (rules out NaN, -0.0, fractions, out-of-range).
            let i = *f as i64;
            if (i as f64).to_bits() == f.to_bits() {
                let _ = write!(out, "i{i};");
            } else {
                let _ = write!(out, "f{:x};", f.to_bits());
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "s{}:{s};", s.len());
        }
        Value::List(items) => {
            let _ = write!(out, "l{}[", items.len());
            for item in items {
                canonical_value_key(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            let _ = write!(out, "m{}{{", entries.len());
            for (k, val) in entries {
                let _ = write!(out, "s{}:{k};", k.len());
                canonical_value_key(val, out);
            }
            out.push('}');
        }
    }
}

enum SortKey {
    /// Index into the projected output row.
    Output(usize),
}

fn sort_key(
    e: &Expr,
    columns: &[String],
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<SortKey, QueryError> {
    // Match by alias / default name of a projected column.
    let name = e.default_name();
    if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(&name)) {
        return Ok(SortKey::Output(i));
    }
    // Match a projected expression structurally.
    for (i, item) in query.select.iter().enumerate() {
        if let SelectItem::Expr { expr, .. } = item {
            if expr == e {
                return Ok(SortKey::Output(i));
            }
        }
    }
    // Plain-table queries: any column is available if SELECT * was used.
    if query.select == vec![SelectItem::Wildcard] {
        if let Expr::Column(c) = e {
            let i = resolve(c)?;
            return Ok(SortKey::Output(i));
        }
    }
    Err(QueryError::Semantic(format!(
        "ORDER BY expression '{name}' is not in the select list"
    )))
}

fn validate_columns(
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(), QueryError> {
    fn walk(
        e: &Expr,
        resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
    ) -> Result<(), QueryError> {
        match e {
            Expr::Column(c) => resolve(c).map(|_| ()),
            Expr::Literal(_) => Ok(()),
            Expr::Binary { left, right, .. } => {
                walk(left, resolve)?;
                walk(right, resolve)
            }
            Expr::Not(x) | Expr::Neg(x) => walk(x, resolve),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => walk(expr, resolve),
            Expr::In { expr, list, .. } => {
                walk(expr, resolve)?;
                list.iter().try_for_each(|x| walk(x, resolve))
            }
            Expr::Agg { arg, .. } => arg.as_deref().map_or(Ok(()), |a| walk(a, resolve)),
            Expr::Scalar { args, .. } => args.iter().try_for_each(|a| walk(a, resolve)),
            Expr::Between { expr, lo, hi, .. } => {
                walk(expr, resolve)?;
                walk(lo, resolve)?;
                walk(hi, resolve)
            }
        }
    }
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, resolve)?;
        }
    }
    if let Some(w) = &query.where_clause {
        walk(w, resolve)?;
    }
    if let Some(h) = &query.having {
        walk(h, resolve)?;
    }
    for g in &query.group_by {
        resolve(g)?;
    }
    Ok(())
}

fn project_plain(
    query: &Query,
    rows: Vec<Row>,
    schema: &[&str],
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(Vec<String>, Vec<Row>), QueryError> {
    if query.select == vec![SelectItem::Wildcard] {
        return Ok((schema.iter().map(|s| s.to_string()).collect(), rows));
    }
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                return Err(QueryError::Semantic(
                    "mixed wildcard and expressions unsupported".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                exprs.push(expr);
            }
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut projected = Vec::with_capacity(exprs.len());
        for e in &exprs {
            projected.push(eval(e, row, resolve)?);
        }
        out.push(projected);
    }
    Ok((columns, out))
}

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        match &self.min {
            Some(m) if m.total_cmp(v) != Ordering::Greater => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v) != Ordering::Less => {}
            _ => self.max = Some(v.clone()),
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::from(self.count),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

fn aggregate(
    query: &Query,
    rows: Vec<Row>,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<(Vec<String>, Vec<Row>), QueryError> {
    // Collect every aggregate expression appearing in SELECT or HAVING.
    let mut agg_exprs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    let mut collect = |e: &Expr| collect_aggs(e, &mut agg_exprs);
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            collect(expr);
        }
    }
    if let Some(h) = &query.having {
        collect_aggs(h, &mut agg_exprs);
    }

    let group_idx: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| resolve(g))
        .collect::<Result<_, _>>()?;

    // Group rows.
    let mut groups: HashMap<String, (Row, Vec<AggState>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for row in &rows {
        let key_vals: Row = group_idx.iter().map(|&i| row[i].clone()).collect();
        let key = format!("{key_vals:?}");
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (key_vals, vec![AggState::new(); agg_exprs.len()])
        });
        for (state, (_, arg)) in entry.1.iter_mut().zip(agg_exprs.iter()) {
            let v = match arg {
                Some(e) => eval(e, row, resolve)?,
                None => Value::Bool(true), // COUNT(*): every row counts
            };
            state.add(&v);
        }
    }
    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && group_idx.is_empty() {
        order.push("<global>".into());
        groups.insert(
            "<global>".into(),
            (Vec::new(), vec![AggState::new(); agg_exprs.len()]),
        );
    }

    // Project each group.
    let mut columns = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                return Err(QueryError::Semantic("SELECT * with GROUP BY".into()))
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                // Bare (non-aggregate, non-group) columns are invalid.
                if !expr.has_aggregate() {
                    if let Expr::Column(c) = expr {
                        if !query.group_by.iter().any(|g| g.eq_ignore_ascii_case(c)) {
                            return Err(QueryError::Semantic(format!(
                                "column {c} is neither aggregated nor grouped"
                            )));
                        }
                    }
                }
            }
        }
    }

    let mut out_rows = Vec::new();
    for key in &order {
        let (key_vals, states) = &groups[key];
        // HAVING
        if let Some(h) = &query.having {
            let v = eval_agg(h, key_vals, states, &agg_exprs, query, resolve)?;
            if !v.truthy() {
                continue;
            }
        }
        let mut row = Vec::with_capacity(query.select.len());
        for item in &query.select {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_agg(
                    expr, key_vals, states, &agg_exprs, query, resolve,
                )?);
            }
        }
        out_rows.push(row);
    }
    Ok((columns, out_rows))
}

fn collect_aggs(e: &Expr, out: &mut Vec<(AggFunc, Option<Expr>)>) {
    match e {
        Expr::Agg { func, arg } => {
            let key = (*func, arg.as_deref().cloned());
            if !out.iter().any(|(f, a)| *f == key.0 && *a == key.1) {
                out.push(key);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Not(x) | Expr::Neg(x) => collect_aggs(x, out),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::In { expr, list, .. } => {
            collect_aggs(expr, out);
            for x in list {
                collect_aggs(x, out);
            }
        }
        Expr::Scalar { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

/// Evaluate an expression in aggregate context: aggregates read their
/// group state; bare grouped columns read the group key.
#[allow(clippy::only_used_in_recursion)]
fn eval_agg(
    e: &Expr,
    key_vals: &[Value],
    states: &[AggState],
    agg_exprs: &[(AggFunc, Option<Expr>)],
    query: &Query,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<Value, QueryError> {
    match e {
        Expr::Agg { func, arg } => {
            let idx = agg_exprs
                .iter()
                .position(|(f, a)| f == func && a.as_ref() == arg.as_deref())
                .expect("aggregate was collected");
            Ok(states[idx].finish(*func))
        }
        Expr::Column(c) => {
            let pos = query
                .group_by
                .iter()
                .position(|g| g.eq_ignore_ascii_case(c))
                .ok_or_else(|| {
                    QueryError::Semantic(format!("column {c} is neither aggregated nor grouped"))
                })?;
            Ok(key_vals[pos].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval_agg(left, key_vals, states, agg_exprs, query, resolve)?;
            let r = eval_agg(right, key_vals, states, agg_exprs, query, resolve)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Not(x) => Ok(Value::Bool(
            !eval_agg(x, key_vals, states, agg_exprs, query, resolve)?.truthy(),
        )),
        Expr::Neg(x) => {
            let v = eval_agg(x, key_vals, states, agg_exprs, query, resolve)?;
            Ok(v.as_f64().map(|f| Value::Float(-f)).unwrap_or(Value::Null))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            Ok(Value::Bool(like_match(&v, pattern) != *negated))
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            let mut found = false;
            for item in list {
                let w = eval_agg(item, key_vals, states, agg_exprs, query, resolve)?;
                if v.loose_eq(&w) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Scalar { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_agg(a, key_vals, states, agg_exprs, query, resolve))
                .collect::<Result<_, _>>()?;
            Ok(apply_scalar(*func, &vals))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval_agg(expr, key_vals, states, agg_exprs, query, resolve)?;
            let l = eval_agg(lo, key_vals, states, agg_exprs, query, resolve)?;
            let h = eval_agg(hi, key_vals, states, agg_exprs, query, resolve)?;
            Ok(eval_between(&v, &l, &h, *negated))
        }
    }
}

/// Evaluate an expression against one table row.
fn eval(
    e: &Expr,
    row: &Row,
    resolve: &dyn Fn(&str) -> Result<usize, QueryError>,
) -> Result<Value, QueryError> {
    match e {
        Expr::Column(c) => Ok(row[resolve(c)?].clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval(left, row, resolve)?;
            let r = eval(right, row, resolve)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Not(x) => Ok(Value::Bool(!eval(x, row, resolve)?.truthy())),
        Expr::Neg(x) => {
            let v = eval(x, row, resolve)?;
            Ok(v.as_f64().map(|f| Value::Float(-f)).unwrap_or(Value::Null))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            Ok(Value::Bool(like_match(&v, pattern) != *negated))
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            let mut found = false;
            for item in list {
                if v.loose_eq(&eval(item, row, resolve)?) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Agg { .. } => Err(QueryError::Semantic(
            "aggregate outside aggregation context".into(),
        )),
        Expr::Scalar { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, resolve))
                .collect::<Result<_, _>>()?;
            Ok(apply_scalar(*func, &vals))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, row, resolve)?;
            let l = eval(lo, row, resolve)?;
            let h = eval(hi, row, resolve)?;
            Ok(eval_between(&v, &l, &h, *negated))
        }
    }
}

/// `v BETWEEN l AND h` with SQL null semantics (null operand → false).
fn eval_between(v: &Value, l: &Value, h: &Value, negated: bool) -> Value {
    if v.is_null() || l.is_null() || h.is_null() {
        return Value::Bool(false);
    }
    let inside = v.total_cmp(l) != Ordering::Less && v.total_cmp(h) != Ordering::Greater;
    Value::Bool(inside != negated)
}

/// Apply a scalar function with loose SQL semantics (null in → null out,
/// except COALESCE).
fn apply_scalar(func: ScalarFunc, args: &[Value]) -> Value {
    match func {
        ScalarFunc::Coalesce => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        ScalarFunc::Abs => match args.first() {
            Some(Value::Int(i)) => Value::Int(i.saturating_abs()),
            Some(v) => v
                .as_f64()
                .map(|f| Value::Float(f.abs()))
                .unwrap_or(Value::Null),
            None => Value::Null,
        },
        ScalarFunc::Round => match args.first().and_then(Value::as_f64) {
            Some(f) if f.is_finite() => Value::Int(f.round() as i64),
            _ => Value::Null,
        },
        ScalarFunc::Length => match args.first() {
            Some(Value::Str(s)) => Value::from(s.chars().count()),
            Some(Value::List(l)) => Value::from(l.len()),
            _ => Value::Null,
        },
        ScalarFunc::Lower => match args.first() {
            Some(Value::Str(s)) => Value::from(s.to_lowercase()),
            _ => Value::Null,
        },
        ScalarFunc::Upper => match args.first() {
            Some(Value::Str(s)) => Value::from(s.to_uppercase()),
            _ => Value::Null,
        },
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    use BinOp::*;
    match op {
        And => Value::Bool(l.truthy() && r.truthy()),
        Or => Value::Bool(l.truthy() || r.truthy()),
        Eq | Ne | Lt | Le | Gt | Ge => {
            // SQL-ish null semantics: comparisons with NULL are false.
            if l.is_null() || r.is_null() {
                return Value::Bool(false);
            }
            let c = l.total_cmp(r);
            let b = match op {
                Eq => c == Ordering::Equal,
                Ne => c != Ordering::Equal,
                Lt => c == Ordering::Less,
                Le => c != Ordering::Greater,
                Gt => c == Ordering::Greater,
                Ge => c != Ordering::Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        Add | Sub | Mul | Div | Mod => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                let x = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                    _ => unreachable!(),
                };
                // Keep integer results integral when both sides were ints.
                match (l, r) {
                    (Value::Int(_), Value::Int(_))
                        if x.fract() == 0.0 && x.is_finite() && !matches!(op, Div) =>
                    {
                        Value::Int(x as i64)
                    }
                    _ => Value::Float(x),
                }
            }
            _ => Value::Null,
        },
    }
}

/// SQL LIKE with `%` (any run) and `_` (single char), case-sensitive.
fn like_match(v: &Value, pattern: &str) -> bool {
    let Value::Str(s) = v else { return false };
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(b'%'), _) => rec(s, &p[1..]) || (!s.is_empty() && rec(&s[1..], p)),
            (Some(b'_'), Some(_)) => rec(&s[1..], &p[1..]),
            (Some(&c), Some(&d)) if c == d => rec(&s[1..], &p[1..]),
            _ => false,
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_store::{
        ComponentRecord, ComponentRunRecord, EventKind, EventSeverity, IncidentRecord,
        IncidentState, MemoryStore, MetricRecord, ObservabilityEvent, RunId, RunStatus,
    };

    #[test]
    fn queries_record_store_telemetry() {
        let s = seeded();
        execute(&s, "SELECT name FROM components").unwrap();
        assert!(execute(&s, "SELECT nonsense FROM").is_err());
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.statements_total"], 2);
        assert_eq!(
            snap.histograms["query.parse"].count, 2,
            "failed parse timed too"
        );
        assert_eq!(snap.histograms["query.exec"].count, 1);
    }

    fn seeded() -> MemoryStore {
        let s = MemoryStore::new();
        for (name, owner) in [("etl", "data-eng"), ("train", "ml"), ("infer", "ml")] {
            let mut c = ComponentRecord::named(name);
            c.owner = owner.into();
            s.register_component(c).unwrap();
        }
        for (component, start, dur, status) in [
            ("etl", 100u64, 50u64, RunStatus::Success),
            ("etl", 200, 60, RunStatus::Success),
            ("train", 300, 500, RunStatus::Failed),
            ("infer", 400, 5, RunStatus::Success),
            ("infer", 500, 7, RunStatus::TriggerFailed),
            ("infer", 600, 6, RunStatus::Success),
        ] {
            s.log_run(ComponentRunRecord {
                component: component.into(),
                start_ms: start,
                end_ms: start + dur,
                outputs: vec![format!("out-{start}")],
                status,
                ..Default::default()
            })
            .unwrap();
        }
        for (ts, v) in [(1u64, 0.9), (2, 0.85), (3, 0.6)] {
            s.log_metric(MetricRecord {
                component: "infer".into(),
                run_id: None,
                name: "accuracy".into(),
                value: v,
                ts_ms: ts,
            })
            .unwrap();
        }
        s.log_events(vec![
            ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, 100)
                .component("etl")
                .run(RunId(1)),
            ObservabilityEvent::new(EventKind::RunFinished, EventSeverity::Info, 150)
                .component("etl")
                .run(RunId(1)),
            ObservabilityEvent::new(EventKind::StalenessFlagged, EventSeverity::Warn, 250)
                .component("train")
                .detail("no fresh run in 2h"),
            ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 400)
                .component("infer")
                .run(RunId(4))
                .detail("accuracy below floor"),
            ObservabilityEvent::new(EventKind::AlertSuppressed, EventSeverity::Info, 450)
                .component("infer")
                .run(RunId(4)),
            ObservabilityEvent::new(EventKind::RunFailed, EventSeverity::Warn, 800)
                .component("train")
                .run(RunId(3))
                .detail("boom"),
        ])
        .unwrap();
        s.upsert_incident(IncidentRecord {
            key: "infer/accuracy".into(),
            state: IncidentState::Open,
            severity: EventSeverity::Page,
            subject: "infer".into(),
            opened_ms: 400,
            last_fire_ms: 400,
            resolved_ms: None,
            fire_count: 1,
            suppressed_count: 1,
            burn_ms: 0,
            detail: "accuracy below floor".into(),
        })
        .unwrap();
        s
    }

    #[test]
    fn select_star_with_filter_and_order() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT * FROM component_runs WHERE component = 'infer' ORDER BY start_ms DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        let start_idx = r.columns.iter().position(|c| c == "start_ms").unwrap();
        assert_eq!(r.rows[0][start_idx], Value::Int(600));
        assert_eq!(r.rows[1][start_idx], Value::Int(500));
    }

    #[test]
    fn projection_with_alias_and_arithmetic() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, duration_ms / 2 AS half FROM component_runs WHERE duration_ms > 100",
        )
        .unwrap();
        assert_eq!(r.columns, vec!["component", "half"]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("train"));
        assert_eq!(r.rows[0][1], Value::Float(250.0));
    }

    #[test]
    fn group_by_with_having_and_order() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, count(*) AS runs, avg(duration_ms) AS avg_dur \
             FROM component_runs GROUP BY component HAVING count(*) >= 2 \
             ORDER BY runs DESC",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("infer"));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[1][0], Value::from("etl"));
        let avg: f64 = r.rows[1][2].as_f64().unwrap();
        assert!((avg - 55.0).abs() < 1e-9);
    }

    #[test]
    fn global_aggregates() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT count(*), min(value), max(value), avg(value) FROM metrics",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][1], Value::Float(0.6));
        assert_eq!(r.rows[0][2], Value::Float(0.9));
        let avg = r.rows[0][3].as_f64().unwrap();
        assert!((avg - 0.7833333).abs() < 1e-5);
    }

    #[test]
    fn global_aggregate_on_empty_scan() {
        let s = MemoryStore::new();
        let r = execute(&s, "SELECT count(*) FROM metrics").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn like_and_in() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT name FROM components WHERE name LIKE 'e%' OR name IN ('train')",
        )
        .unwrap();
        let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["etl", "train"]);
        let r = execute(&s, "SELECT name FROM components WHERE name NOT LIKE '%n%'").unwrap();
        assert_eq!(r.rows.len(), 1); // etl
    }

    #[test]
    fn is_null_semantics() {
        let s = seeded();
        // metrics.run_id is NULL for externally-fed series.
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id IS NULL").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id IS NOT NULL").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        // Comparisons with NULL are false, not errors.
        let r = execute(&s, "SELECT count(*) FROM metrics WHERE run_id = 1").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn errors() {
        let s = seeded();
        assert!(matches!(
            execute(&s, "SELECT * FROM nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT bogus FROM components"),
            Err(QueryError::UnknownColumn(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT owner FROM components GROUP BY name"),
            Err(QueryError::Semantic(_))
        ));
        assert!(matches!(
            execute(&s, "SELECT * FROM components WHERE count(*) > 1"),
            Err(QueryError::Semantic(_))
        ));
        assert!(execute(&s, "SELEC * FROM components").is_err());
    }

    #[test]
    fn render_table() {
        let s = seeded();
        let r = execute(&s, "SELECT name, owner FROM components ORDER BY name").unwrap();
        let text = r.render();
        assert!(text.contains("name"));
        assert!(text.contains("data-eng"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 3, "header + separator + rows");
    }

    #[test]
    fn like_match_wildcards() {
        assert!(like_match(&Value::from("pred-17"), "pred-%"));
        assert!(like_match(&Value::from("abc"), "a_c"));
        assert!(!like_match(&Value::from("abc"), "a_"));
        assert!(like_match(&Value::from(""), "%"));
        assert!(!like_match(&Value::Int(5), "5"));
        assert!(like_match(&Value::from("x%y"), "x%y"));
    }

    #[test]
    fn distinct_deduplicates() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT DISTINCT component FROM component_runs ORDER BY component",
        )
        .unwrap();
        let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(names, vec!["etl", "infer", "train"]);
        // Without DISTINCT there are 6 rows.
        let r = execute(&s, "SELECT component FROM component_runs").unwrap();
        assert_eq!(r.rows.len(), 6);
    }

    #[test]
    fn between_inclusive_and_negated() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms BETWEEN 200 AND 400",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3), "200, 300, 400 inclusive");
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms NOT BETWEEN 200 AND 400",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        // BETWEEN composes with AND.
        let r = execute(
            &s,
            "SELECT count(*) FROM component_runs WHERE start_ms BETWEEN 100 AND 600 AND component = 'infer'",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn scalar_functions() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT upper(name) AS u, length(name) AS l, abs(0 - 3) AS a, \
             round(2.6) AS r, coalesce(NULL, name, 'x') AS c \
             FROM components WHERE name = 'etl'",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::from("ETL"));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[0][2], Value::Int(3));
        assert_eq!(r.rows[0][3], Value::Int(3));
        assert_eq!(r.rows[0][4], Value::from("etl"));
    }

    #[test]
    fn scalar_null_semantics() {
        let s = seeded();
        // run_id is NULL for these metric points: abs(NULL) → NULL.
        let r = execute(&s, "SELECT count(abs(run_id)) FROM metrics").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0), "nulls excluded from count");
        let r = execute(&s, "SELECT count(coalesce(run_id, 0)) FROM metrics").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn scalar_inside_aggregate_group() {
        let s = seeded();
        let r = execute(
            &s,
            "SELECT component, max(abs(duration_ms)) AS m FROM component_runs \
             GROUP BY component ORDER BY m DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::from("train"));
    }

    #[test]
    fn pushdown_matches_naive_on_seeded() {
        let s = seeded();
        for sql in [
            "SELECT * FROM component_runs WHERE component = 'infer'",
            "SELECT * FROM runs WHERE status = 'success' AND start_ms >= 200",
            "SELECT * FROM runs WHERE 300 <= start_ms AND duration_ms > 4",
            "SELECT * FROM runs WHERE start_ms BETWEEN 200 AND 500 LIMIT 2",
            "SELECT component FROM runs WHERE component = 'etl' AND component = 'train'",
            "SELECT * FROM runs WHERE id < 0",
            "SELECT * FROM runs LIMIT 3",
            "SELECT * FROM runs WHERE status = 'Success'",
            "SELECT count(*) FROM runs WHERE component = 'infer'",
            "SELECT DISTINCT component FROM runs WHERE start_ms >= 200 ORDER BY component",
            "SELECT * FROM runs ORDER BY duration_ms DESC LIMIT 2",
            "SELECT * FROM metrics WHERE component = 'infer' AND value > 0.7",
            "SELECT * FROM metrics WHERE component = 'ghost'",
            "SELECT name, value FROM metrics WHERE component = 'infer' LIMIT 2",
            "SELECT * FROM events WHERE kind = 'alert_fired'",
            "SELECT * FROM events WHERE severity = 'warn' AND component = 'train'",
            "SELECT * FROM events WHERE run_id = 4",
            "SELECT * FROM events WHERE ts_ms BETWEEN 100 AND 450 LIMIT 2",
            "SELECT * FROM events WHERE kind = 'AlertFired'",
            "SELECT * FROM journal WHERE id >= 2 AND id < 5",
            "SELECT kind, count(*) AS n FROM events GROUP BY kind ORDER BY kind",
            "SELECT * FROM events ORDER BY ts_ms DESC LIMIT 3",
            "SELECT * FROM events WHERE kind = 'run_failed' AND detail = 'boom'",
            "SELECT key, state, fire_count FROM incidents WHERE state = 'open'",
        ] {
            let q = parse(sql).unwrap();
            let fast = execute_query(&s, &q).unwrap();
            let slow = execute_query_unoptimized(&s, &q).unwrap();
            assert_eq!(fast, slow, "{sql}");
        }
    }

    #[test]
    fn pushdown_records_planner_and_scan_counters() {
        let s = seeded();
        execute(
            &s,
            "SELECT * FROM component_runs WHERE component = 'infer' LIMIT 2",
        )
        .unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.pushdown.filters_total"], 1);
        assert_eq!(snap.counters["query.pushdown.limits_total"], 1);
        assert_eq!(snap.counters["query.rows_scanned"], 6, "all runs examined");
        assert_eq!(
            snap.counters["query.rows_returned"], 2,
            "limit bounds clones"
        );
        assert!(!snap.counters.contains_key("query.topk_total"));

        execute(&s, "SELECT * FROM runs ORDER BY duration_ms DESC LIMIT 1").unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.topk_total"], 1);
        // ORDER BY forbids limit pushdown.
        assert_eq!(snap.counters["query.pushdown.limits_total"], 1);
    }

    #[test]
    fn top_k_equals_stable_sort_truncate() {
        let rows: Vec<Row> = (0i64..100)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i)])
            .collect();
        let cmp = |a: &Row, b: &Row| a[0].total_cmp(&b[0]);
        for k in [0, 1, 5, 7, 50, 99, 100, 150] {
            let mut fast = rows.clone();
            top_k(&mut fast, k, cmp);
            let mut slow = rows.clone();
            slow.sort_by(cmp);
            slow.truncate(k);
            assert_eq!(fast, slow, "k = {k}");
        }
    }

    #[test]
    fn canonical_key_agrees_with_loose_eq() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(1.0),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::Float(-(2f64.powi(63))),
            Value::from("1"),
            Value::from(""),
            Value::List(vec![Value::Int(1)]),
            Value::List(vec![Value::Float(1.0)]),
        ];
        for a in &vals {
            for b in &vals {
                let key = |v: &Value| {
                    let mut s = String::new();
                    canonical_value_key(v, &mut s);
                    s
                };
                assert_eq!(
                    key(a) == key(b),
                    a.loose_eq(b),
                    "key/loose_eq disagree on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn order_by_requires_projected_or_wildcard() {
        let s = seeded();
        assert!(matches!(
            execute(&s, "SELECT name FROM components ORDER BY owner"),
            Err(QueryError::Semantic(_))
        ));
        // But works with wildcard.
        assert!(execute(&s, "SELECT * FROM components ORDER BY owner").is_ok());
    }

    #[test]
    fn strip_explain_peels_only_the_keyword() {
        assert_eq!(strip_explain("EXPLAIN SELECT 1"), Some(" SELECT 1"));
        assert_eq!(strip_explain("  explain\tSELECT 1"), Some("\tSELECT 1"));
        assert!(strip_explain("SELECT 1").is_none());
        // The keyword must be a whole word, not a prefix.
        assert!(strip_explain("EXPLAINSELECT 1").is_none());
        assert!(strip_explain("EXPLAIN").is_none());
        // Multi-byte text must not panic the boundary probe.
        assert!(strip_explain("日本語のテキストです").is_none());
    }

    /// Property → value map of one EXPLAIN result.
    fn explain_map(r: &QueryResult) -> std::collections::BTreeMap<String, String> {
        assert_eq!(r.columns, vec!["property", "value"]);
        r.rows
            .iter()
            .map(|row| {
                let (Value::Str(k), Value::Str(v)) = (&row[0], &row[1]) else {
                    panic!("non-string explain row: {row:?}");
                };
                (k.clone(), v.clone())
            })
            .collect()
    }

    #[test]
    fn explain_reports_route_pushdown_and_counter() {
        let s = seeded();
        // Selective run query: indexable, fully pushed, limit pushed.
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM component_runs WHERE id <= 1 LIMIT 2",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "component_runs");
        assert_eq!(m["route"], "index(id_range)");
        assert_eq!(m["pushed_filter"], "id <= 1");
        assert_eq!(m["residual_conjuncts"], "0");
        assert_eq!(m["pushed_limit"], "2");
        // EXPLAIN plans without scanning: no rows examined, one explain.
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.explain_total"], 1);
        assert_eq!(snap.counters["query.rows_scanned"], 0);

        // Unselective filter on a tiny table: the scan wins, and the
        // unpushable conjunct is counted as residual.
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM component_runs \
             WHERE component = 'infer' AND duration_ms > 5 LIMIT 2",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["route"], "scan");
        assert_eq!(m["pushed_filter"], "component=infer");
        assert_eq!(m["residual_conjuncts"], "1");
        assert_eq!(m["pushed_limit"], "none", "residual blocks limit pushdown");
    }

    #[test]
    fn explain_covers_events_and_errors_like_execution() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM events WHERE kind = 'alert_fired' AND severity = 'page'",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "events");
        assert_eq!(m["route"], "index(event_kind)");
        assert_eq!(m["pushed_filter"], "kind=alert_fired, severity=page");
        // MemoryStore has no WAL segments, so no prunable_segments row.
        assert!(!m.contains_key("prunable_segments"));
        // EXPLAIN surfaces the same up-front errors as execution.
        assert!(matches!(
            execute(&s, "EXPLAIN SELECT * FROM nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&s, "EXPLAIN SELECT nope FROM components"),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn summaries_query_reads_plane_and_pushdown_matches_naive() {
        let s = seeded();
        // Three accuracy points went through the plane.
        let r = execute(
            &s,
            "SELECT component, metric, count, mean FROM summaries \
             WHERE component = 'infer' AND metric = 'accuracy'",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("infer"));
        assert_eq!(r.rows[0][1], Value::from("accuracy"));
        assert_eq!(r.rows[0][2], Value::Int(3));
        let mean = r.rows[0][3].as_f64().unwrap();
        assert!((mean - 0.7833333).abs() < 1e-5);
        // Pushed and naive paths agree row for row.
        let q = parse("SELECT * FROM summaries WHERE component = 'infer'").unwrap();
        assert_eq!(
            execute_query(&s, &q).unwrap(),
            execute_query_unoptimized(&s, &q).unwrap()
        );
        // Nothing drifted yet: the residual drift filter drops the row.
        let r = execute(&s, "SELECT * FROM summaries WHERE drift_score > 0").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn explain_covers_summaries_and_events_kind_index_route() {
        let s = seeded();
        let r = execute(
            &s,
            "EXPLAIN SELECT * FROM summaries WHERE component = 'infer' \
             AND metric = 'accuracy' AND drift_score > 0",
        )
        .unwrap();
        let m = explain_map(&r);
        assert_eq!(m["table"], "summaries");
        assert_eq!(m["route"], "monitor-plane");
        assert_eq!(m["pushed_filter"], "component=infer, metric=accuracy");
        assert_eq!(m["residual_conjuncts"], "1");
        assert_eq!(m["pushed_limit"], "none");
        // No pushable conjunct at all: the whole clause stays residual.
        let r = execute(&s, "EXPLAIN SELECT * FROM summaries WHERE count > 10").unwrap();
        let m = explain_map(&r);
        assert_eq!(m["pushed_filter"], "all");
        assert_eq!(m["residual_conjuncts"], "1");

        // A kind-only equality takes the event-kind index on an indexed
        // store; a severity-only one cannot.
        let r = execute(&s, "EXPLAIN SELECT * FROM events WHERE kind = 'run_failed'").unwrap();
        assert_eq!(explain_map(&r)["route"], "index(event_kind)");
        let r = execute(&s, "EXPLAIN SELECT * FROM events WHERE severity = 'page'").unwrap();
        let m = explain_map(&r);
        assert_eq!(m["route"], "scan");
        assert_eq!(m["pushed_filter"], "severity=page");
    }

    #[test]
    fn forced_index_routes_agree_with_scan() {
        let s = seeded();
        for sql in [
            "SELECT * FROM component_runs WHERE component = 'infer'",
            "SELECT * FROM component_runs WHERE status = 'success'",
            "SELECT * FROM component_runs WHERE start_ms BETWEEN 150 AND 450",
            "SELECT * FROM component_runs WHERE id >= 3 AND id <= 5",
            "SELECT id, duration_ms FROM component_runs WHERE component = 'infer' \
             AND duration_ms > 5 ORDER BY id",
        ] {
            let q = parse(sql).unwrap();
            let scan = execute_query_with_route(&s, &q, RoutePreference::ForceScan).unwrap();
            let index = execute_query_with_route(&s, &q, RoutePreference::ForceIndex).unwrap();
            assert_eq!(index, scan, "{sql}");
        }
    }
}
