//! Prepared statements: parse once, bind `?` placeholders many times.
//!
//! A [`PreparedQuery`] is the parse-once half of the server's
//! `PREPARE`/`EXEC` protocol. Binding substitutes each positional `?`
//! with an [`Expr::Literal`] *before* the planner runs, so a bound query
//! takes exactly the pushdown / index route its literal-SQL equivalent
//! would — `EXPLAIN` output is identical by construction, which the
//! equivalence suite pins down.

use crate::ast::{Expr, Join, Query, SelectItem};
use crate::exec::{execute_query, explain_query, strip_explain, QueryError, QueryResult};
use crate::parser::parse_with_params;
use mltrace_store::{Store, Value};

/// A parsed statement with `?` placeholders awaiting values.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    sql: String,
    query: Query,
    params: usize,
    explain: bool,
}

impl PreparedQuery {
    /// The original statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of `?` placeholders (left-to-right source order).
    pub fn param_count(&self) -> usize {
        self.params
    }

    /// Whether the statement was an `EXPLAIN`.
    pub fn is_explain(&self) -> bool {
        self.explain
    }

    /// Substitute placeholders with `params`, producing a plan-ready
    /// query. The parameter count must match exactly.
    pub fn bind(&self, params: &[Value]) -> Result<Query, QueryError> {
        if params.len() != self.params {
            return Err(QueryError::Semantic(format!(
                "statement takes {} parameter(s), got {}",
                self.params,
                params.len()
            )));
        }
        Ok(bind_query(&self.query, params))
    }
}

/// Parse `sql` (optionally `EXPLAIN`-prefixed) into a prepared statement.
pub fn prepare(sql: &str) -> Result<PreparedQuery, QueryError> {
    let explained = strip_explain(sql);
    let (query, params) = parse_with_params(explained.unwrap_or(sql))?;
    Ok(PreparedQuery {
        sql: sql.to_owned(),
        query,
        params,
        explain: explained.is_some(),
    })
}

/// Bind `params` and execute (or `EXPLAIN`) against `store`.
pub fn execute_prepared(
    store: &dyn Store,
    stmt: &PreparedQuery,
    params: &[Value],
) -> Result<QueryResult, QueryError> {
    if let Some(t) = store.telemetry() {
        t.incr("query.prepared_exec_total");
    }
    let bound = stmt.bind(params)?;
    if stmt.explain {
        explain_query(store, &bound)
    } else {
        execute_query(store, &bound)
    }
}

fn bind_query(q: &Query, params: &[Value]) -> Query {
    Query {
        distinct: q.distinct,
        select: q
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: bind_expr(expr, params),
                    alias: alias.clone(),
                },
            })
            .collect(),
        from: q.from.clone(),
        joins: q
            .joins
            .iter()
            .map(|j| Join {
                kind: j.kind,
                table: j.table.clone(),
                on: bind_expr(&j.on, params),
            })
            .collect(),
        where_clause: q.where_clause.as_ref().map(|w| bind_expr(w, params)),
        group_by: q.group_by.clone(),
        having: q.having.as_ref().map(|h| bind_expr(h, params)),
        order_by: q
            .order_by
            .iter()
            .map(|(e, desc)| (bind_expr(e, params), *desc))
            .collect(),
        limit: q.limit,
    }
}

fn bind_expr(e: &Expr, params: &[Value]) -> Expr {
    match e {
        // `bind()` checked the count, so indexing cannot miss.
        Expr::Placeholder(i) => Expr::Literal(params[*i].clone()),
        Expr::Column(c) => Expr::Column(c.clone()),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_expr(left, params)),
            right: Box::new(bind_expr(right, params)),
        },
        Expr::Not(x) => Expr::Not(Box::new(bind_expr(x, params))),
        Expr::Neg(x) => Expr::Neg(Box::new(bind_expr(x, params))),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr(expr, params)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::In {
            expr,
            list,
            negated,
        } => Expr::In {
            expr: Box::new(bind_expr(expr, params)),
            list: list.iter().map(|x| bind_expr(x, params)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, params)),
            negated: *negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(bind_expr(a, params))),
        },
        Expr::Scalar { func, args } => Expr::Scalar {
            func: *func,
            args: args.iter().map(|a| bind_expr(a, params)).collect(),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr(expr, params)),
            lo: Box::new(bind_expr(lo, params)),
            hi: Box::new(bind_expr(hi, params)),
            negated: *negated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mltrace_store::{ComponentRecord, ComponentRunRecord, MemoryStore, MetricRecord, Store};

    fn seeded() -> MemoryStore {
        let store = MemoryStore::new();
        store
            .register_component(ComponentRecord::named("etl"))
            .unwrap();
        store
            .register_component(ComponentRecord::named("train"))
            .unwrap();
        for i in 0..20u64 {
            let comp = if i % 2 == 0 { "etl" } else { "train" };
            store
                .log_run(ComponentRunRecord {
                    component: comp.into(),
                    start_ms: 1_000 + i,
                    end_ms: 1_050 + i,
                    ..Default::default()
                })
                .unwrap();
            store
                .log_metric(MetricRecord {
                    component: comp.into(),
                    run_id: None,
                    name: "acc".into(),
                    value: 0.5 + i as f64 / 100.0,
                    ts_ms: 1_050 + i,
                })
                .unwrap();
        }
        store
    }

    #[test]
    fn bind_matches_literal_sql() {
        let store = seeded();
        let stmt =
            prepare("SELECT id, component FROM component_runs WHERE component = ? AND id < ?")
                .unwrap();
        assert_eq!(stmt.param_count(), 2);
        let bound =
            execute_prepared(&store, &stmt, &[Value::Str("etl".into()), Value::Int(10)]).unwrap();
        let literal = execute(
            &store,
            "SELECT id, component FROM component_runs WHERE component = 'etl' AND id < 10",
        )
        .unwrap();
        assert_eq!(bound.columns, literal.columns);
        assert_eq!(bound.rows, literal.rows);
        assert!(!bound.rows.is_empty());
    }

    #[test]
    fn explain_routes_are_identical() {
        let store = seeded();
        let stmt = prepare("EXPLAIN SELECT * FROM component_runs WHERE component = ?").unwrap();
        assert!(stmt.is_explain());
        let bound = execute_prepared(&store, &stmt, &[Value::Str("etl".into())]).unwrap();
        let literal = execute(
            &store,
            "EXPLAIN SELECT * FROM component_runs WHERE component = 'etl'",
        )
        .unwrap();
        assert_eq!(bound.rows, literal.rows);
    }

    #[test]
    fn rebind_same_statement() {
        let store = seeded();
        let stmt = prepare("SELECT count(*) AS n FROM component_runs WHERE component = ?").unwrap();
        let a = execute_prepared(&store, &stmt, &[Value::Str("etl".into())]).unwrap();
        let b = execute_prepared(&store, &stmt, &[Value::Str("train".into())]).unwrap();
        assert_eq!(a.rows[0][0], Value::Int(10));
        assert_eq!(b.rows[0][0], Value::Int(10));
    }

    #[test]
    fn param_count_mismatch_is_an_error() {
        let store = seeded();
        let stmt = prepare("SELECT * FROM component_runs WHERE id = ?").unwrap();
        let err = execute_prepared(&store, &stmt, &[]).unwrap_err();
        assert!(matches!(err, QueryError::Semantic(_)));
        let err = execute_prepared(&store, &stmt, &[Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(err, QueryError::Semantic(_)));
    }

    #[test]
    fn unbound_placeholder_rejected_by_direct_execute() {
        let store = seeded();
        let err = execute(&store, "SELECT * FROM component_runs WHERE id = ?").unwrap_err();
        assert!(err.to_string().contains("placeholder"));
    }
}
