//! Synthetic NYC-taxi trip generator.
//!
//! Substitute for the paper's §5 NYC TLC Trip Record dataset (see
//! DESIGN.md): reproduces the schema and statistical structure of taxi
//! trips — log-normal distances, fare = flagfall + per-km + per-minute,
//! tip behaviour correlated with payment type, hour, and trip length —
//! plus *controllable* drift so the paper's debugging walkthroughs become
//! deterministic scenarios. The demo task is the paper's: predict whether
//! the rider tips at least 20% of the fare.

use mltrace_pipeline::{Column, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated trip.
#[derive(Debug, Clone, PartialEq)]
pub struct Trip {
    /// Unique trip id.
    pub id: u64,
    /// Pickup time, epoch milliseconds.
    pub pickup_ms: u64,
    /// Trip distance in kilometres.
    pub distance_km: f64,
    /// Trip duration in minutes.
    pub duration_min: f64,
    /// Metered fare in dollars.
    pub fare: f64,
    /// Passenger count.
    pub passengers: i64,
    /// Pickup borough.
    pub borough: &'static str,
    /// Pickup hour of day (0–23).
    pub hour: i64,
    /// Paid by card (tips on cash trips go unrecorded, as in the real
    /// TLC data).
    pub paid_card: bool,
    /// Recorded tip in dollars.
    pub tip: f64,
}

impl Trip {
    /// The demo label: tip at least 20% of the fare (§5).
    pub fn high_tip(&self) -> bool {
        self.fare > 0.0 && self.tip >= 0.2 * self.fare
    }
}

/// Boroughs with fixed sampling weights (roughly trip-volume ordered).
pub const BOROUGHS: [(&str, f64); 4] = [
    ("manhattan", 0.62),
    ("brooklyn", 0.18),
    ("queens", 0.14),
    ("bronx", 0.06),
];

/// Drift applied progressively over the generated stream — the covariate
/// shift behind Example 4.2 ("it takes about a month for prediction
/// quality to degrade").
#[derive(Debug, Clone, Copy, Default)]
pub struct DriftProfile {
    /// Added to mean log-distance per generated trip (×1e-6 scale).
    pub distance_shift_per_trip: f64,
    /// Multiplied into the fare per generated trip (surge creep),
    /// applied as `(1 + x)^index`.
    pub fare_inflation_per_trip: f64,
    /// Added to the card-payment log-odds per trip (payment-mix shift).
    pub card_shift_per_trip: f64,
    /// Rotates the tipping log-odds' distance slope per trip — *concept*
    /// drift: the relationship between a feature and the label itself
    /// changes (centered on the mean distance so the base rate stays
    /// stable), which no amount of correct extrapolation can survive
    /// (Example 4.2's "prediction quality degrades enough to violate
    /// business SLAs").
    pub tip_shift_per_trip: f64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TripConfig {
    /// RNG seed; same seed → identical stream.
    pub seed: u64,
    /// First pickup timestamp, epoch milliseconds.
    pub start_ms: u64,
    /// Milliseconds between consecutive pickups.
    pub cadence_ms: u64,
    /// Progressive drift.
    pub drift: DriftProfile,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            seed: 7,
            start_ms: 1_600_000_000_000,
            cadence_ms: 60_000,
            drift: DriftProfile::default(),
        }
    }
}

/// Streaming trip generator.
pub struct TripGenerator {
    rng: StdRng,
    config: TripConfig,
    index: u64,
}

impl TripGenerator {
    /// Create a generator.
    pub fn new(config: TripConfig) -> Self {
        TripGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            index: 0,
        }
    }

    fn normal(&mut self) -> f64 {
        // Box–Muller.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Generate the next trip.
    pub fn next_trip(&mut self) -> Trip {
        let i = self.index;
        self.index += 1;
        let drift = self.config.drift;

        let hour = self.rng.gen_range(0..24i64);
        // Borough by weight.
        let mut pick: f64 = self.rng.gen_range(0.0..1.0);
        let mut borough = BOROUGHS[0].0;
        for (name, w) in BOROUGHS {
            if pick < w {
                borough = name;
                break;
            }
            pick -= w;
        }
        // Log-normal distance, mean log drifts upward over time.
        let mu = 1.0 + drift.distance_shift_per_trip * i as f64;
        let distance_km = (mu + 0.6 * self.normal()).exp().clamp(0.3, 60.0);
        // Duration: urban speed ~ 18 km/h ± traffic noise, rush hours slower.
        let rush = if (7..10).contains(&hour) || (16..19).contains(&hour) {
            1.35
        } else {
            1.0
        };
        let duration_min =
            (distance_km / 18.0 * 60.0 * rush * (1.0 + 0.15 * self.normal().abs())).max(1.0);
        // Fare: flagfall + per-km + per-minute, with drifting surge.
        let surge = (1.0 + drift.fare_inflation_per_trip).powf(i as f64);
        let fare = ((3.0 + 1.75 * distance_km + 0.35 * duration_min) * surge).max(3.0);
        let passengers = 1 + (self.rng.gen_range(0.0..1.0f64).powi(3) * 4.0) as i64;
        // Payment type: card-heavy, drifting log-odds.
        let card_logit = 1.2 + drift.card_shift_per_trip * i as f64;
        let paid_card = self.rng.gen_range(0.0..1.0) < sigmoid(card_logit);
        // Tip: cash tips unrecorded; card tip fraction depends on trip
        // profile (the learnable signal).
        let tip = if paid_card {
            let gen_logit = 1.4 - 0.35 * distance_km + 0.5 * f64::from(!(2..18).contains(&hour))
                - 0.5 * f64::from(borough == "bronx")
                + drift.tip_shift_per_trip * i as f64 * (distance_km - 3.3)
                + 0.3 * self.normal();
            let tips_well = self.rng.gen_range(0.0..1.0) < sigmoid(gen_logit);
            let fraction = if tips_well {
                0.24 + 0.04 * self.normal().abs()
            } else {
                (0.08 + 0.02 * self.normal()).max(0.0)
            };
            fare * fraction
        } else {
            0.0
        };

        Trip {
            id: i,
            pickup_ms: self.config.start_ms + i * self.config.cadence_ms,
            distance_km,
            duration_min,
            fare,
            passengers,
            borough,
            hour,
            paid_card,
            tip,
        }
    }

    /// Generate a batch.
    pub fn take(&mut self, n: usize) -> Vec<Trip> {
        (0..n).map(|_| self.next_trip()).collect()
    }

    /// Trips generated so far.
    pub fn generated(&self) -> u64 {
        self.index
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Convert trips to the raw-data frame shape flowing into the pipeline.
pub fn trips_to_frame(trips: &[Trip]) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "trip_id",
            Column::Int(trips.iter().map(|t| Some(t.id as i64)).collect()),
        ),
        (
            "pickup_ms",
            Column::Int(trips.iter().map(|t| Some(t.pickup_ms as i64)).collect()),
        ),
        (
            "distance_km",
            Column::Float(trips.iter().map(|t| t.distance_km).collect()),
        ),
        (
            "duration_min",
            Column::Float(trips.iter().map(|t| t.duration_min).collect()),
        ),
        (
            "fare",
            Column::Float(trips.iter().map(|t| t.fare).collect()),
        ),
        (
            "passengers",
            Column::Int(trips.iter().map(|t| Some(t.passengers)).collect()),
        ),
        (
            "borough",
            Column::Str(trips.iter().map(|t| Some(t.borough.to_string())).collect()),
        ),
        (
            "hour",
            Column::Int(trips.iter().map(|t| Some(t.hour)).collect()),
        ),
        (
            "paid_card",
            Column::Bool(trips.iter().map(|t| Some(t.paid_card)).collect()),
        ),
        ("tip", Column::Float(trips.iter().map(|t| t.tip).collect())),
        (
            "high_tip",
            Column::Bool(trips.iter().map(|t| Some(t.high_tip())).collect()),
        ),
    ])
    .expect("trip frame construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = TripGenerator::new(TripConfig::default());
        let mut b = TripGenerator::new(TripConfig::default());
        assert_eq!(a.take(50), b.take(50));
        let mut c = TripGenerator::new(TripConfig {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.take(50), c.take(50));
    }

    #[test]
    fn trips_look_like_taxi_trips() {
        let mut g = TripGenerator::new(TripConfig::default());
        let trips = g.take(5000);
        for t in &trips {
            assert!(t.distance_km >= 0.3 && t.distance_km <= 60.0);
            assert!(t.fare >= 3.0);
            assert!(t.duration_min >= 1.0);
            assert!((1..=5).contains(&t.passengers));
            assert!((0..24).contains(&t.hour));
            assert!(t.tip >= 0.0);
            if !t.paid_card {
                assert_eq!(t.tip, 0.0, "cash tips are unrecorded");
            }
        }
        // Label balance is learnable, not degenerate.
        let positives = trips.iter().filter(|t| t.high_tip()).count();
        let rate = positives as f64 / trips.len() as f64;
        assert!((0.15..0.75).contains(&rate), "high-tip rate {rate}");
        // Median fare in a plausible range.
        let mut fares: Vec<f64> = trips.iter().map(|t| t.fare).collect();
        fares.sort_by(|a, b| a.total_cmp(b));
        let median = fares[fares.len() / 2];
        assert!((5.0..40.0).contains(&median), "median fare {median}");
    }

    #[test]
    fn timestamps_advance_by_cadence() {
        let mut g = TripGenerator::new(TripConfig {
            start_ms: 1000,
            cadence_ms: 10,
            ..Default::default()
        });
        let trips = g.take(3);
        assert_eq!(trips[0].pickup_ms, 1000);
        assert_eq!(trips[2].pickup_ms, 1020);
        assert_eq!(g.generated(), 3);
    }

    #[test]
    fn drift_shifts_distance_distribution() {
        let mut stable = TripGenerator::new(TripConfig::default());
        let mut drifting = TripGenerator::new(TripConfig {
            drift: DriftProfile {
                distance_shift_per_trip: 5e-5,
                ..Default::default()
            },
            ..Default::default()
        });
        let early: f64 = drifting
            .take(2000)
            .iter()
            .map(|t| t.distance_km)
            .sum::<f64>()
            / 2000.0;
        let _ = stable.take(18000);
        let late: f64 = {
            let mut d2 = TripGenerator::new(TripConfig {
                drift: DriftProfile {
                    distance_shift_per_trip: 5e-5,
                    ..Default::default()
                },
                ..Default::default()
            });
            let _ = d2.take(18000);
            d2.take(2000).iter().map(|t| t.distance_km).sum::<f64>() / 2000.0
        };
        assert!(
            late > early * 1.5,
            "drift should lengthen trips: early {early}, late {late}"
        );
    }

    #[test]
    fn fare_inflation_drifts_fares() {
        let cfg = TripConfig {
            drift: DriftProfile {
                fare_inflation_per_trip: 2e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut g = TripGenerator::new(cfg);
        let early: f64 = g.take(1000).iter().map(|t| t.fare).sum::<f64>() / 1000.0;
        let _ = g.take(20_000);
        let late: f64 = g.take(1000).iter().map(|t| t.fare).sum::<f64>() / 1000.0;
        assert!(late > early * 1.2, "early {early}, late {late}");
    }

    #[test]
    fn frame_conversion_preserves_shape() {
        let mut g = TripGenerator::new(TripConfig::default());
        let trips = g.take(100);
        let df = trips_to_frame(&trips);
        assert_eq!(df.num_rows(), 100);
        assert_eq!(df.num_columns(), 11);
        assert_eq!(df.column("fare").unwrap().null_count(), 0);
        let labels = df.float_column("high_tip").unwrap();
        let from_trips: Vec<f64> = trips
            .iter()
            .map(|t| if t.high_tip() { 1.0 } else { 0.0 })
            .collect();
        assert_eq!(labels, from_trips);
    }
}
