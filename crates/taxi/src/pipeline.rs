//! The paper's §5 demo, end to end: an eight-component pipeline that
//! "predicts, for the NYC Taxicab dataset, whether a rider will give a
//! high tip (at least 20% of the fare)", fully wrapped in mltrace.
//!
//! Components (each box of Figure 1 instantiated):
//! `ingest` → `clean` → `featurize_offline` → `split` → `train` →
//! (`featurize_online` → `inference`)* → `monitor`.
//!
//! The driver owns the simulated clock, the trip generator, and the
//! shared fitted state (featurizer, model, drift references) that trigger
//! closures read through an `Arc<RwLock<_>>`.

use crate::features::{labels, Featurizer};
use crate::gen::{trips_to_frame, DriftProfile, TripConfig, TripGenerator};
use crate::scenarios::Incident;
use mltrace_core::library::{MinCountTrigger, NoMissingTrigger, OverfitTrigger};
use mltrace_core::{
    ComponentDef, CoreError, FnTrigger, Mltrace, PipelineMonitor, RunSpec, TriggerOutcome,
};
use mltrace_metrics::{
    roc_auc, AlertRule, Comparator, ConfusionMatrix, DriftConfig, DriftDetector, DriftMethod,
    Severity, Sla,
};
use mltrace_pipeline::{train_test_split, DataFrame, LogisticConfig, LogisticRegression};
use mltrace_store::{ManualClock, RunId, Value};
use parking_lot::RwLock;
use std::sync::Arc;

/// Names of the demo pipeline's components.
pub const COMPONENTS: [&str; 8] = [
    "ingest",
    "clean",
    "featurize_offline",
    "featurize_online",
    "split",
    "train",
    "inference",
    "monitor",
];

/// Shared fitted state read by trigger closures.
#[derive(Default)]
struct SharedState {
    featurizer: Option<Featurizer>,
    featurizer_artifact: Option<String>,
    featurizer_io: Option<String>,
    model: Option<LogisticRegression>,
    model_io: Option<String>,
    prediction_reference: Option<DriftDetector>,
    offline_feature_mean: Option<f64>,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Trip generator seed.
    pub seed: u64,
    /// Progressive drift applied to generated trips.
    pub drift: DriftProfile,
    /// Simulated milliseconds the clock advances per component run.
    pub step_ms: u64,
    /// Accuracy floor for the inference SLA (§4.1's business metric).
    pub accuracy_floor: f64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            seed: 7,
            drift: DriftProfile::default(),
            step_ms: 60_000,
            accuracy_floor: 0.70,
        }
    }
}

/// Result of a training cycle.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Accuracy on the training split.
    pub train_accuracy: f64,
    /// Accuracy on the held-out split.
    pub test_accuracy: f64,
    /// ROC-AUC on the held-out split.
    pub auc: f64,
    /// Run id of the train component run.
    pub run_id: RunId,
    /// Name of the model artifact pointer.
    pub model_io: String,
}

/// Options for a serving batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Fault injected upstream of the online featurizer.
    pub incident: Incident,
    /// Emit one output pointer per trip (`pred-<id>`) instead of one per
    /// batch — needed for slice-level tracing (Example 4.4).
    pub per_trip_outputs: bool,
}

/// Result of a serving batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Batch sequence number.
    pub batch: u64,
    /// Accuracy against (delayed) ground truth.
    pub accuracy: f64,
    /// Positive-class probabilities.
    pub probabilities: Vec<f64>,
    /// Output pointer names produced (one, or one per trip).
    pub outputs: Vec<String>,
    /// Run id of the inference run.
    pub run_id: RunId,
}

/// Result of a monitor pass.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Whether the accuracy SLA is currently violated.
    pub sla_violated: bool,
    /// Mean accuracy observed in the SLA window (None = no data).
    pub observed_accuracy: Option<f64>,
    /// Alerts fired by this pass.
    pub alerts: Vec<String>,
}

/// The demo pipeline driver.
pub struct TaxiPipeline {
    ml: Mltrace,
    clock: Arc<ManualClock>,
    generator: TripGenerator,
    state: Arc<RwLock<SharedState>>,
    alerting: PipelineMonitor,
    sla: Sla,
    config: TaxiConfig,
    batch: u64,
    train_cycle: u64,
}

impl TaxiPipeline {
    /// Build the pipeline: instantiate mltrace, register all eight
    /// components with their library triggers.
    pub fn new(config: TaxiConfig) -> Self {
        let clock = ManualClock::starting_at(1_600_000_000_000);
        let ml = Mltrace::with_clock(clock.clone());
        let state: Arc<RwLock<SharedState>> = Arc::new(RwLock::new(SharedState::default()));

        // ingest: sanity-check batch size.
        ml.register(
            ComponentDef::builder("ingest")
                .description("pull raw trip records from the source")
                .owner("data-eng")
                .after_run(MinCountTrigger {
                    var: "rows".into(),
                    min: 1.0,
                })
                .build(),
        )
        .expect("register ingest");

        // clean: the Figure 3a preprocessor — missing-value check on the
        // raw fare column before, count check after.
        ml.register(
            ComponentDef::builder("clean")
                .description("validate and clean raw trips")
                .owner("data-eng")
                .before_run(NoMissingTrigger {
                    var: "fare_raw".into(),
                    max_null_fraction: 0.05,
                })
                .after_run(MinCountTrigger {
                    var: "rows_out".into(),
                    min: 1.0,
                })
                .build(),
        )
        .expect("register clean");

        // featurize_offline: logs its post-transform feature mean for the
        // online path to compare against (Ex 4.3's propagated test).
        {
            let state = Arc::clone(&state);
            ml.register(
                ComponentDef::builder("featurize_offline")
                    .description("fit/apply the featurizer for training")
                    .owner("ml-platform")
                    .after_run(FnTrigger::new("record_feature_profile", move |ctx| {
                        let Some(mean) =
                            ctx.capture("distance_feature_mean").and_then(Value::as_f64)
                        else {
                            return TriggerOutcome::fail("feature mean not captured");
                        };
                        state.write().offline_feature_mean = Some(mean);
                        TriggerOutcome::pass(format!("distance feature mean {mean:.4}"))
                            .with_metric("feature_mean:distance_km", mean)
                    }))
                    .build(),
            )
            .expect("register featurize_offline");
        }

        // featurize_online: compares its profile to the offline one.
        {
            let state = Arc::clone(&state);
            ml.register(
                ComponentDef::builder("featurize_online")
                    .description("apply the fitted featurizer at serving time")
                    .owner("ml-platform")
                    .after_run(FnTrigger::new("offline_online_consistency", move |ctx| {
                        let Some(online) =
                            ctx.capture("distance_feature_mean").and_then(Value::as_f64)
                        else {
                            return TriggerOutcome::fail("feature mean not captured");
                        };
                        let offline = state.read().offline_feature_mean;
                        let Some(offline) = offline else {
                            return TriggerOutcome::pass("no offline profile yet");
                        };
                        // Standardized features: offline mean ≈ 0, so an
                        // absolute gap works where a relative one cannot.
                        let gap = (online - offline).abs();
                        let outcome = if gap <= 0.5 {
                            TriggerOutcome::pass(format!(
                                "online/offline distance profile gap {gap:.4}"
                            ))
                        } else {
                            TriggerOutcome::fail(format!(
                                "online featurization disagrees with offline: gap {gap:.4}"
                            ))
                        };
                        outcome
                            .with_value("gap", gap)
                            .with_metric("feature_gap:distance_km", gap)
                    }))
                    .build(),
            )
            .expect("register featurize_online");
        }

        // split: leakage check runs inside `train` captures; split itself
        // verifies both halves are non-trivial.
        ml.register(
            ComponentDef::builder("split")
                .description("train/test split")
                .owner("ml-platform")
                .after_run(MinCountTrigger {
                    var: "test_rows".into(),
                    min: 10.0,
                })
                .build(),
        )
        .expect("register split");

        // train: the paper's TrainingComponent — leakage before,
        // overfitting after.
        ml.register(
            ComponentDef::builder("train")
                .description("fit the tip classifier")
                .owner("ml-platform")
                .before_run(mltrace_core::library::LeakageTrigger {
                    train_var: "train_ids".into(),
                    test_var: "test_ids".into(),
                })
                .after_run(OverfitTrigger {
                    train_metric_var: "train_accuracy".into(),
                    test_metric_var: "test_accuracy".into(),
                    max_gap: 0.08,
                })
                .build(),
        )
        .expect("register train");

        // inference: drift check on prediction distribution vs the
        // training-time reference, plus the accuracy floor (logs the
        // accuracy metric either way).
        {
            let state = Arc::clone(&state);
            let floor = config.accuracy_floor;
            ml.register(
                ComponentDef::builder("inference")
                    .description("serve tip predictions")
                    .owner("ml-serving")
                    .after_run(FnTrigger::new("prediction_drift", move |ctx| {
                        let Some(preds) = ctx.numeric_capture("probabilities") else {
                            return TriggerOutcome::fail("probabilities not captured");
                        };
                        let guard = state.read();
                        let Some(detector) = guard.prediction_reference.as_ref() else {
                            return TriggerOutcome::pass("no reference yet");
                        };
                        let finding = detector.check(DriftMethod::Ks, &preds);
                        let outcome = if finding.drifted {
                            TriggerOutcome::fail(format!(
                                "prediction drift: KS {:.4}",
                                finding.score
                            ))
                        } else {
                            TriggerOutcome::pass(format!(
                                "predictions stable: KS {:.4}",
                                finding.score
                            ))
                        };
                        outcome
                            .with_value("ks", finding.score)
                            .with_metric("drift_ks:predictions", finding.score)
                    }))
                    .after_run(mltrace_core::library::MetricFloorTrigger {
                        var: "accuracy".into(),
                        metric: "accuracy".into(),
                        floor,
                    })
                    .build(),
            )
            .expect("register inference");
        }

        ml.register(
            ComponentDef::builder("monitor")
                .description("evaluate SLAs over the metric history")
                .owner("ml-platform")
                .build(),
        )
        .expect("register monitor");

        let sla = Sla::mean_at_least("tip-accuracy-sla", "accuracy", config.accuracy_floor, 5);
        // Alerts journal through the store and fold into incidents; no
        // quiet-period auto-resolution — the demo resolves explicitly.
        let mut alerting = PipelineMonitor::new(0);
        alerting.add_rule(AlertRule {
            id: "tip-accuracy-sla".into(),
            metric: "accuracy_window_mean".into(),
            comparator: Comparator::Gte,
            threshold: config.accuracy_floor,
            severity: Severity::Page,
            cooldown_ms: 0,
        });

        let generator = TripGenerator::new(TripConfig {
            seed: config.seed,
            start_ms: 1_600_000_000_000,
            cadence_ms: 1_000,
            drift: config.drift,
        });

        TaxiPipeline {
            ml,
            clock,
            generator,
            state,
            alerting,
            sla,
            config,
            batch: 0,
            train_cycle: 0,
        }
    }

    /// The observability handle.
    pub fn ml(&self) -> &Mltrace {
        &self.ml
    }

    /// The simulated clock.
    pub fn clock(&self) -> &Arc<ManualClock> {
        &self.clock
    }

    /// Alerting + incident state accumulated by monitor passes.
    pub fn alerting(&self) -> &PipelineMonitor {
        &self.alerting
    }

    fn step(&self) {
        self.clock.advance(self.config.step_ms);
    }

    /// Components `ingest` + `clean`: generate `n` trips, apply the
    /// incident, validate, and clean. Returns the cleaned frame.
    pub fn ingest(&mut self, n: usize, incident: Incident) -> Result<DataFrame, CoreError> {
        let batch = self.batch;
        let raw_name = format!("raw_trips-{batch}.csv");
        let trips = self.generator.take(n);
        let raw = incident.apply(&trips_to_frame(&trips), self.config.seed ^ batch);

        let raw_rows = raw.num_rows();
        self.ml.run(
            "ingest",
            RunSpec::new()
                .output(raw_name.clone())
                .capture("rows", raw_rows)
                .code("ingest-v1"),
            move |ctx| {
                ctx.set_metadata("source", "trip-generator");
                ctx.log_metric("rows", raw_rows as f64);
                Ok(())
            },
        )?;
        self.step();

        let clean_name = format!("clean_trips-{batch}.csv");
        let fare_raw = Value::List(
            raw.float_column("fare")
                .expect("fare column")
                .into_iter()
                .map(Value::Float)
                .collect(),
        );
        let raw_clone = raw.clone();
        let report = self.ml.run(
            "clean",
            RunSpec::new()
                .input(raw_name)
                .output(clean_name)
                .capture("fare_raw", fare_raw)
                .code("clean-v1"),
            move |ctx| {
                // Drop rows with null fares; everything else imputes later.
                let fares = raw_clone.float_column("fare").expect("fare column");
                let mask: Vec<bool> = fares.iter().map(|f| f.is_finite()).collect();
                let cleaned = raw_clone.filter(&mask).expect("mask fits");
                ctx.capture("rows_out", cleaned.num_rows());
                ctx.log_metric("rows", cleaned.num_rows() as f64);
                Ok(cleaned)
            },
        )?;
        self.step();
        Ok(report.value)
    }

    /// Components `featurize_offline` + `split` + `train`: fit (or reuse)
    /// the featurizer, split, train the classifier, store artifacts, and
    /// snapshot the drift references.
    ///
    /// `refit_featurizer = false` reproduces Example 4.4's stale
    /// preprocessor: the model retrains but the featurizer's fitted
    /// statistics stay frozen.
    pub fn train(
        &mut self,
        df: &DataFrame,
        refit_featurizer: bool,
    ) -> Result<TrainReport, CoreError> {
        let cycle = self.train_cycle;
        self.train_cycle += 1;
        let clean_name = format!("clean_trips-{}.csv", self.batch);
        let features_name = format!("train_features-{cycle}.csv");
        let featurizer_name = "featurizer.json".to_string();

        // featurize_offline
        let state = Arc::clone(&self.state);
        let df_body = df.clone();
        let featurizer_out = featurizer_name.clone();
        let report = self.ml.run(
            "featurize_offline",
            RunSpec::new()
                .input(clean_name.clone())
                .output(features_name.clone())
                .code(if refit_featurizer {
                    "featurize-v2-refit"
                } else {
                    "featurize-v1"
                }),
            move |ctx| {
                let mut guard = state.write();
                if refit_featurizer || guard.featurizer.is_none() {
                    let fitted =
                        Featurizer::fit(&df_body).map_err(|e| format!("featurizer fit: {e}"))?;
                    let bytes = serde_json::to_vec(&fitted).expect("featurizer serializes");
                    let artifact = ctx.save_artifact(featurizer_out.clone(), &bytes);
                    guard.featurizer = Some(fitted);
                    guard.featurizer_artifact = Some(artifact);
                    guard.featurizer_io = Some(featurizer_out.clone());
                } else {
                    // Stale path: reuse the old artifact as an input.
                    ctx.add_input(featurizer_out.clone());
                }
                let featurizer = guard.featurizer.clone().expect("featurizer fitted");
                drop(guard);
                let matrix = featurizer
                    .transform(&df_body)
                    .map_err(|e| format!("transform: {e}"))?;
                let means = Featurizer::feature_means(&matrix);
                ctx.capture("distance_feature_mean", means[0]);
                ctx.log_metric("rows", matrix.len() as f64);
                Ok(matrix)
            },
        )?;
        let matrix = report.value;
        self.step();

        // split
        let labels_all = labels(df).map_err(|e| CoreError::Invalid(e.to_string()))?;
        let n = matrix.len();
        let train_name = format!("train_split-{cycle}.csv");
        let test_name = format!("test_split-{cycle}.csv");
        let split_seed = 100 + cycle;
        let split_report = self.ml.run(
            "split",
            RunSpec::new()
                .input(features_name.clone())
                .output(train_name.clone())
                .output(test_name.clone())
                .code("split-v1"),
            move |ctx| {
                let idx_frame = DataFrame::from_columns(vec![(
                    "idx",
                    mltrace_pipeline::Column::Int((0..n as i64).map(Some).collect()),
                )])
                .expect("index frame");
                let (train_idx, test_idx) = train_test_split(&idx_frame, 0.25, split_seed);
                let to_ids = |f: &DataFrame| -> Vec<i64> {
                    f.float_column("idx")
                        .expect("idx")
                        .into_iter()
                        .map(|v| v as i64)
                        .collect()
                };
                let train_ids = to_ids(&train_idx);
                let test_ids = to_ids(&test_idx);
                ctx.capture(
                    "train_ids",
                    Value::List(train_ids.iter().map(|&i| Value::Int(i)).collect()),
                );
                ctx.capture(
                    "test_ids",
                    Value::List(test_ids.iter().map(|&i| Value::Int(i)).collect()),
                );
                ctx.capture("test_rows", test_ids.len());
                Ok((train_ids, test_ids))
            },
        )?;
        let (train_ids, test_ids) = split_report.value;
        self.step();

        // train
        let model_name = format!("tip_model-{cycle}.json");
        let take = |ids: &[i64]| -> (Vec<Vec<f64>>, Vec<bool>) {
            (
                ids.iter().map(|&i| matrix[i as usize].clone()).collect(),
                ids.iter().map(|&i| labels_all[i as usize]).collect(),
            )
        };
        let (train_x, train_y) = take(&train_ids);
        let (test_x, test_y) = take(&test_ids);
        let state = Arc::clone(&self.state);
        let model_out = model_name.clone();
        let train_ids_v = Value::List(train_ids.iter().map(|&i| Value::Int(i)).collect());
        let test_ids_v = Value::List(test_ids.iter().map(|&i| Value::Int(i)).collect());
        let train_report = self.ml.run(
            "train",
            RunSpec::new()
                .input(train_name)
                .input(test_name)
                .output(model_name.clone())
                .capture("train_ids", train_ids_v)
                .capture("test_ids", test_ids_v)
                .code("train-logistic-v1"),
            move |ctx| {
                let model = LogisticRegression::fit(
                    &train_x,
                    &train_y,
                    LogisticConfig {
                        epochs: 60,
                        ..Default::default()
                    },
                )
                .map_err(|e| format!("fit: {e}"))?;
                let accuracy = |x: &[Vec<f64>], y: &[bool]| -> f64 {
                    let preds = model.predict(x).expect("predict");
                    ConfusionMatrix::from_pairs(&preds, y).accuracy()
                };
                let train_acc = accuracy(&train_x, &train_y);
                let test_acc = accuracy(&test_x, &test_y);
                let probs = model.predict_proba(&test_x).expect("proba");
                let auc = roc_auc(&probs, &test_y);
                ctx.capture("train_accuracy", train_acc);
                ctx.capture("test_accuracy", test_acc);
                ctx.log_metric("train_accuracy", train_acc);
                ctx.log_metric("test_accuracy", test_acc);
                ctx.log_metric("auc", auc);
                let bytes = serde_json::to_vec(&model).expect("model serializes");
                ctx.save_artifact(model_out.clone(), &bytes);
                let mut guard = state.write();
                guard.model = Some(model);
                guard.model_io = Some(model_out.clone());
                // Snapshot the prediction distribution as drift reference.
                guard.prediction_reference =
                    Some(DriftDetector::fit(&probs, DriftConfig::default()));
                Ok((train_acc, test_acc, auc, probs))
            },
        )?;
        self.step();
        let (train_accuracy, test_accuracy, auc, _probs) = train_report.value;
        Ok(TrainReport {
            train_accuracy,
            test_accuracy,
            auc,
            run_id: train_report.run_id,
            model_io: model_name,
        })
    }

    /// Components `featurize_online` + `inference`: featurize a serving
    /// batch (optionally through an incident) and predict. Ground-truth
    /// labels are scored immediately, simulating delayed feedback
    /// arriving in time for the run's accuracy metric.
    pub fn serve(&mut self, df: &DataFrame, opts: ServeOptions) -> Result<ServeReport, CoreError> {
        let batch = self.batch;
        self.batch += 1;
        let skewed = opts.incident.apply(df, self.config.seed ^ (batch << 8));
        let clean_name = format!("clean_trips-{batch}.csv");
        let online_features = format!("online_features-{batch}.csv");

        let (featurizer, featurizer_io, model, model_io) = {
            let guard = self.state.read();
            (
                guard
                    .featurizer
                    .clone()
                    .ok_or_else(|| CoreError::Invalid("serve before train".into()))?,
                guard.featurizer_io.clone().unwrap_or_default(),
                guard
                    .model
                    .clone()
                    .ok_or_else(|| CoreError::Invalid("serve before train".into()))?,
                guard.model_io.clone().unwrap_or_default(),
            )
        };

        // featurize_online
        let skew_body = skewed.clone();
        let report = self.ml.run(
            "featurize_online",
            RunSpec::new()
                .input(clean_name)
                .input(featurizer_io)
                .output(online_features.clone())
                .code("featurize-online-v1"),
            move |ctx| {
                let matrix = featurizer
                    .transform(&skew_body)
                    .map_err(|e| format!("transform: {e}"))?;
                let means = Featurizer::feature_means(&matrix);
                ctx.capture("distance_feature_mean", means[0]);
                Ok(matrix)
            },
        )?;
        let matrix = report.value;
        self.step();

        // inference
        let truth = labels(df).map_err(|e| CoreError::Invalid(e.to_string()))?;
        let trip_ids: Vec<i64> = df
            .float_column("trip_id")
            .map_err(|e| CoreError::Invalid(e.to_string()))?
            .into_iter()
            .map(|v| v as i64)
            .collect();
        let outputs: Vec<String> = if opts.per_trip_outputs {
            trip_ids.iter().map(|id| format!("pred-{id}")).collect()
        } else {
            vec![format!("predictions-{batch}.csv")]
        };
        let mut spec = RunSpec::new()
            .input(online_features)
            .input(model_io)
            .code("inference-v1")
            .notes(format!("batch {batch}"));
        for o in &outputs {
            spec = spec.output(o.clone());
        }
        let truth_body = truth.clone();
        let infer_report = self.ml.run("inference", spec, move |ctx| {
            let probs = model.predict_proba(&matrix).map_err(|e| format!("{e}"))?;
            let preds: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
            let accuracy = ConfusionMatrix::from_pairs(&preds, &truth_body).accuracy();
            ctx.capture(
                "probabilities",
                Value::List(probs.iter().map(|&p| Value::Float(p)).collect()),
            );
            ctx.capture("accuracy", accuracy);
            ctx.log_metric(
                "mean_prediction",
                probs.iter().sum::<f64>() / probs.len().max(1) as f64,
            );
            // Per-prediction points feed the store's monitoring plane:
            // enough volume per batch to roll count-based windows, so a
            // serving-skew incident surfaces as a scored drift event
            // without any labels (§4.3).
            for &p in &probs {
                ctx.log_metric("prediction", p);
            }
            Ok((probs, accuracy))
        })?;
        self.step();
        let (probabilities, accuracy) = infer_report.value;
        Ok(ServeReport {
            batch,
            accuracy,
            probabilities,
            outputs,
            run_id: infer_report.run_id,
        })
    }

    /// Convenience: ingest then serve one batch.
    pub fn ingest_and_serve(
        &mut self,
        n: usize,
        ingest_incident: Incident,
        opts: ServeOptions,
    ) -> Result<ServeReport, CoreError> {
        let df = self.ingest(n, ingest_incident)?;
        self.serve(&df, opts)
    }

    /// Component `monitor`: evaluate the accuracy SLA over the metric
    /// history and fire a page on violation (§4.1: SLA-gated alerting).
    pub fn monitor(&mut self) -> Result<MonitorReport, CoreError> {
        let series: Vec<f64> = self
            .ml
            .store()
            .metrics("inference", "accuracy")?
            .into_iter()
            .map(|m| m.value)
            .collect();
        let status = self.sla.evaluate(&series);
        let observed = status.observed();
        let violated = status.is_violated();
        let now = self.ml.now_ms();
        let sla_name = self.sla.name.clone();
        self.ml
            .run("monitor", RunSpec::new().code("monitor-v1"), move |ctx| {
                ctx.set_metadata("sla", sla_name);
                ctx.set_metadata("violated", violated);
                if let Some(acc) = observed {
                    ctx.log_metric("accuracy_window_mean", acc);
                }
                Ok(())
            })?;
        self.step();
        let mut fired = Vec::new();
        if let Some(acc) = observed {
            let alerts = self.alerting.observe(
                self.ml.store().as_ref(),
                "monitor",
                "accuracy_window_mean",
                acc,
                now,
            )?;
            for alert in alerts {
                fired.push(alert.rule_id);
            }
        }
        Ok(MonitorReport {
            sla_violated: violated,
            observed_accuracy: observed,
            alerts: fired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltrace_core::Commands;
    use mltrace_store::RunStatus;

    fn trained_pipeline() -> (TaxiPipeline, TrainReport) {
        let mut p = TaxiPipeline::new(TaxiConfig::default());
        let df = p.ingest(2000, Incident::None).unwrap();
        let report = p.train(&df, true).unwrap();
        (p, report)
    }

    #[test]
    fn healthy_cycle_trains_and_serves() {
        let (mut p, train) = trained_pipeline();
        assert!(
            train.test_accuracy > 0.60,
            "model should beat chance: {}",
            train.test_accuracy
        );
        assert!(train.auc > 0.60, "auc {}", train.auc);
        let serve = p
            .ingest_and_serve(500, Incident::None, ServeOptions::default())
            .unwrap();
        assert!(serve.accuracy > 0.55, "serving accuracy {}", serve.accuracy);
        // All eight components have runs or at least registrations.
        let store = p.ml().store();
        for c in [
            "ingest",
            "clean",
            "featurize_offline",
            "featurize_online",
            "split",
            "train",
            "inference",
        ] {
            assert!(
                !store.runs_for_component(c).unwrap().is_empty(),
                "component {c} should have run"
            );
        }
        let monitor = p.monitor().unwrap();
        assert!(!monitor.sla_violated, "healthy pipeline meets SLA");
        assert!(monitor.alerts.is_empty());
    }

    #[test]
    fn lineage_connects_predictions_to_ingest() {
        let (mut p, _train) = trained_pipeline();
        let serve = p
            .ingest_and_serve(300, Incident::None, ServeOptions::default())
            .unwrap();
        let mut cmds = Commands::new(p.ml());
        let trace = cmds.trace(&serve.outputs[0]).unwrap();
        let components: Vec<String> = trace.runs().into_iter().map(|(c, _)| c).collect();
        assert!(components.contains(&"inference".to_string()));
        assert!(components.contains(&"featurize_online".to_string()));
        assert!(components.contains(&"train".to_string()), "{components:?}");
        assert!(components.contains(&"clean".to_string()));
        assert!(components.contains(&"ingest".to_string()));
    }

    #[test]
    fn null_spike_fails_clean_trigger() {
        let (mut p, _train) = trained_pipeline();
        let df = p
            .ingest(500, Incident::NullSpike { fraction: 0.4 })
            .unwrap();
        // The clean run logged a failed no_missing trigger.
        let store = p.ml().store();
        let clean_run = store.latest_run("clean").unwrap().unwrap();
        assert_eq!(clean_run.status, RunStatus::TriggerFailed);
        let failing: Vec<&str> = clean_run
            .triggers
            .iter()
            .filter(|t| !t.passed)
            .map(|t| t.trigger.as_str())
            .collect();
        assert_eq!(failing, vec!["no_missing"]);
        // Cleaned frame dropped the nulls.
        assert_eq!(df.column("fare").unwrap().null_count(), 0);
    }

    #[test]
    fn serve_skew_fails_consistency_trigger() {
        let (mut p, _train) = trained_pipeline();
        let df = p.ingest(500, Incident::None).unwrap();
        let _ = p
            .serve(
                &df,
                ServeOptions {
                    incident: Incident::ServeSkew { scale: 1000.0 },
                    per_trip_outputs: false,
                },
            )
            .unwrap();
        let run = p
            .ml()
            .store()
            .latest_run("featurize_online")
            .unwrap()
            .unwrap();
        assert_eq!(run.status, RunStatus::TriggerFailed);
        assert!(run
            .triggers
            .iter()
            .any(|t| t.trigger == "offline_online_consistency" && !t.passed));
    }

    #[test]
    fn serve_before_train_rejected() {
        let mut p = TaxiPipeline::new(TaxiConfig::default());
        let df = p.ingest(100, Incident::None).unwrap();
        assert!(matches!(
            p.serve(&df, ServeOptions::default()),
            Err(CoreError::Invalid(_))
        ));
    }

    #[test]
    fn per_trip_outputs_enable_slice_tracing() {
        let (mut p, _train) = trained_pipeline();
        let serve = p
            .ingest_and_serve(
                20,
                Incident::None,
                ServeOptions {
                    incident: Incident::None,
                    per_trip_outputs: true,
                },
            )
            .unwrap();
        assert_eq!(serve.outputs.len(), 20);
        let mut cmds = Commands::new(p.ml());
        let t = cmds.trace(&serve.outputs[3]).unwrap();
        assert_eq!(t.component, "inference");
    }

    #[test]
    fn stale_featurizer_keeps_old_artifact() {
        let (mut p, _train) = trained_pipeline();
        let artifact_before = p.state.read().featurizer_artifact.clone().unwrap();
        let df = p.ingest(1000, Incident::None).unwrap();
        // Retrain without refitting the featurizer (Ex 4.4 setup).
        let _ = p.train(&df, false).unwrap();
        let artifact_after = p.state.read().featurizer_artifact.clone().unwrap();
        assert_eq!(artifact_before, artifact_after, "featurizer not refit");
        // The second featurize_offline run consumed the old featurizer.
        let store = p.ml().store();
        let run = store.latest_run("featurize_offline").unwrap().unwrap();
        assert!(run.inputs.contains(&"featurizer.json".to_string()));
    }

    #[test]
    fn sla_violation_pages_once() {
        // Tight SLA: the skewed model degrades to majority-class
        // prediction (~0.75), below a 0.80 floor.
        let mut p = TaxiPipeline::new(TaxiConfig {
            accuracy_floor: 0.80,
            ..Default::default()
        });
        let df = p.ingest(2000, Incident::None).unwrap();
        let train = p.train(&df, true).unwrap();
        assert!(train.test_accuracy > 0.60);
        // Serve five severely skewed batches: accuracy collapses.
        for _ in 0..5 {
            let df = p.ingest(300, Incident::None).unwrap();
            let _ = p
                .serve(
                    &df,
                    ServeOptions {
                        incident: Incident::ServeSkew { scale: -50.0 },
                        per_trip_outputs: false,
                    },
                )
                .unwrap();
        }
        let report = p.monitor().unwrap();
        assert!(
            report.sla_violated,
            "observed {:?}",
            report.observed_accuracy
        );
        assert_eq!(report.alerts, vec!["tip-accuracy-sla".to_string()]);
    }
}
