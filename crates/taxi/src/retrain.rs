//! Retraining policies — the remedy loop of Example 4.2: after observing
//! that "it takes about a month for prediction quality to degrade enough
//! to violate business SLAs", the user "encodes a trigger to retrain the
//! model monthly".
//!
//! [`RetrainPolicy`] decides, from the observability log alone, whether a
//! training cycle is due: on a schedule, on an SLA breach, or on
//! prediction drift. [`RetrainDriver`] applies the decision to a
//! [`TaxiPipeline`].

use crate::pipeline::{TaxiPipeline, TrainReport};
use crate::scenarios::Incident;
use mltrace_core::CoreError;
use mltrace_store::MS_PER_DAY;

/// When to retrain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainPolicy {
    /// Never retrain (the degradation baseline).
    Never,
    /// Retrain every `days` days (the paper's "monthly" trigger).
    Scheduled {
        /// Days between training cycles.
        days: u64,
    },
    /// Retrain when the trailing mean accuracy falls below a floor.
    OnSlaBreach {
        /// Accuracy floor.
        floor: f64,
        /// Trailing points averaged.
        window: usize,
    },
    /// Retrain when the logged prediction-drift score crosses a bound.
    OnDrift {
        /// Maximum tolerated KS score on predictions.
        max_ks: f64,
    },
}

/// One decision with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainDecision {
    /// No action needed.
    Keep,
    /// Retrain, with the reason string for the run notes.
    Retrain(String),
}

impl RetrainPolicy {
    /// Decide from the pipeline's observability log.
    pub fn decide(&self, p: &TaxiPipeline, last_train_ms: u64) -> RetrainDecision {
        let store = p.ml().store();
        match *self {
            RetrainPolicy::Never => RetrainDecision::Keep,
            RetrainPolicy::Scheduled { days } => {
                let age = p.ml().now_ms().saturating_sub(last_train_ms);
                if age >= days * MS_PER_DAY {
                    RetrainDecision::Retrain(format!(
                        "scheduled: {:.1} days since last training",
                        age as f64 / MS_PER_DAY as f64
                    ))
                } else {
                    RetrainDecision::Keep
                }
            }
            RetrainPolicy::OnSlaBreach { floor, window } => {
                let series: Vec<f64> = store
                    .metrics("inference", "accuracy")
                    .unwrap_or_default()
                    .iter()
                    .map(|m| m.value)
                    .collect();
                if series.is_empty() {
                    return RetrainDecision::Keep;
                }
                let tail = &series[series.len().saturating_sub(window.max(1))..];
                let mean = tail.iter().sum::<f64>() / tail.len() as f64;
                if mean < floor {
                    RetrainDecision::Retrain(format!(
                        "sla breach: window accuracy {mean:.3} < {floor:.3}"
                    ))
                } else {
                    RetrainDecision::Keep
                }
            }
            RetrainPolicy::OnDrift { max_ks } => {
                let last = store
                    .metrics("inference", "drift_ks:predictions")
                    .unwrap_or_default()
                    .last()
                    .map(|m| m.value);
                match last {
                    Some(score) if score > max_ks => RetrainDecision::Retrain(format!(
                        "prediction drift: KS {score:.3} > {max_ks:.3}"
                    )),
                    _ => RetrainDecision::Keep,
                }
            }
        }
    }
}

/// Applies a policy across serving cycles.
pub struct RetrainDriver {
    policy: RetrainPolicy,
    last_train_ms: u64,
    retrains: Vec<String>,
}

impl RetrainDriver {
    /// Driver with the given policy; `trained_at_ms` is the time of the
    /// initial training.
    pub fn new(policy: RetrainPolicy, trained_at_ms: u64) -> Self {
        RetrainDriver {
            policy,
            last_train_ms: trained_at_ms,
            retrains: Vec::new(),
        }
    }

    /// Check the policy and retrain (fresh data, refit featurizer) when
    /// due. Returns the training report when one happened.
    pub fn maybe_retrain(
        &mut self,
        p: &mut TaxiPipeline,
        training_rows: usize,
    ) -> Result<Option<TrainReport>, CoreError> {
        match self.policy.decide(p, self.last_train_ms) {
            RetrainDecision::Keep => Ok(None),
            RetrainDecision::Retrain(reason) => {
                let df = p.ingest(training_rows, Incident::None)?;
                let report = p.train(&df, true)?;
                self.last_train_ms = p.ml().now_ms();
                self.retrains.push(reason);
                Ok(Some(report))
            }
        }
    }

    /// Reasons for every retrain performed.
    pub fn retrain_reasons(&self) -> &[String] {
        &self.retrains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DriftProfile;
    use crate::pipeline::{ServeOptions, TaxiConfig};

    fn drifting_pipeline() -> TaxiPipeline {
        let mut p = TaxiPipeline::new(TaxiConfig {
            drift: DriftProfile {
                distance_shift_per_trip: 8e-5,
                tip_shift_per_trip: 1e-4,
                ..Default::default()
            },
            ..Default::default()
        });
        let df = p.ingest(2000, Incident::None).unwrap();
        p.train(&df, true).unwrap();
        p
    }

    #[test]
    fn scheduled_policy_fires_on_time() {
        let mut p = drifting_pipeline();
        let t0 = p.ml().now_ms();
        let mut driver = RetrainDriver::new(RetrainPolicy::Scheduled { days: 30 }, t0);
        assert!(driver.maybe_retrain(&mut p, 500).unwrap().is_none());
        p.clock().advance(31 * MS_PER_DAY);
        let report = driver.maybe_retrain(&mut p, 500).unwrap();
        assert!(report.is_some());
        assert!(driver.retrain_reasons()[0].contains("scheduled"));
        // Timer reset: immediately after, nothing fires.
        assert!(driver.maybe_retrain(&mut p, 500).unwrap().is_none());
    }

    #[test]
    fn never_policy_never_fires() {
        let mut p = drifting_pipeline();
        let mut driver = RetrainDriver::new(RetrainPolicy::Never, 0);
        p.clock().advance(365 * MS_PER_DAY);
        assert!(driver.maybe_retrain(&mut p, 500).unwrap().is_none());
    }

    #[test]
    fn sla_policy_fires_on_degradation_and_recovers() {
        let mut p = drifting_pipeline();
        let mut driver = RetrainDriver::new(
            RetrainPolicy::OnSlaBreach {
                floor: 0.62,
                window: 3,
            },
            p.ml().now_ms(),
        );
        // Serve under drift until the policy fires.
        let mut fired_at = None;
        let mut before = 0.0;
        for week in 0..12 {
            let r = p
                .ingest_and_serve(600, Incident::None, ServeOptions::default())
                .unwrap();
            before = r.accuracy;
            p.clock().advance(7 * MS_PER_DAY);
            if driver.maybe_retrain(&mut p, 2000).unwrap().is_some() {
                fired_at = Some(week);
                break;
            }
        }
        let week = fired_at.expect("drift must eventually breach the SLA");
        assert!(week >= 1, "should not fire on the first healthy week");
        assert!(driver.retrain_reasons()[0].contains("sla breach"));
        // Post-retrain accuracy beats the breach-time accuracy.
        let after = p
            .ingest_and_serve(600, Incident::None, ServeOptions::default())
            .unwrap();
        assert!(
            after.accuracy > before,
            "retrain should recover: {before:.3} → {:.3}",
            after.accuracy
        );
    }

    #[test]
    fn drift_policy_reads_logged_scores() {
        let mut p = drifting_pipeline();
        let mut driver = RetrainDriver::new(RetrainPolicy::OnDrift { max_ks: 0.15 }, 0);
        let mut fired = false;
        for _ in 0..12 {
            p.ingest_and_serve(600, Incident::None, ServeOptions::default())
                .unwrap();
            p.clock().advance(7 * MS_PER_DAY);
            if driver.maybe_retrain(&mut p, 2000).unwrap().is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired, "accumulating drift must cross KS 0.15");
        assert!(driver.retrain_reasons()[0].contains("prediction drift"));
    }
}
