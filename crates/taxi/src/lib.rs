//! # mltrace-taxi
//!
//! The paper's §5 demonstration, rebuilt end to end: a synthetic NYC-taxi
//! trip stream with controllable drift and fault injection ([`gen`],
//! [`scenarios`]), a serializable featurizer artifact ([`features`]), and
//! an eight-component tip-prediction pipeline fully wrapped in mltrace
//! ([`pipeline`]) — the substrate for reproducing the paper's four
//! observability walkthroughs (Examples 4.1–4.4).

#![warn(missing_docs)]

pub mod features;
pub mod gen;
pub mod pipeline;
pub mod retrain;
pub mod scenarios;

pub use features::{labels, Featurizer, NUMERIC_FEATURES};
pub use gen::{trips_to_frame, DriftProfile, Trip, TripConfig, TripGenerator, BOROUGHS};
pub use pipeline::{
    MonitorReport, ServeOptions, ServeReport, TaxiConfig, TaxiPipeline, TrainReport, COMPONENTS,
};
pub use retrain::{RetrainDecision, RetrainDriver, RetrainPolicy};
pub use scenarios::{drop_rows, inject_nulls, skew_feature, Incident};
