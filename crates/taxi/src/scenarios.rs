//! Fault injection: deterministic reproductions of the paper's four
//! debugging walkthroughs (§4.2, Examples 4.1–4.4).
//!
//! Each injector transforms a data frame the way the corresponding
//! production incident would: NULL spikes in a raw column (4.1),
//! progressive covariate shift (4.2, via [`crate::gen::DriftProfile`]),
//! online/offline feature-code skew (4.3), and a stale preprocessor
//! (4.4, via the pipeline driver simply not refitting).

use mltrace_pipeline::{Column, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replace a deterministic random `fraction` of a float column with NaN
/// (the Example 4.1 incident: "the fraction of NULL values in an
/// important column in the raw, unprocessed data is abnormally high").
pub fn inject_nulls(df: &DataFrame, column: &str, fraction: f64, seed: u64) -> DataFrame {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut out = df.clone();
    let mut values = df
        .float_column(column)
        .unwrap_or_else(|e| panic!("column {column}: {e}"));
    let mut rng = StdRng::seed_from_u64(seed);
    for v in values.iter_mut() {
        if rng.gen_range(0.0..1.0) < fraction {
            *v = f64::NAN;
        }
    }
    out.add_column(column, Column::Float(values))
        .expect("same length");
    out
}

/// Apply a linear mis-scaling to a float column — the Example 4.3
/// incident: "a discrepancy between the online and offline feature
/// generation code" (e.g. the online path computing metres where the
/// offline path computed kilometres).
pub fn skew_feature(df: &DataFrame, column: &str, scale: f64, offset: f64) -> DataFrame {
    let mut out = df.clone();
    let values: Vec<f64> = df
        .float_column(column)
        .unwrap_or_else(|e| panic!("column {column}: {e}"))
        .into_iter()
        .map(|v| v * scale + offset)
        .collect();
    out.add_column(column, Column::Float(values))
        .expect("same length");
    out
}

/// Drop a deterministic random `fraction` of rows (ingestion loss).
pub fn drop_rows(df: &DataFrame, fraction: f64, seed: u64) -> DataFrame {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: Vec<bool> = (0..df.num_rows())
        .map(|_| rng.gen_range(0.0..1.0) >= fraction)
        .collect();
    df.filter(&mask).expect("mask fits")
}

/// The scripted incidents used by tests, examples, and benches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Incident {
    /// Example 4.1: NULL spike in a raw column.
    NullSpike {
        /// Fraction of values nulled.
        fraction: f64,
    },
    /// Example 4.3: online featurizer disagrees with offline code.
    ServeSkew {
        /// Multiplier applied online.
        scale: f64,
    },
    /// No fault.
    #[default]
    None,
}

impl Incident {
    /// Apply the incident to a raw batch.
    pub fn apply(&self, df: &DataFrame, seed: u64) -> DataFrame {
        match self {
            Incident::NullSpike { fraction } => inject_nulls(df, "fare", *fraction, seed),
            Incident::ServeSkew { scale } => skew_feature(df, "distance_km", *scale, 0.0),
            Incident::None => df.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{trips_to_frame, TripConfig, TripGenerator};

    fn frame() -> DataFrame {
        let mut g = TripGenerator::new(TripConfig::default());
        trips_to_frame(&g.take(1000))
    }

    #[test]
    fn null_injection_hits_requested_fraction() {
        let df = frame();
        assert_eq!(df.column("fare").unwrap().null_count(), 0);
        let faulty = inject_nulls(&df, "fare", 0.3, 42);
        let frac = faulty.column("fare").unwrap().null_fraction();
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
        // Other columns untouched.
        assert_eq!(faulty.column("distance_km").unwrap().null_count(), 0);
        // Deterministic.
        let again = inject_nulls(&df, "fare", 0.3, 42);
        assert_eq!(
            again.column("fare").unwrap().null_count(),
            faulty.column("fare").unwrap().null_count()
        );
    }

    #[test]
    fn skew_scales_linearly() {
        let df = frame();
        let skewed = skew_feature(&df, "distance_km", 1000.0, 0.0);
        let orig = df.float_column("distance_km").unwrap();
        let got = skewed.float_column("distance_km").unwrap();
        assert!((got[0] - orig[0] * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn drop_rows_fraction() {
        let df = frame();
        let thinned = drop_rows(&df, 0.5, 1);
        let kept = thinned.num_rows() as f64 / df.num_rows() as f64;
        assert!((kept - 0.5).abs() < 0.06, "kept {kept}");
    }

    #[test]
    fn incident_dispatch() {
        let df = frame();
        let spiked = Incident::NullSpike { fraction: 0.4 }.apply(&df, 1);
        assert!(spiked.column("fare").unwrap().null_fraction() > 0.3);
        let skewed = Incident::ServeSkew { scale: 1000.0 }.apply(&df, 1);
        assert!(
            skewed.float_column("distance_km").unwrap()[0]
                > df.float_column("distance_km").unwrap()[0] * 100.0
        );
        let clean = Incident::None.apply(&df, 1);
        assert_eq!(clean.num_rows(), df.num_rows());
    }
}
