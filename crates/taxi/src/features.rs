//! The fitted feature-engineering artifact of the demo pipeline: mean
//! imputation + standardization over the numeric trip columns, plus a
//! one-hot borough encoding. Serialized to JSON and stored through the
//! artifact store, so every model version's featurizer is content-
//! addressed and traceable (and its *absence of refitting* is what makes
//! Example 4.4's preprocessor stale).

use mltrace_pipeline::{DataFrame, FrameError, MeanImputer, OneHotEncoder, StandardScaler};
use serde::{Deserialize, Serialize};

/// Numeric feature columns, in model order.
pub const NUMERIC_FEATURES: [&str; 6] = [
    "distance_km",
    "duration_min",
    "fare",
    "passengers",
    "hour",
    "paid_card",
];

/// Fitted featurizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Featurizer {
    imputer: MeanImputer,
    scaler: StandardScaler,
    encoder: OneHotEncoder,
}

impl Featurizer {
    /// Fit on a training frame.
    pub fn fit(df: &DataFrame) -> Result<Self, FrameError> {
        let rows = df.to_matrix(&NUMERIC_FEATURES)?;
        let imputer = MeanImputer::fit(&rows).expect("non-empty fit");
        let mut imputed = rows;
        imputer.transform(&mut imputed).expect("fit width");
        let scaler = StandardScaler::fit(&imputed).expect("non-empty fit");
        let boroughs = borough_values(df)?;
        let encoder = OneHotEncoder::fit(boroughs.iter().map(|b| b.as_deref()));
        Ok(Featurizer {
            imputer,
            scaler,
            encoder,
        })
    }

    /// Transform a frame into the model's feature matrix.
    pub fn transform(&self, df: &DataFrame) -> Result<Vec<Vec<f64>>, FrameError> {
        let mut rows = df.to_matrix(&NUMERIC_FEATURES)?;
        self.imputer.transform(&mut rows).expect("fit width");
        self.scaler.transform(&mut rows).expect("fit width");
        let boroughs = borough_values(df)?;
        for (row, borough) in rows.iter_mut().zip(boroughs.iter()) {
            row.extend(self.encoder.encode(borough.as_deref()));
        }
        Ok(rows)
    }

    /// Total feature width (numeric + one-hot categories).
    pub fn width(&self) -> usize {
        NUMERIC_FEATURES.len() + self.encoder.categories().len()
    }

    /// Per-column means of a transformed matrix — the aggregate the
    /// featurize components log for cross-component comparison (Ex 4.3).
    pub fn feature_means(matrix: &[Vec<f64>]) -> Vec<f64> {
        if matrix.is_empty() {
            return Vec::new();
        }
        let width = matrix[0].len();
        let mut means = vec![0.0; width];
        for row in matrix {
            for (m, &v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= matrix.len() as f64;
        }
        means
    }
}

fn borough_values(df: &DataFrame) -> Result<Vec<Option<String>>, FrameError> {
    match df.column("borough")? {
        mltrace_pipeline::Column::Str(v) => Ok(v.clone()),
        other => Err(FrameError::TypeMismatch {
            column: "borough".into(),
            wanted: "str",
            got: other.dtype(),
        }),
    }
}

/// Extract the boolean labels (`high_tip`).
pub fn labels(df: &DataFrame) -> Result<Vec<bool>, FrameError> {
    Ok(df
        .float_column("high_tip")?
        .into_iter()
        .map(|v| v >= 0.5)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{trips_to_frame, TripConfig, TripGenerator};

    fn frame(n: usize) -> DataFrame {
        let mut g = TripGenerator::new(TripConfig::default());
        trips_to_frame(&g.take(n))
    }

    #[test]
    fn fit_transform_shapes() {
        let df = frame(500);
        let f = Featurizer::fit(&df).unwrap();
        let m = f.transform(&df).unwrap();
        assert_eq!(m.len(), 500);
        assert_eq!(m[0].len(), f.width());
        assert_eq!(f.width(), 6 + 4, "numeric + 4 boroughs");
        // Standardized numerics: near-zero means.
        let means = Featurizer::feature_means(&m);
        for (i, m) in means.iter().take(6).enumerate() {
            assert!(m.abs() < 1e-9, "feature {i} mean {m}");
        }
        // One-hot block sums to ~1 per row.
        for row in m.iter().take(20) {
            let onehot: f64 = row[6..].iter().sum();
            assert_eq!(onehot, 1.0);
        }
    }

    #[test]
    fn transform_handles_nulls_via_imputation() {
        let train = frame(500);
        let f = Featurizer::fit(&train).unwrap();
        let faulty = crate::scenarios::inject_nulls(&frame(100), "fare", 0.5, 3);
        let m = f.transform(&faulty).unwrap();
        assert!(m.iter().all(|r| r.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn serde_round_trip() {
        let df = frame(200);
        let f = Featurizer::fit(&df).unwrap();
        let bytes = serde_json::to_vec(&f).unwrap();
        let back: Featurizer = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn labels_match_high_tip() {
        let mut g = TripGenerator::new(TripConfig::default());
        let trips = g.take(50);
        let df = trips_to_frame(&trips);
        let l = labels(&df).unwrap();
        for (trip, label) in trips.iter().zip(l.iter()) {
            assert_eq!(trip.high_tip(), *label);
        }
    }

    #[test]
    fn feature_means_empty() {
        assert!(Featurizer::feature_means(&[]).is_empty());
    }
}
