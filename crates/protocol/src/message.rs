//! Request/response bodies carried inside [`crate::Frame`]s.
//!
//! Bodies are JSON (the WAL's own record codec), tagged by operation.
//! JSON keeps the protocol debuggable with `nc` and reuses the exact
//! serde codecs the store already round-trips through its log, so a
//! record survives client → server → WAL → replay bit-for-bit.

use mltrace_store::{
    ComponentRecord, ComponentRunRecord, EventFilter, MetricRecord, ObservabilityEvent, RunBundle,
    StoreStats, Value,
};
use serde::{Deserialize, Serialize};

/// One client request. The `op` tag names the operation on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op")]
pub enum Request {
    /// Liveness / latency probe. Answered with [`Response::Ok`].
    Ping,
    /// Register components (idempotent upserts).
    RegisterComponents {
        /// Component records to upsert.
        components: Vec<ComponentRecord>,
    },
    /// Batched `log_run`: one round trip, many runs.
    LogRuns {
        /// Run records; ids are assigned by the store.
        runs: Vec<ComponentRunRecord>,
    },
    /// Batched `log_metric`.
    LogMetrics {
        /// Metric points.
        metrics: Vec<MetricRecord>,
    },
    /// Batched `log_run_bundle` (§3.4 step 6: run + pointers + metrics +
    /// events as one transaction each).
    LogBundles {
        /// Bundles to apply.
        bundles: Vec<RunBundle>,
    },
    /// One-shot SQL (or `EXPLAIN`): parse, plan, execute.
    Query {
        /// Statement text.
        sql: String,
    },
    /// Parse a statement with `?` placeholders; answered with a
    /// server-assigned statement handle.
    Prepare {
        /// Statement text (placeholders allowed).
        sql: String,
    },
    /// Execute a prepared statement with positional parameters bound
    /// left-to-right. Binding happens before planning, so the plan (and
    /// `EXPLAIN`) matches the literal-SQL equivalent exactly.
    Exec {
        /// Handle from [`Response::Prepared`].
        stmt: u64,
        /// One value per `?`.
        params: Vec<Value>,
    },
    /// Drop a prepared statement handle.
    ClosePrepared {
        /// Handle to release.
        stmt: u64,
    },
    /// Start a `tail`-style event subscription on this connection,
    /// replacing any previous one. Backpressure contract: the server-side
    /// queue is bounded and drops oldest; a slow consumer loses events,
    /// never stalls writers.
    Subscribe {
        /// Which events to receive.
        filter: EventFilter,
        /// Queue capacity (server clamps; `None` = server default).
        capacity: Option<usize>,
    },
    /// Fetch buffered events from this connection's subscription.
    PollEvents {
        /// Max events to return.
        max: usize,
        /// Block up to this long when the queue is empty.
        wait_ms: u64,
    },
    /// Durability barrier: flush and fsync the WAL.
    Sync,
    /// Store row counts (used by tests to compare served vs embedded).
    Stats,
    /// Ask the server to shut down gracefully (drain, flush, fsync).
    Shutdown,
}

/// One server response, echoing the request's frame id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op")]
pub enum Response {
    /// Generic success for requests with nothing to return.
    Ok,
    /// Assigned run ids, in input order (`LogRuns` / `LogBundles`).
    RunIds {
        /// One id per logged run/bundle.
        ids: Vec<u64>,
    },
    /// Count of records applied (`RegisterComponents` / `LogMetrics`).
    Logged {
        /// Records applied.
        count: u64,
    },
    /// Query result rows (`Query` / `Exec`).
    Rows {
        /// Column names.
        columns: Vec<String>,
        /// Value rows.
        rows: Vec<Vec<Value>>,
    },
    /// Prepared-statement handle (`Prepare`).
    Prepared {
        /// Server-assigned handle, scoped to this connection.
        stmt: u64,
        /// Number of `?` placeholders.
        params: usize,
    },
    /// Buffered events (`PollEvents`).
    Events {
        /// Drained events, oldest first.
        events: Vec<ObservabilityEvent>,
        /// Events dropped since the last poll (drop-oldest overflow).
        dropped: u64,
    },
    /// Store row counts (`Stats`).
    Stats {
        /// Current counts.
        stats: StoreStats,
    },
    /// Admission control: the connection already has `--max-inflight`
    /// requests in flight; retry later. The request was *not* executed.
    Busy {
        /// The configured per-connection limit that was hit.
        limit: usize,
    },
    /// The request failed; the connection remains usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Request {
    /// JSON-encode this request as a frame body.
    pub fn to_body(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("request serialization is infallible")
    }

    /// Decode a frame body.
    pub fn from_body(body: &[u8]) -> Result<Request, serde_json::Error> {
        serde_json::from_slice(body)
    }
}

impl Response {
    /// JSON-encode this response as a frame body.
    pub fn to_body(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("response serialization is infallible")
    }

    /// Decode a frame body.
    pub fn from_body(body: &[u8]) -> Result<Response, serde_json::Error> {
        serde_json::from_slice(body)
    }

    /// Shorthand for an error response.
    pub fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame, Frame};

    // These round-trips exercise real serde_json, so they only run in an
    // environment with the genuine dependency (the stub panics).
    #[test]
    fn request_roundtrip_through_frame() {
        let req = Request::Exec {
            stmt: 3,
            params: vec![Value::Str("etl".into()), Value::Int(10)],
        };
        let mut wire = Vec::new();
        encode_frame(&Frame::new(99, req.to_body()), &mut wire);
        let (frame, _) = decode_frame(&wire).unwrap().unwrap();
        assert_eq!(frame.request_id, 99);
        assert_eq!(Request::from_body(&frame.body).unwrap(), req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Rows {
            columns: vec!["id".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Null]],
        };
        assert_eq!(Response::from_body(&resp.to_body()).unwrap(), resp);
        let busy = Response::Busy { limit: 1 };
        assert_eq!(Response::from_body(&busy.to_body()).unwrap(), busy);
    }

    #[test]
    fn garbage_body_is_an_error_not_a_panic() {
        assert!(Request::from_body(b"{not json").is_err());
        assert!(Response::from_body(b"").is_err());
    }
}
