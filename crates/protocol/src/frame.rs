//! Length-prefixed framing.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +----------------+----------------------+------------------+
//! | len: u32 BE    | request_id: u64 BE   | body: len-8 bytes|
//! +----------------+----------------------+------------------+
//! ```
//!
//! `len` counts the request id plus the body, so an empty body frames as
//! `len = 8`. The cap [`MAX_FRAME_LEN`] bounds what a peer can make us
//! buffer; a frame longer than that is a protocol error, not an
//! allocation. Decoding is incremental: a partial prefix is "need more
//! bytes", while EOF in the middle of a frame is a *torn frame* — a clean
//! error, never a panic or a misparse (pinned by proptests in
//! `tests/protocol_framing.rs`).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on `len` (id + body), 32 MiB. Generous for batched ingest,
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Bytes of the length prefix.
pub const LEN_PREFIX: usize = 4;

/// Bytes of the request id.
pub const ID_BYTES: usize = 8;

/// One decoded frame: a request id chosen by the sender (echoed verbatim
/// in the matching response, so a pipelining client can correlate) and an
/// opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender-chosen correlation id.
    pub request_id: u64,
    /// Message payload (JSON-encoded [`crate::Request`]/[`crate::Response`]).
    pub body: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(request_id: u64, body: Vec<u8>) -> Frame {
        Frame { request_id, body }
    }

    /// Total encoded size of this frame on the wire.
    pub fn wire_len(&self) -> usize {
        LEN_PREFIX + ID_BYTES + self.body.len()
    }
}

/// Framing violation. Any of these poisons the connection: framing has no
/// resync point, so the only safe reaction is to drop the stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The hostile declared length.
        declared: usize,
    },
    /// Declared length is shorter than the mandatory request id.
    Undersized {
        /// The bogus declared length.
        declared: usize,
    },
    /// The stream ended inside a frame (after ≥1 byte of it arrived).
    Torn {
        /// Bytes of the frame that did arrive.
        have: usize,
        /// Bytes the prefix promised.
        want: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds cap of {MAX_FRAME_LEN}"
                )
            }
            FrameError::Undersized { declared } => {
                write!(f, "frame length {declared} is shorter than the request id")
            }
            FrameError::Torn { have, want } => {
                write!(f, "stream ended mid-frame ({have} of {want} bytes)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        let kind = match e {
            FrameError::Torn { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Append the frame's wire encoding to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len = (ID_BYTES + frame.body.len()) as u32;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&frame.request_id.to_be_bytes());
    out.extend_from_slice(&frame.body);
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a whole frame is present,
/// `Ok(None)` when more bytes are needed, and `Err` when the prefix
/// itself is invalid. The caller drains `consumed` bytes on success.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < LEN_PREFIX {
        return Ok(None);
    }
    let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { declared });
    }
    if declared < ID_BYTES {
        return Err(FrameError::Undersized { declared });
    }
    let total = LEN_PREFIX + declared;
    if buf.len() < total {
        return Ok(None);
    }
    let request_id = u64::from_be_bytes(buf[LEN_PREFIX..LEN_PREFIX + ID_BYTES].try_into().unwrap());
    let body = buf[LEN_PREFIX + ID_BYTES..total].to_vec();
    Ok(Some((Frame { request_id, body }, total)))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(frame.wire_len());
    encode_frame(frame, &mut buf);
    w.write_all(&buf)
}

/// Read one frame from a stream.
///
/// `Ok(None)` means the peer closed cleanly *between* frames. EOF inside
/// a frame surfaces as [`FrameError::Torn`] converted to
/// `io::ErrorKind::UnexpectedEof`; a hostile prefix as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; LEN_PREFIX];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Torn { have } => {
            return Err(FrameError::Torn {
                have,
                want: LEN_PREFIX,
            }
            .into())
        }
        ReadOutcome::Full => {}
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { declared }.into());
    }
    if declared < ID_BYTES {
        return Err(FrameError::Undersized { declared }.into());
    }
    let mut rest = vec![0u8; declared];
    match read_exact_or_eof(r, &mut rest)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof | ReadOutcome::Torn { .. } => {
            return Err(FrameError::Torn {
                have: LEN_PREFIX,
                want: LEN_PREFIX + declared,
            }
            .into())
        }
    }
    let request_id = u64::from_be_bytes(rest[..ID_BYTES].try_into().unwrap());
    Ok(Some(Frame {
        request_id,
        body: rest[ID_BYTES..].to_vec(),
    }))
}

enum ReadOutcome {
    Full,
    CleanEof,
    Torn { have: usize },
}

/// `read_exact`, but distinguishing "EOF before any byte" (clean close)
/// from "EOF mid-buffer" (torn).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Torn { have: filled }
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let f = Frame::new(42, b"hello".to_vec());
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        assert_eq!(buf.len(), f.wire_len());
        let (g, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(g, f);
    }

    #[test]
    fn empty_body_frames_as_len_8() {
        let f = Frame::new(7, Vec::new());
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        assert_eq!(&buf[..4], &8u32.to_be_bytes());
        assert_eq!(decode_frame(&buf).unwrap().unwrap().0, f);
    }

    #[test]
    fn partial_prefix_needs_more() {
        let f = Frame::new(1, b"abc".to_vec());
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_and_undersized_rejected() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::Oversized { .. })
        ));
        let buf = 3u32.to_be_bytes().to_vec();
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::Undersized { .. })
        ));
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let frames = [
            Frame::new(1, b"first".to_vec()),
            Frame::new(u64::MAX, Vec::new()),
            Frame::new(0, vec![0xff; 1000]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_tail_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new(5, b"payload".to_vec())).unwrap();
        for cut in 1..wire.len() {
            let mut cursor = io::Cursor::new(&wire[..cut]);
            let err = read_frame(&mut cursor).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut} must be torn"
            );
        }
    }
}
