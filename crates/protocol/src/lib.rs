//! # mltrace-protocol
//!
//! The wire protocol between `mltrace serve` and its clients: a
//! length-prefixed binary framing ([`frame`]) carrying JSON request /
//! response bodies ([`message`]), with sender-chosen request ids so a
//! client may pipeline.
//!
//! The paper's deployment sketch (§5: Postgres + gRPC logging clients)
//! assumes many concurrent writers feeding one observability store; this
//! crate is the contract that lets heterogeneous pipeline components do
//! that against our embedded engine. Design choices:
//!
//! - **Length-prefixed frames** (`u32` length + `u64` request id + body)
//!   decode incrementally and fail closed: a torn trailing frame is a
//!   clean connection error, never a panic or misparse.
//! - **JSON bodies** reuse the exact serde codecs the WAL already
//!   round-trips, so a record survives client → server → log → replay
//!   unchanged.
//! - **Request ids** are echoed verbatim, letting one connection keep
//!   many requests in flight; the server's `--max-inflight` admission
//!   gate answers [`Response::Busy`] beyond that.

#![warn(missing_docs)]

pub mod frame;
pub mod message;

pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, ID_BYTES, LEN_PREFIX,
    MAX_FRAME_LEN,
};
pub use message::{Request, Response};
