//! E6 + E10 — staleness evaluation cost (computed at query time from the
//! run log) and maintenance operations: compaction and forward-trace
//! deletion at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::scale_store;
use mltrace_core::staleness::{evaluate_run, StalenessPolicy};
use mltrace_store::deletion::forward_closure;
use mltrace_store::retention::compact_before;
use mltrace_store::{Store, MS_PER_DAY};
use std::hint::black_box;

fn staleness_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/staleness");
    let (store, _) = scale_store(10_000);
    let latest = store.latest_run("inference").unwrap().unwrap();
    let policy = StalenessPolicy::default();
    group.bench_function("evaluate_latest_run", |b| {
        b.iter(|| {
            black_box(
                evaluate_run(&store, &latest, &policy, 40 * MS_PER_DAY)
                    .unwrap()
                    .len(),
            )
        });
    });
    group.finish();
}

fn compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/compaction");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("compact_all", n), &n, |b, &n| {
            b.iter_with_setup(
                || scale_store(n).0,
                |store| {
                    let report = compact_before(&store, u64::MAX, MS_PER_DAY).unwrap();
                    black_box(report.runs_compacted)
                },
            );
        });
    }
    group.finish();
}

fn gdpr_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/forward_closure");
    group.sample_size(10);
    // The worst case: the shared features file taints every prediction.
    let (store, _) = scale_store(100_000);
    group.bench_function("taint_100k_predictions", |b| {
        b.iter(|| {
            black_box(
                forward_closure(&store, &["stage-0.out".to_string()])
                    .unwrap()
                    .runs
                    .len(),
            )
        });
    });
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = staleness_eval, compaction, gdpr_closure
}
criterion_main!(benches);
