//! E18 — the serve front-end under multi-client load.
//!
//! Each iteration boots a real TCP server (OS-assigned port, OnSync
//! durability, cross-connection ingest coalescing) over a fresh WAL and
//! drives it with the `bench-load` harness: N writer connections
//! batching run+metric ingest, M reader connections looping a PREPAREd
//! parameterized aggregate. Axes:
//!
//! - writer fan-in at a fixed per-writer workload — group commit should
//!   hold throughput roughly flat as connections multiply, because more
//!   concurrent writers ride each fsync;
//! - mixed read/write load — readers execute on the worker pool, so
//!   added readers must not crater writer throughput;
//! - prepared vs. literal SQL round trips on a loaded store — the
//!   parse-once saving and the identical-plan guarantee.
//!
//! Note: loopback TCP on a single-vCPU host serializes client and
//! server; fan-in numbers are most meaningful on multi-core machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_client::load::{run_load, LoadConfig};
use mltrace_client::Client;
use mltrace_server::{ServeConfig, Server};
use mltrace_store::{DurabilityPolicy, Value, WalStore};
use std::hint::black_box;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static SEQ: AtomicU64 = AtomicU64::new(0);

struct Served {
    path: std::path::PathBuf,
    addr: SocketAddr,
    store: Arc<WalStore>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

/// Boot a server over a fresh WAL in the temp dir.
fn start_server() -> Served {
    let path = std::env::temp_dir().join(format!(
        "mltrace-bench-serve-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(WalStore::open_with(&path, DurabilityPolicy::OnSync).unwrap());
    let server = Server::bind(
        store.clone(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    Served {
        path,
        addr,
        store,
        handle: Some(handle),
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let mut control = Client::connect(self.addr).unwrap();
        control.shutdown_server().unwrap();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writer fan-in: total acknowledged runs held constant while the number
/// of concurrent writer connections grows.
fn writer_fanin(c: &mut Criterion) {
    const TOTAL_RUNS: usize = 4_000;
    let mut group = c.benchmark_group("E18/serve_writer_fanin");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL_RUNS as u64));
    for &writers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("writers", writers), &writers, |b, &w| {
            b.iter(|| {
                let served = start_server();
                let report = run_load(&LoadConfig {
                    addr: served.addr.to_string(),
                    writers: w,
                    readers: 0,
                    runs_per_writer: TOTAL_RUNS / w,
                    batch: 8,
                    metrics_per_batch: 0,
                    retry_busy: true,
                    ..LoadConfig::default()
                })
                .unwrap();
                assert_eq!(report.runs_logged as usize, TOTAL_RUNS);
                black_box(report)
            });
        });
    }
    group.finish();
}

/// Mixed load: 4 writers with 0/2/4 concurrent prepared-query readers.
fn mixed_load(c: &mut Criterion) {
    const RUNS_PER_WRITER: usize = 600;
    let mut group = c.benchmark_group("E18/serve_mixed_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements((4 * RUNS_PER_WRITER) as u64));
    for &readers in &[0usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("readers", readers), &readers, |b, &m| {
            b.iter(|| {
                let served = start_server();
                let report = run_load(&LoadConfig {
                    addr: served.addr.to_string(),
                    writers: 4,
                    readers: m,
                    runs_per_writer: RUNS_PER_WRITER,
                    batch: 8,
                    metrics_per_batch: 2,
                    retry_busy: true,
                    ..LoadConfig::default()
                })
                .unwrap();
                assert_eq!(report.runs_logged as usize, 4 * RUNS_PER_WRITER);
                black_box(report)
            });
        });
    }
    group.finish();
}

/// Prepared vs. literal round trips over one connection on a preloaded
/// store: the per-call parse cost is the delta, the plan is identical.
fn prepared_vs_literal(c: &mut Criterion) {
    let served = start_server();
    {
        let report = run_load(&LoadConfig {
            addr: served.addr.to_string(),
            writers: 4,
            readers: 0,
            runs_per_writer: 1_000,
            batch: 50,
            metrics_per_batch: 0,
            retry_busy: true,
            ..LoadConfig::default()
        })
        .unwrap();
        assert_eq!(report.runs_logged, 4_000);
        served.store.sync().unwrap();
    }
    const QUERIES: u64 = 64;
    let mut group = c.benchmark_group("E18/serve_query_roundtrip");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES));
    group.bench_function("prepared", |b| {
        let mut client = Client::connect(served.addr).unwrap();
        let stmt = client
            .prepare(
                "SELECT component, count(*), avg(duration_ms) FROM component_runs \
                 WHERE component = ? GROUP BY component",
            )
            .unwrap();
        b.iter(|| {
            for i in 0..QUERIES {
                let rows = client
                    .exec(stmt, vec![Value::Str(format!("loadgen-{}", i % 4))])
                    .unwrap();
                black_box(rows);
            }
        });
    });
    group.bench_function("literal", |b| {
        let mut client = Client::connect(served.addr).unwrap();
        b.iter(|| {
            for i in 0..QUERIES {
                let rows = client
                    .query(format!(
                        "SELECT component, count(*), avg(duration_ms) FROM component_runs \
                         WHERE component = 'loadgen-{}' GROUP BY component",
                        i % 4
                    ))
                    .unwrap();
                black_box(rows);
            }
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = writer_fanin, mixed_load, prepared_vs_literal
}
criterion_main!(benches);
