//! Journal emission cost — the observability spine must stay far cheaper
//! than the runs it describes (the same "lightweight" claim E12 makes for
//! the execution layer, applied to the event path). Three rungs:
//!
//! * `emit_only` — constructing the event records themselves.
//! * `emit_persist` — batched `log_events` through the store.
//! * `emit_persist_subscriber` — the same append with a live bus
//!   subscriber draining the fan-out.
//!
//! Expected deltas are recorded in EXPERIMENTS.md alongside E12.

use criterion::{criterion_group, criterion_main, Criterion};
use mltrace_store::{
    EventKind, EventSeverity, MemoryStore, ObservabilityEvent, RunId, Store, Value,
};
use std::hint::black_box;

const BATCH: usize = 64;

/// One run's worth of journal traffic: lifecycle pair plus a trigger
/// outcome, with the payload shapes the execution layer actually emits.
fn make_batch(base_ts: u64) -> Vec<ObservabilityEvent> {
    let mut events = Vec::with_capacity(BATCH);
    for i in 0..BATCH as u64 {
        let (kind, severity) = match i % 3 {
            0 => (EventKind::RunStarted, EventSeverity::Info),
            1 => (EventKind::TriggerOutcome, EventSeverity::Info),
            _ => (EventKind::RunFinished, EventSeverity::Info),
        };
        events.push(
            ObservabilityEvent::new(kind, severity, base_ts + i)
                .component("bench_step")
                .run(RunId(i / 3 + 1))
                .detail("trigger outliers passed")
                .payload("passed", Value::from(true)),
        );
    }
    events
}

fn event_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_journal");
    group.throughput(criterion::Throughput::Elements(BATCH as u64));

    group.bench_function("emit_only", |b| {
        let mut ts = 0u64;
        b.iter(|| {
            ts += BATCH as u64;
            black_box(make_batch(ts))
        });
    });

    group.bench_function("emit_persist", |b| {
        let store = MemoryStore::new();
        let mut ts = 0u64;
        b.iter(|| {
            ts += BATCH as u64;
            store.log_events(make_batch(ts)).unwrap()
        });
    });

    group.bench_function("emit_persist_subscriber", |b| {
        let store = MemoryStore::new();
        let sub = store.event_bus().unwrap().subscribe();
        let mut ts = 0u64;
        b.iter(|| {
            ts += BATCH as u64;
            let ids = store.log_events(make_batch(ts)).unwrap();
            // Drain inside the measurement: a subscriber that keeps up is
            // the steady state; an idle one would just measure drop-oldest.
            black_box(sub.poll());
            ids
        });
    });

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = event_journal
}
criterion_main!(benches);
