//! Trace and slice-query latency (the UI-layer costs behind Figure 4 and
//! Example 4.4): DFS trace cost vs pipeline depth, and slice-lineage cost
//! vs slice size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::scale_store;
use mltrace_core::build_graph;
use mltrace_provenance::{slice_lineage, trace_output, LineageGraph, TraceOptions};
use std::hint::black_box;

/// A deep chain: stage-0 → stage-1 → ... → stage-(depth-1).
fn chain_graph(depth: usize) -> LineageGraph {
    let mut g = LineageGraph::new();
    let mut prev: Option<String> = None;
    for i in 0..depth as u64 {
        let out = format!("io-{i}");
        let deps: Vec<u64> = if i == 0 { vec![] } else { vec![i] };
        g.add_run(
            i + 1,
            &format!("stage-{i}"),
            (i + 1) * 10,
            false,
            &prev.clone().into_iter().collect::<Vec<_>>(),
            std::slice::from_ref(&out),
            &deps,
        );
        prev = Some(out);
    }
    g
}

fn trace_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/depth");
    for &depth in &[5usize, 20, 50] {
        let g = chain_graph(depth);
        let output = format!("io-{}", depth - 1);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    trace_output(
                        &g,
                        &output,
                        TraceOptions {
                            max_depth: 128,
                            as_of_run_start: true,
                        },
                    )
                    .unwrap()
                    .depth(),
                )
            });
        });
    }
    group.finish();
}

fn slice_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice/outputs");
    group.sample_size(20);
    let (store, outputs) = scale_store(100_000);
    let graph = build_graph(&store).unwrap();
    for &k in &[10usize, 100, 1_000] {
        let slice: Vec<String> = outputs[..k].to_vec();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    slice_lineage(&graph, &slice, TraceOptions::default())
                        .ranked
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn incremental_graph_refresh(c: &mut Criterion) {
    // Ablation (DESIGN.md §5): incremental refresh vs full rebuild after
    // appending one run. Both paths now feed from the store's batched
    // snapshot scan (one lock per shard per chunk) rather than a point
    // lookup per run; E11/scan in sql_query.rs isolates that delta.
    let mut group = c.benchmark_group("graph_refresh/after_one_append");
    group.sample_size(10);
    let (store, _) = scale_store(50_000);
    group.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(build_graph(&store).unwrap().run_count()));
    });
    group.bench_function("incremental", |b| {
        let mut cache = mltrace_core::GraphCache::new();
        cache.refresh(&store).unwrap();
        b.iter(|| {
            cache.refresh(&store).unwrap();
            black_box(cache.graph().run_count())
        });
    });
    group.finish();
}

fn graph_build_vs_scale(c: &mut Criterion) {
    // Cold-build cost of the lineage graph at E11 scales: dominated by
    // the run read path, so it tracks the batched-scan improvement
    // directly (the pre-overhaul build did one store lock per run).
    let mut group = c.benchmark_group("graph_refresh/cold_build");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (store, _) = scale_store(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(build_graph(&store).unwrap().run_count()));
        });
    }
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = trace_vs_depth, slice_vs_size, incremental_graph_refresh, graph_build_vs_scale
}
criterion_main!(benches);
