//! E15 — what the always-on monitoring plane costs at ingest time:
//! `log_run_bundle` throughput with the plane disabled (ablation
//! baseline) vs enabled (default 256-point windows), single-writer and
//! under 16 contending writer threads.
//!
//! Every bundle carries a realistic per-run metric payload, so the
//! enabled variant pays the full path: per-point streaming moments +
//! three P² quantiles + window bookkeeping, plus journaling the scored
//! window roll-overs the workload triggers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::{prediction_record, uniform};
use mltrace_metrics::MonitorConfig;
use mltrace_store::{MemoryStore, MetricRecord, RunBundle, Store};
use std::hint::black_box;

const TOTAL: u64 = 8_000;
const POINTS_PER_RUN: usize = 8;

fn bundle(i: u64, values: &[f64]) -> RunBundle {
    let run = prediction_record(i);
    let metrics = (0..POINTS_PER_RUN)
        .map(|j| MetricRecord {
            component: run.component.clone(),
            run_id: None,
            name: "prediction".into(),
            value: values[(i as usize * POINTS_PER_RUN + j) % values.len()],
            ts_ms: run.start_ms,
        })
        .collect();
    RunBundle {
        run,
        pointers: Vec::new(),
        metrics,
        events: Vec::new(),
    }
}

/// Drive `TOTAL` bundles through `store` from `threads` writers.
fn bundles_threads(store: &MemoryStore, threads: u64, values: &[f64]) {
    let per_thread = TOTAL / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for i in t * per_thread..(t + 1) * per_thread {
                    store.log_run_bundle(bundle(i, values)).unwrap();
                }
            });
        }
    });
}

fn monitor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15/monitor_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL));
    let values = uniform(4096, 42);
    let variants = [
        (
            "plane_off",
            MonitorConfig {
                enabled: false,
                ..MonitorConfig::default()
            },
        ),
        ("plane_on", MonitorConfig::default()),
    ];
    for &threads in &[1u64, 16] {
        for (name, config) in &variants {
            group.bench_with_input(BenchmarkId::new(*name, threads), &threads, |b, &t| {
                b.iter(|| {
                    let store = MemoryStore::with_monitor_config(config.clone());
                    bundles_threads(&store, t, &values);
                    black_box(store.stats().unwrap().runs)
                });
            });
        }
    }
    group.finish();
}

/// Shared criterion config matching the rest of the suite: short windows
/// keep CI runnable while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = monitor_overhead
}
criterion_main!(benches);
