//! E11 — ad-hoc SQL latency over observability logs of increasing size
//! (§4.2's "many challenges stem from executing these queries quickly").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::scale_store;
use mltrace_query::execute;
use mltrace_store::{ComponentRecord, MetricRecord, Store};
use std::hint::black_box;

fn seeded(n: usize) -> mltrace_store::MemoryStore {
    let (store, _) = scale_store(n);
    for stage in 0..9 {
        store
            .register_component(ComponentRecord::named(format!("stage-{stage}")))
            .unwrap();
    }
    store
        .register_component(ComponentRecord::named("inference"))
        .unwrap();
    for i in 0..n.min(10_000) as u64 {
        store
            .log_metric(MetricRecord {
                component: "inference".into(),
                run_id: None,
                name: "accuracy".into(),
                value: 0.8 + (i % 100) as f64 / 1000.0,
                ts_ms: i,
            })
            .unwrap();
    }
    store
}

fn queries(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let store = seeded(n);
        let mut group = c.benchmark_group(format!("E11/sql/n={n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        let cases = [
            (
                "filter_limit",
                "SELECT id, component FROM component_runs WHERE component = 'inference' \
                 ORDER BY id DESC LIMIT 10",
            ),
            (
                "group_by_count",
                "SELECT component, count(*) AS runs FROM component_runs \
                 GROUP BY component ORDER BY runs DESC",
            ),
            (
                "aggregate_metrics",
                "SELECT count(*), avg(value), min(value), max(value) FROM metrics",
            ),
            (
                "like_scan",
                "SELECT count(*) FROM component_runs WHERE component LIKE 'stage-%'",
            ),
        ];
        for (name, sql) in cases {
            group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
                b.iter(|| black_box(execute(&store, sql).unwrap().rows.len()));
            });
        }
        group.finish();
    }
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = queries
}
criterion_main!(benches);
