//! E11 — ad-hoc SQL latency over observability logs of increasing size
//! (§4.2's "many challenges stem from executing these queries quickly").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::scale_store;
use mltrace_query::execute;
use mltrace_store::{ComponentRecord, MetricRecord, RunFilter, RunId, Store};
use std::hint::black_box;

fn seeded(n: usize) -> mltrace_store::MemoryStore {
    let (store, _) = scale_store(n);
    for stage in 0..9 {
        store
            .register_component(ComponentRecord::named(format!("stage-{stage}")))
            .unwrap();
    }
    store
        .register_component(ComponentRecord::named("inference"))
        .unwrap();
    for i in 0..n.min(10_000) as u64 {
        store
            .log_metric(MetricRecord {
                component: "inference".into(),
                run_id: None,
                name: "accuracy".into(),
                value: 0.8 + (i % 100) as f64 / 1000.0,
                ts_ms: i,
            })
            .unwrap();
    }
    store
}

fn queries(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let store = seeded(n);
        let mut group = c.benchmark_group(format!("E11/sql/n={n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        let cases = [
            (
                "filter_limit",
                "SELECT id, component FROM component_runs WHERE component = 'inference' \
                 ORDER BY id DESC LIMIT 10",
            ),
            (
                "group_by_count",
                "SELECT component, count(*) AS runs FROM component_runs \
                 GROUP BY component ORDER BY runs DESC",
            ),
            (
                "aggregate_metrics",
                "SELECT count(*), avg(value), min(value), max(value) FROM metrics",
            ),
            (
                "like_scan",
                "SELECT count(*) FROM component_runs WHERE component LIKE 'stage-%'",
            ),
            // Fully-pushed WHERE: the scan filters inside each shard lock
            // and only survivors become Value rows.
            (
                "filter_pushdown",
                "SELECT id, component FROM component_runs \
                 WHERE component = 'inference' AND start_ms >= 90",
            ),
            // Pushed WHERE + pushed LIMIT: clones bounded by the limit.
            (
                "limit_pushdown",
                "SELECT id, component FROM component_runs \
                 WHERE component = 'inference' AND start_ms >= 90 LIMIT 10",
            ),
            // ORDER BY + LIMIT: bounded top-K instead of full sort.
            (
                "topk",
                "SELECT id, component, duration_ms FROM component_runs \
                 ORDER BY duration_ms DESC LIMIT 10",
            ),
        ];
        for (name, sql) in cases {
            group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
                b.iter(|| black_box(execute(&store, sql).unwrap().rows.len()));
            });
        }
        group.finish();
    }
}

/// E11/scan — the raw store read path under the SQL layer: per-run point
/// lookups vs the batched snapshot scan, unfiltered and filtered.
fn scans(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let store = seeded(n);
        let ids: Vec<RunId> = store.run_ids().unwrap();
        let mut group = c.benchmark_group(format!("E11/scan/n={n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function("point_lookups", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &id in &ids {
                    if store.run(id).unwrap().is_some() {
                        total += 1;
                    }
                }
                black_box(total)
            });
        });
        group.bench_function("scan_full", |b| {
            b.iter(|| {
                black_box(
                    store
                        .scan_runs(None, &RunFilter::default(), None)
                        .unwrap()
                        .len(),
                )
            });
        });
        group.bench_function("scan_filtered", |b| {
            let filter = RunFilter::all().with_component("stage-3");
            b.iter(|| black_box(store.scan_runs(None, &filter, None).unwrap().len()));
        });
        group.bench_function("scan_filtered_limit", |b| {
            let filter = RunFilter::all().with_component("stage-3");
            b.iter(|| black_box(store.scan_runs(None, &filter, Some(100)).unwrap().len()));
        });
        group.finish();
    }
}

/// E11/index — planner routing on selective predicates: the same query
/// forced down the sharded scan, forced through the secondary index, and
/// auto-routed by the selectivity estimate. The gap between `scan` and
/// `index` is the sub-linear read win; `auto` should track the winner.
fn index_routes(c: &mut Criterion) {
    use mltrace_query::{execute_query_with_route, parse, RoutePreference};
    for &n in &[10_000usize, 100_000] {
        let store = seeded(n);
        let mut group = c.benchmark_group(format!("E11/index/n={n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        let cases = [
            // One run out of n+9 (a rarely-run upstream stage).
            (
                "component_eq",
                "SELECT id FROM component_runs WHERE component = 'stage-3'",
            ),
            // 100-run window at the head of the prediction stream.
            (
                "time_window",
                "SELECT id FROM component_runs WHERE start_ms BETWEEN 90 AND 189",
            ),
            // Dense primary-key range.
            (
                "id_range",
                "SELECT id FROM component_runs WHERE id BETWEEN 10 AND 109",
            ),
        ];
        for (name, sql) in cases {
            let query = parse(sql).unwrap();
            for (mode, pref) in [
                ("scan", RoutePreference::ForceScan),
                ("index", RoutePreference::ForceIndex),
                ("auto", RoutePreference::Auto),
            ] {
                group.bench_function(format!("{name}/{mode}"), |b| {
                    b.iter(|| {
                        black_box(
                            execute_query_with_route(&store, &query, pref)
                                .unwrap()
                                .rows
                                .len(),
                        )
                    });
                });
            }
        }
        group.finish();
    }
}

/// E16/aggregate — the analytical path: the same GROUP BY folded by the
/// store's parallel partial-aggregate scan (`pushed`) vs materializing
/// every row and folding in the executor (`naive`), at 1 and 16 scan
/// workers. The pushed route moves group-count rows, not row-count rows,
/// across the store boundary — the setup asserts that reduction through
/// the `query.rows_scanned` / `query.rows_returned` telemetry before
/// timing anything.
fn aggregates(c: &mut Criterion) {
    use mltrace_query::{execute_query, execute_query_unoptimized, parse};
    let sql = "SELECT component, count(*) AS n, avg(duration_ms) AS avg_d \
               FROM component_runs GROUP BY component ORDER BY component";
    let query = parse(sql).unwrap();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let store = seeded(n);
        let counter = |snap: &mltrace_telemetry::TelemetrySnapshot, key: &str| {
            snap.counters.get(key).copied().unwrap_or(0)
        };
        let before = store.telemetry().unwrap().snapshot();
        execute_query(&store, &query).unwrap();
        let after = store.telemetry().unwrap().snapshot();
        assert!(
            counter(&after, "query.pushdown.aggregates_total")
                > counter(&before, "query.pushdown.aggregates_total"),
            "GROUP BY over runs must take the partial-aggregate route"
        );
        let scanned =
            counter(&after, "query.rows_scanned") - counter(&before, "query.rows_scanned");
        let returned =
            counter(&after, "query.rows_returned") - counter(&before, "query.rows_returned");
        assert!(
            scanned >= 100 * returned.max(1),
            "partial aggregates must return group counts, not row counts \
             (scanned {scanned}, returned {returned})"
        );
        let mut group = c.benchmark_group(format!("E16/aggregate/n={n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        for workers in [1usize, 16] {
            store.set_scan_workers(workers);
            group.bench_function(format!("pushed/w={workers}"), |b| {
                b.iter(|| black_box(execute_query(&store, &query).unwrap().rows.len()));
            });
            group.bench_function(format!("naive/w={workers}"), |b| {
                b.iter(|| {
                    black_box(
                        execute_query_unoptimized(&store, &query)
                            .unwrap()
                            .rows
                            .len(),
                    )
                });
            });
        }
        group.finish();
    }
}

/// E16/join — runs joined to their component metadata: the planner's
/// hash path (`hash`, via the optimized executor) vs the nested-loop
/// reference (`nested_loop`, via the unoptimized executor, which
/// evaluates the full ON predicate per pair). The quadratic reference is
/// measured only at the two smaller sizes; at 1M rows only the hash path
/// runs.
fn joins(c: &mut Criterion) {
    use mltrace_query::{execute_query, execute_query_unoptimized, parse};
    let cases = [
        (
            "inner_grouped",
            "SELECT c.name, count(*) AS n FROM component_runs r \
             JOIN components c ON r.component = c.name \
             GROUP BY c.name ORDER BY c.name",
        ),
        (
            "inner_filtered",
            "SELECT r.id, c.owner FROM component_runs r \
             JOIN components c ON r.component = c.name \
             WHERE c.name = 'stage-3' ORDER BY r.id",
        ),
        (
            "left_padded",
            "SELECT r.id, c.name FROM component_runs r \
             LEFT JOIN components c ON r.component = c.name \
             ORDER BY r.id DESC LIMIT 10",
        ),
    ];
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let store = seeded(n);
        let mut group = c.benchmark_group(format!("E16/join/n={n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        for (name, sql) in cases {
            let query = parse(sql).unwrap();
            group.bench_function(format!("{name}/hash"), |b| {
                b.iter(|| black_box(execute_query(&store, &query).unwrap().rows.len()));
            });
            if n <= 100_000 {
                group.bench_function(format!("{name}/nested_loop"), |b| {
                    b.iter(|| {
                        black_box(
                            execute_query_unoptimized(&store, &query)
                                .unwrap()
                                .rows
                                .len(),
                        )
                    });
                });
            }
        }
        group.finish();
    }
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = queries, scans, index_routes, aggregates, joins
}
criterion_main!(benches);
