//! E14 — zone-map segment pruning: cold journal reads (`mltrace tail
//! --kind ...`) over a checkpointed WAL family, with and without zone
//! footers. The claim under test: a selective filter over a long sealed
//! history reads time proportional to the segments that can match, not to
//! total history — pre-v2 (footerless) segments are the no-pruning
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_store::{
    read_journal, CheckpointPolicy, DurabilityPolicy, EventFilter, EventKind, EventSeverity,
    ObservabilityEvent, Store, WalOptions, WalStore,
};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A WAL family with `segments` sealed segments of `per_segment` journal
/// events each. Only the final segment contains an `AlertFired`; every
/// earlier one is bulk `RunStarted` traffic, so a kind-filtered read can
/// prune all but one segment. The snapshot is deleted afterwards to force
/// the cold read down the segment path (the shape of a recovery box or a
/// post-corruption tail). `zoned: false` strips the zone footers,
/// reproducing the pre-v2 layout as the no-pruning baseline.
struct Fixture {
    path: PathBuf,
}

impl Fixture {
    fn new(segments: usize, per_segment: usize, zoned: bool) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mltrace-bench-pruning-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let fixture = Fixture { path };
        fixture.remove_family();
        let store = WalStore::open_with_options(
            &fixture.path,
            WalOptions {
                durability: DurabilityPolicy::OnSync,
                checkpoint: CheckpointPolicy::disabled(),
                ..Default::default()
            },
        )
        .expect("open wal");
        let mut ts = 0u64;
        for seg in 0..segments {
            let mut batch = Vec::with_capacity(per_segment);
            for _ in 0..per_segment {
                batch.push(
                    ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, ts)
                        .component("inference"),
                );
                ts += 1;
            }
            if seg == segments - 1 {
                batch.push(
                    ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, ts)
                        .component("inference")
                        .detail("accuracy below floor"),
                );
            }
            store.log_events(batch).unwrap();
            store.checkpoint().expect("seal segment");
        }
        drop(store);
        std::fs::remove_file(fixture.snapshot_path()).expect("drop snapshot");
        if !zoned {
            fixture.strip_footers();
        }
        fixture
    }

    fn snapshot_path(&self) -> PathBuf {
        let name = self.path.file_name().unwrap().to_string_lossy().to_string();
        self.path.with_file_name(format!("{name}.snapshot"))
    }

    /// Rewrite every sealed segment without its final (zone footer) line,
    /// producing the pre-v2 on-disk layout.
    fn strip_footers(&self) {
        for seg in self.segment_paths() {
            let body = std::fs::read(&seg).expect("read segment");
            if body.last() != Some(&b'\n') {
                continue;
            }
            if let Some(cut) = body[..body.len() - 1].iter().rposition(|&b| b == b'\n') {
                std::fs::write(&seg, &body[..cut + 1]).expect("rewrite segment");
            }
        }
    }

    fn segment_paths(&self) -> Vec<PathBuf> {
        let name = self.path.file_name().unwrap().to_string_lossy().to_string();
        let Some(dir) = self.path.parent() else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("{name}.seg-"))
            })
            .map(|e| e.path())
            .collect()
    }

    fn remove_family(&self) {
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(self.snapshot_path());
        for seg in self.segment_paths() {
            let _ = std::fs::remove_file(seg);
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.remove_family();
    }
}

fn segment_pruning(c: &mut Criterion) {
    let filter = EventFilter::all().with_kind(EventKind::AlertFired);
    for &(segments, per_segment) in &[(8usize, 2_000usize), (32, 2_000)] {
        let total = (segments * per_segment) as u64;
        let mut group = c.benchmark_group(format!("E14/pruning/segs={segments}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(total));
        for (label, zoned) in [("zoned", true), ("unzoned", false)] {
            let fixture = Fixture::new(segments, per_segment, zoned);
            group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
                b.iter(|| {
                    let read = read_journal(&fixture.path, &filter, Some(10), None).unwrap();
                    assert_eq!(read.events.len(), 1);
                    black_box((read.segments_pruned, read.events.len()))
                });
            });
        }
        group.finish();
    }
}

/// Shared criterion config matching the rest of the suite.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = segment_pruning
}
criterion_main!(benches);
