//! E1 — §3.4 scale scenario: "Ω(1 million) IOPointer and CR nodes added
//! to our graph daily. It is not only a challenge to store all of this
//! data, but also to allow the user to query this information quickly."
//!
//! Measures: (a) run-log ingest throughput with the producer/consumer
//! indexes live, (b) graph reconstruction over large logs, (c) point
//! queries after a million-node day.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::{prediction_record, scale_store};
use mltrace_core::build_graph;
use mltrace_provenance::{trace_output, TraceOptions};
use mltrace_store::{MemoryStore, Store};
use std::hint::black_box;

fn ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/ingest");
    for &batch in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("log_run", batch), &batch, |b, &n| {
            b.iter(|| {
                let store = MemoryStore::new();
                for i in 0..n as u64 {
                    store.log_run(prediction_record(i)).unwrap();
                }
                black_box(store.stats().unwrap().runs)
            });
        });
    }
    group.finish();
}

fn graph_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/build_graph");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (store, _) = scale_store(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(build_graph(&store).unwrap().run_count()));
        });
    }
    group.finish();
}

fn point_queries_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/query_at_1M_nodes");
    group.sample_size(10);
    // 500k predictions → ~1M nodes (runs + pointers), the paper's daily
    // volume.
    let (store, outputs) = scale_store(500_000);
    let graph = build_graph(&store).unwrap();

    group.bench_function("trace_one_output", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % outputs.len();
            black_box(
                trace_output(&graph, &outputs[i], TraceOptions::default())
                    .unwrap()
                    .size(),
            )
        });
    });
    group.bench_function("latest_run", |b| {
        b.iter(|| black_box(store.latest_run("inference").unwrap().unwrap().id));
    });
    group.bench_function("producers_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % outputs.len();
            black_box(store.producers_of(&outputs[i]).unwrap().len())
        });
    });
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = ingest_throughput, graph_reconstruction, point_queries_at_scale
}
criterion_main!(benches);
