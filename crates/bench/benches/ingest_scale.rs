//! E1 — §3.4 scale scenario: "Ω(1 million) IOPointer and CR nodes added
//! to our graph daily. It is not only a challenge to store all of this
//! data, but also to allow the user to query this information quickly."
//!
//! Measures: (a) run-log ingest throughput with the producer/consumer
//! indexes live, (b) graph reconstruction over large logs, (c) point
//! queries after a million-node day.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use mltrace_bench::{prediction_record, scale_store};
use mltrace_core::build_graph;
use mltrace_provenance::{trace_output, TraceOptions};
use mltrace_store::{ComponentRunRecord, DurabilityPolicy, MemoryStore, Store, WalStore};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn prebuilt(n: usize) -> Vec<ComponentRunRecord> {
    (0..n as u64).map(prediction_record).collect()
}

fn ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/ingest");
    for &batch in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("log_run", batch), &batch, |b, &n| {
            b.iter(|| {
                let store = MemoryStore::new();
                for i in 0..n as u64 {
                    store.log_run(prediction_record(i)).unwrap();
                }
                black_box(store.stats().unwrap().runs)
            });
        });
        // Prebuilt-record variants isolate the store's lock/index path
        // from record construction, making scalar vs. batched a fair
        // comparison of the ingest APIs themselves.
        group.bench_with_input(
            BenchmarkId::new("log_run_prebuilt", batch),
            &batch,
            |b, &n| {
                b.iter_batched(
                    || prebuilt(n),
                    |records| {
                        let store = MemoryStore::new();
                        for rec in records {
                            store.log_run(rec).unwrap();
                        }
                        black_box(store.stats().unwrap().runs)
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("log_runs_batched", batch),
            &batch,
            |b, &n| {
                b.iter_batched(
                    || prebuilt(n),
                    |records| {
                        let store = MemoryStore::new();
                        black_box(store.log_runs(records).unwrap().len())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// A WAL store on a unique temp file, removed (log + any artifacts of the
/// run) when the guard drops — which `iter_batched` does outside the
/// timed region.
struct TempWal {
    store: WalStore,
    path: std::path::PathBuf,
}

impl TempWal {
    fn new(policy: DurabilityPolicy) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mltrace-bench-ingest-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let store = WalStore::open_with(&path, policy).expect("open wal");
        TempWal { store, path }
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn wal_ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/ingest_wal");
    group.sample_size(10);
    let n = 5_000usize;
    group.throughput(Throughput::Elements(n as u64));
    // Per-event flush (the pre-group-commit behavior), scalar appends.
    group.bench_function("log_run_every_event", |b| {
        b.iter_batched(
            || (TempWal::new(DurabilityPolicy::EveryEvent), prebuilt(n)),
            |(wal, records)| {
                for rec in records {
                    wal.store.log_run(rec).unwrap();
                }
                wal.store.sync().unwrap();
                wal
            },
            BatchSize::PerIteration,
        );
    });
    // Group commit + batched appends: one buffered write per 1k events,
    // one fsync at the end.
    group.bench_function("log_runs_group_commit", |b| {
        b.iter_batched(
            || (TempWal::new(DurabilityPolicy::OnSync), prebuilt(n)),
            |(wal, records)| {
                for chunk in records.chunks(1_000) {
                    wal.store.log_runs(chunk.to_vec()).unwrap();
                }
                wal.store.sync().unwrap();
                wal
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

fn graph_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/build_graph");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (store, _) = scale_store(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(build_graph(&store).unwrap().run_count()));
        });
    }
    group.finish();
}

fn point_queries_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/query_at_1M_nodes");
    group.sample_size(10);
    // 500k predictions → ~1M nodes (runs + pointers), the paper's daily
    // volume.
    let (store, outputs) = scale_store(500_000);
    let graph = build_graph(&store).unwrap();

    group.bench_function("trace_one_output", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % outputs.len();
            black_box(
                trace_output(&graph, &outputs[i], TraceOptions::default())
                    .unwrap()
                    .size(),
            )
        });
    });
    group.bench_function("latest_run", |b| {
        b.iter(|| black_box(store.latest_run("inference").unwrap().unwrap().id));
    });
    group.bench_function("producers_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % outputs.len();
            black_box(store.producers_of(&outputs[i]).unwrap().len())
        });
    });
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = ingest_throughput, wal_ingest_throughput, graph_reconstruction, point_queries_at_scale
}
criterion_main!(benches);
