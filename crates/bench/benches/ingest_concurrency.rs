//! E1 (concurrency axis) — multi-threaded ingest on the sharded store.
//!
//! The §3.4 scale scenario's Ω(1 million) nodes/day arrive from many
//! pipeline processes at once; this bench measures how ingest throughput
//! scales with writer threads, scalar vs. batched, and what each WAL
//! [`DurabilityPolicy`] costs under concurrent writers.
//!
//! Note: thread-scaling numbers are only meaningful on multi-core hosts;
//! on a single-vCPU machine the threaded variants measure contention
//! overhead, not parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::ingest_threads;
use mltrace_store::{DurabilityPolicy, MemoryStore, WalStore};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const TOTAL: u64 = 40_000;

fn memory_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/ingest_concurrency");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL));
    for &threads in &[1u64, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("scalar", threads), &threads, |b, &t| {
            b.iter(|| {
                let store = MemoryStore::new();
                black_box(ingest_threads(&store, t, TOTAL, 1))
            });
        });
        group.bench_with_input(BenchmarkId::new("batch1k", threads), &threads, |b, &t| {
            b.iter(|| {
                let store = MemoryStore::new();
                black_box(ingest_threads(&store, t, TOTAL, 1_000))
            });
        });
    }
    group.finish();
}

fn wal_policy_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/ingest_wal_policy");
    group.sample_size(10);
    // Scalar appends so the flush cadence is the variable under test
    // (batched appends already amortize the flush inside `append_all`).
    const WAL_TOTAL: u64 = 16_000;
    group.throughput(Throughput::Elements(WAL_TOTAL));
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let policies = [
        ("every_event", DurabilityPolicy::EveryEvent),
        ("batch256", DurabilityPolicy::Batch(256)),
        ("interval5ms", DurabilityPolicy::Interval(5)),
        ("on_sync", DurabilityPolicy::OnSync),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new("4-thread", name), |b| {
            b.iter(|| {
                let path = std::env::temp_dir().join(format!(
                    "mltrace-bench-walpolicy-{}-{}.jsonl",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let store = WalStore::open_with(&path, policy).unwrap();
                let runs = ingest_threads(&store, 4, WAL_TOTAL, 1);
                store.sync().unwrap();
                drop(store);
                let _ = std::fs::remove_file(&path);
                black_box(runs)
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = memory_concurrency, wal_policy_concurrency
}
criterion_main!(benches);
