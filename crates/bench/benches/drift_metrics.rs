//! E7 — §5.2: "Computing simple metrics like the mean and median is a
//! good start ... Computing well-known metrics like the
//! Kolmogorov-Smirnov test statistic can be expensive". Cost sweep of
//! every drift method over window sizes, plus the streaming-aggregate
//! alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::uniform;
use mltrace_metrics::{
    exact_median, DriftConfig, DriftDetector, DriftMethod, P2Quantile, StreamingMoments,
};
use std::hint::black_box;

fn method_cost_sweep(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut group = c.benchmark_group(format!("E7/drift_cost/n={n}"));
        group.throughput(Throughput::Elements(n as u64));
        if n >= 100_000 {
            group.sample_size(20);
        }
        let reference = uniform(n, 1);
        let window = uniform(n, 99);
        let detector = DriftDetector::fit(&reference, DriftConfig::default());
        for method in DriftMethod::ALL {
            group.bench_with_input(BenchmarkId::new(method.name(), n), &method, |b, &m| {
                b.iter(|| black_box(detector.check(m, &window).score));
            });
        }
        group.finish();
    }
}

fn streaming_aggregates(c: &mut Criterion) {
    // The cheap in-situ alternative: O(1)-memory accumulators the paper's
    // triggers can run per batch.
    let mut group = c.benchmark_group("E7/streaming");
    let n = 100_000;
    group.throughput(Throughput::Elements(n as u64));
    let window = uniform(n, 3);
    group.bench_function("moments_mean_var_skew_kurt", |b| {
        b.iter(|| {
            let m = StreamingMoments::from_slice(&window);
            black_box((m.mean(), m.variance(), m.skewness(), m.kurtosis()))
        });
    });
    group.bench_function("p2_median", |b| {
        b.iter(|| {
            let mut p = P2Quantile::median();
            for &x in &window {
                p.push(x);
            }
            black_box(p.value())
        });
    });
    group.bench_function("exact_median_sorting", |b| {
        b.iter(|| black_box(exact_median(&window)));
    });
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = method_cost_sweep, streaming_aggregates
}
criterion_main!(benches);
