//! E9 — §5.1 artifact storage: content-defined chunking throughput and
//! the dedup payoff across retrained model versions, vs the no-dedup
//! baseline (whole-payload copies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_store::{ArtifactStore, ChunkerConfig};
use std::hint::black_box;

fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        out.extend_from_slice(&state.wrapping_mul(0x2545F4914F6CDD1D).to_le_bytes());
    }
    out.truncate(n);
    out
}

fn put_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/put");
    group.sample_size(20);
    for &size in &[64 * 1024usize, 1024 * 1024] {
        let data = payload(size, 7);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("chunked", size), &size, |b, _| {
            b.iter(|| {
                let store = ArtifactStore::new(ChunkerConfig::default());
                black_box(store.put(&data))
            });
        });
    }
    group.finish();
}

fn version_series_storage(c: &mut Criterion) {
    // Ten retrained versions with 2% contiguous deltas: dedup store vs a
    // naive baseline that copies every version.
    let mut group = c.benchmark_group("E9/ten_versions_2MB");
    group.sample_size(10);
    let make_versions = || {
        let mut v = payload(2 * 1024 * 1024, 3);
        (0..10u8)
            .map(|i| {
                let start = (i as usize * 150_000) % (v.len() - 50_000);
                for b in &mut v[start..start + 40_000] {
                    *b = b.wrapping_add(i + 1);
                }
                v.clone()
            })
            .collect::<Vec<_>>()
    };
    let versions = make_versions();

    group.bench_function("dedup_store", |b| {
        b.iter(|| {
            let store = ArtifactStore::new(ChunkerConfig::default());
            for v in &versions {
                store.put(v);
            }
            let stats = store.stats();
            black_box((stats.stored_bytes, stats.dedup_ratio()))
        });
    });
    group.bench_function("naive_copies", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut copies: Vec<Vec<u8>> = Vec::new();
            for v in &versions {
                copies.push(v.clone());
                total += v.len();
            }
            black_box((copies.len(), total))
        });
    });
    group.finish();
}

fn reassembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/get");
    let store = ArtifactStore::new(ChunkerConfig::default());
    let data = payload(1024 * 1024, 11);
    let id = store.put(&data);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("reassemble_1MB", |b| {
        b.iter(|| black_box(store.get(&id).unwrap().len()));
    });
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = put_throughput, version_series_storage, reassembly
}
criterion_main!(benches);
