//! E17 — root-cause diagnosis latency vs lineage-graph size: a chain
//! pipeline of 10 / 100 / 1000 components with a failed run at the head
//! and a drift incident at the tail, so the engine must walk the whole
//! upstream cone to reach the strongest evidence.
//!
//! Two variants: `cold` pays the full `mltrace diagnose` path including
//! the run-log → graph reconstruction; `warm` diagnoses against a
//! prebuilt graph (the batch / watch-loop case). Each iteration gets a
//! fresh store so the journaled `diagnosis_ready` events from prior
//! iterations never skew the evidence scan.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mltrace_core::{build_graph, diagnose_incident, diagnose_key};
use mltrace_store::{
    ComponentRunRecord, EventSeverity, IncidentRecord, IncidentState, MemoryStore, RunStatus, Store,
};
use std::hint::black_box;

/// A chain pipeline `c0000 → c0001 → …`: each component's run consumes
/// the previous one's artifact; the head run fails; a drift incident is
/// open on the tail component's `prediction` metric.
fn chain_store(n: usize) -> (MemoryStore, IncidentRecord) {
    let store = MemoryStore::new();
    for j in 0..n {
        store
            .log_run(ComponentRunRecord {
                component: format!("c{j:04}"),
                start_ms: 1_000 + j as u64,
                end_ms: 1_001 + j as u64,
                inputs: if j == 0 {
                    Vec::new()
                } else {
                    vec![format!("art-{}", j - 1)]
                },
                outputs: vec![format!("art-{j}")],
                status: if j == 0 {
                    RunStatus::Failed
                } else {
                    RunStatus::Success
                },
                ..Default::default()
            })
            .unwrap();
    }
    let key = format!("drift:c{:04}/prediction", n - 1);
    let incident = IncidentRecord {
        key: key.clone(),
        state: IncidentState::Open,
        severity: EventSeverity::Page,
        subject: key,
        opened_ms: 2_000 + n as u64,
        last_fire_ms: 2_000 + n as u64,
        resolved_ms: None,
        fire_count: 1,
        suppressed_count: 0,
        burn_ms: 0,
        detail: "drift page".into(),
    };
    store.upsert_incident(incident.clone()).unwrap();
    (store, incident)
}

fn diagnose_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E17/diagnose");
    group.sample_size(10);
    for &n in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, &n| {
            b.iter_batched(
                || chain_store(n),
                |(store, incident)| {
                    black_box(diagnose_key(&store, &incident.key).unwrap().rows.len())
                },
                BatchSize::PerIteration,
            );
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (store, incident) = chain_store(n);
                    let graph = build_graph(&store).unwrap();
                    (store, graph, incident)
                },
                |(store, graph, incident)| {
                    black_box(
                        diagnose_incident(&store, &graph, &incident)
                            .unwrap()
                            .rows
                            .len(),
                    )
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// Shared criterion config matching the rest of the suite: short windows
/// keep CI runnable while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = diagnose_latency
}
criterion_main!(benches);
