//! E12 — the "lightweight" claim: overhead of wrapping a component body
//! in the execution layer, and the sync-vs-async trigger ablation
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use mltrace_core::{ComponentDef, FnTrigger, Mltrace, RunSpec, TriggerOutcome};
use mltrace_store::Value;
use mltrace_telemetry::Telemetry;
use std::hint::black_box;

/// The "user code": a feature computation of fixed cost.
fn body_work(n: usize) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i as f64) * 1.000001).sqrt();
    }
    acc
}

fn logging_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12/overhead");
    let work = 100_000usize;

    group.bench_function("bare_body", |b| {
        b.iter(|| black_box(body_work(work)));
    });

    group.bench_function("wrapped_no_triggers", |b| {
        let ml = Mltrace::in_memory();
        b.iter(|| {
            ml.run(
                "step",
                RunSpec::new().input("in.csv").output("out.csv"),
                |_| Ok(black_box(body_work(work))),
            )
            .unwrap()
            .value
        });
    });

    group.bench_function("wrapped_with_captures_and_metrics", |b| {
        let ml = Mltrace::in_memory();
        b.iter(|| {
            ml.run(
                "step",
                RunSpec::new()
                    .input("in.csv")
                    .output("out.csv")
                    .capture("rows", 1000i64)
                    .code("fn step() {}"),
                |ctx| {
                    let v = black_box(body_work(work));
                    ctx.capture("result", v);
                    ctx.log_metric("result", v);
                    Ok(v)
                },
            )
            .unwrap()
            .value
        });
    });
    group.finish();
}

/// The telemetry record path itself: the self-instrumentation must be far
/// cheaper than what it measures, or the observer distorts the observed.
/// Every `Mltrace::run` pays a handful of these operations.
fn telemetry_record_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12/telemetry");

    group.bench_function("counter_incr_cached_handle", |b| {
        let tele = Telemetry::new();
        let counter = tele.counter("bench.counter");
        b.iter(|| counter.incr());
    });

    group.bench_function("counter_incr_by_name", |b| {
        let tele = Telemetry::new();
        tele.incr("bench.counter"); // pre-create so iters measure lookup, not insert
        b.iter(|| tele.incr(black_box("bench.counter")));
    });

    group.bench_function("histogram_record_cached_handle", |b| {
        let tele = Telemetry::new();
        let hist = tele.histogram("bench.hist");
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(131);
            hist.record(black_box(v));
        });
    });

    group.bench_function("span_create_and_drop", |b| {
        let tele = Telemetry::new();
        b.iter(|| drop(black_box(tele.span("bench.span"))));
    });

    group.finish();
}

fn trigger_scheduling_ablation(c: &mut Criterion) {
    // Ablation: the paper's @asynchronous decorator pays a thread-spawn
    // cost per trigger, so it only wins once trigger work is substantial
    // relative to spawn overhead AND overlaps a comparably long body.
    // Measure both regimes.
    let mut group = c.benchmark_group("E12/triggers");
    group.sample_size(20);
    let column = Value::List((0..1000).map(|i| Value::Float(i as f64)).collect());
    let make_trigger = |iterations: usize| {
        FnTrigger::new("aggregate", move |ctx| {
            let sum: f64 = ctx
                .numeric_capture("column")
                .map(|v| v.iter().sum())
                .unwrap_or(0.0);
            let mut acc = sum;
            for i in 0..iterations {
                acc += ((i as f64) * 1.0001).sqrt();
            }
            TriggerOutcome::pass("ok").with_metric("sum", acc)
        })
    };

    // (regime, trigger iterations, body iterations)
    let regimes = [
        ("cheap_trigger", 50_000usize, 50_000usize),
        ("heavy_trigger", 2_000_000, 2_000_000),
    ];
    for (regime, trigger_iters, body_iters) in regimes {
        for asynchronous in [false, true] {
            let name = format!("{regime}/{}", if asynchronous { "async" } else { "sync" });
            let component = name.replace('/', "_");
            let ml = Mltrace::in_memory();
            let builder = ComponentDef::builder(component.clone());
            let builder = if asynchronous {
                builder.before_run_async(make_trigger(trigger_iters))
            } else {
                builder.before_run(make_trigger(trigger_iters))
            };
            ml.register(builder.build()).unwrap();
            let column = column.clone();
            group.bench_function(&name, move |b| {
                b.iter(|| {
                    ml.run(
                        &component,
                        RunSpec::new().capture("column", column.clone()),
                        |_| Ok(black_box(body_work(body_iters))),
                    )
                    .unwrap()
                    .value
                });
            });
        }
    }
    group.finish();
}

/// Shared criterion config: short measurement windows keep the full
/// suite runnable in CI while remaining stable on these workloads.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = logging_overhead, telemetry_record_path, trigger_scheduling_ablation
}
criterion_main!(benches);
