//! E13 — checkpointed startup: cold-open recovery latency as a function
//! of log size, snapshot presence, and replay parallelism. The claim under
//! test: a store that checkpoints periodically reopens in time proportional
//! to the post-checkpoint *tail* (here ~1% of the log), not the full
//! history, and parallel tail replay further cuts the parse-bound cost of
//! snapshotless recovery on large logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mltrace_bench::prediction_record;
use mltrace_store::{CheckpointPolicy, DurabilityPolicy, Store, WalOptions, WalStore};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Share of events logged *after* the checkpoint in the snapshot variants:
/// the tail a checkpointed store must still replay on open.
const TAIL_SHARE: usize = 100;

/// An on-disk WAL fixture of `events` run records, optionally checkpointed
/// with a ~1% tail. The whole file family (active log, snapshot, sealed
/// segments) is removed on drop.
struct Fixture {
    path: PathBuf,
}

impl Fixture {
    fn new(events: usize, checkpointed: bool) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mltrace-bench-recovery-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let fixture = Fixture { path };
        fixture.remove_family();
        let options = WalOptions {
            durability: DurabilityPolicy::OnSync,
            checkpoint: CheckpointPolicy::disabled(),
            ..Default::default()
        };
        let store = WalStore::open_with_options(&fixture.path, options).expect("open wal");
        let cut = if checkpointed {
            events - events / TAIL_SHARE
        } else {
            events
        };
        let mut logged = 0usize;
        let log_upto = |upto: usize, logged: &mut usize| {
            while *logged < upto {
                let n = 5_000.min(upto - *logged);
                let chunk: Vec<_> = (*logged..*logged + n)
                    .map(|i| prediction_record(i as u64))
                    .collect();
                store.log_runs(chunk).unwrap();
                *logged += n;
            }
        };
        log_upto(cut, &mut logged);
        if checkpointed {
            store.checkpoint().expect("checkpoint fixture");
            store.compact_segments().expect("compact fixture");
            log_upto(events, &mut logged);
        }
        store.sync().unwrap();
        fixture
    }

    /// Delete the active log plus its snapshot and segment siblings.
    fn remove_family(&self) {
        let _ = std::fs::remove_file(&self.path);
        let name = self.path.file_name().unwrap().to_string_lossy().to_string();
        let _ = std::fs::remove_file(self.path.with_file_name(format!("{name}.snapshot")));
        let Some(dir) = self.path.parent() else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_string_lossy()
                .starts_with(&format!("{name}.seg-"))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.remove_family();
    }
}

fn open_options(workers: Option<usize>) -> WalOptions {
    WalOptions {
        durability: DurabilityPolicy::OnSync,
        checkpoint: CheckpointPolicy::disabled(),
        replay_workers: workers,
    }
}

fn startup_recovery(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mut group = c.benchmark_group(format!("E13/startup_{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        for (fixture_label, checkpointed) in [("no_snapshot", false), ("snapshot", true)] {
            let fixture = Fixture::new(n, checkpointed);
            for (replay_label, workers) in [("serial", Some(1)), ("parallel", None)] {
                group.bench_with_input(
                    BenchmarkId::new(fixture_label, replay_label),
                    &workers,
                    |b, &workers| {
                        b.iter(|| {
                            let store =
                                WalStore::open_with_options(&fixture.path, open_options(workers))
                                    .expect("recover");
                            black_box(store.stats().unwrap().runs)
                        });
                    },
                );
            }
        }
        group.finish();
    }
}

/// Shared criterion config matching the rest of the suite: short windows
/// keep the cold-open matrix runnable in CI smoke mode.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = startup_recovery
}
criterion_main!(benches);
