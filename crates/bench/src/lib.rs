//! Shared workload builders for the benchmark suite (experiment index in
//! DESIGN.md). Each builder reproduces the workload shape of one of the
//! paper's quantified scenarios.

use mltrace_store::{ComponentRunRecord, MemoryStore, RunId, Store};

/// Build the §3.4 topology: a 10-component pipeline where 9 upstream
/// stages form a chain refreshed once and the inference component is run
/// once per prediction. Returns the store and the prediction output
/// names.
pub fn scale_store(predictions: usize) -> (MemoryStore, Vec<String>) {
    let store = MemoryStore::new();
    let mut t = 0u64;
    let mut upstream_out: Option<String> = None;
    let mut last_run: Option<RunId> = None;
    for stage in 0..9u64 {
        let out = format!("stage-{stage}.out");
        let id = store
            .log_run(ComponentRunRecord {
                component: format!("stage-{stage}"),
                start_ms: t,
                end_ms: t + 1,
                inputs: upstream_out.clone().into_iter().collect(),
                outputs: vec![out.clone()],
                dependencies: last_run.into_iter().collect(),
                ..Default::default()
            })
            .expect("log stage");
        last_run = Some(id);
        upstream_out = Some(out);
        t += 10;
    }
    let features = upstream_out.expect("nine stages");
    let model_run = last_run.expect("nine stages");
    let mut outputs = Vec::with_capacity(predictions);
    for i in 0..predictions {
        let out = format!("pred-{i}");
        store
            .log_run(ComponentRunRecord {
                component: "inference".into(),
                start_ms: t + i as u64,
                end_ms: t + i as u64 + 1,
                inputs: vec![features.clone()],
                outputs: vec![out.clone()],
                dependencies: vec![model_run],
                ..Default::default()
            })
            .expect("log prediction");
        outputs.push(out);
    }
    (store, outputs)
}

/// One §3.4-style inference run record, for ingest-throughput loops.
pub fn prediction_record(i: u64) -> ComponentRunRecord {
    ComponentRunRecord {
        component: "inference".into(),
        start_ms: 1_000 + i,
        end_ms: 1_001 + i,
        inputs: vec!["stage-8.out".into()],
        outputs: vec![format!("pred-{i}")],
        ..Default::default()
    }
}

/// Drive `total` §3.4 prediction records through `store` from `threads`
/// writer threads (scoped, joined before returning). `batch <= 1` logs
/// through scalar [`Store::log_run`]; larger values send chunks of
/// `batch` records through [`Store::log_runs`]. Returns the store's run
/// count afterwards.
pub fn ingest_threads(store: &dyn Store, threads: u64, total: u64, batch: usize) -> usize {
    let per_thread = total / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let lo = t * per_thread;
                let hi = lo + per_thread;
                if batch <= 1 {
                    for i in lo..hi {
                        store.log_run(prediction_record(i)).unwrap();
                    }
                } else {
                    let mut buf = Vec::with_capacity(batch);
                    for i in lo..hi {
                        buf.push(prediction_record(i));
                        if buf.len() == batch {
                            store.log_runs(std::mem::take(&mut buf)).unwrap();
                        }
                    }
                    if !buf.is_empty() {
                        store.log_runs(buf).unwrap();
                    }
                }
            });
        }
    });
    store.stats().unwrap().runs
}

/// Deterministic pseudo-uniform sample in [0, 1).
pub fn uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_store_shape() {
        let (store, outputs) = scale_store(100);
        assert_eq!(store.stats().unwrap().runs, 109);
        assert_eq!(outputs.len(), 100);
        assert_eq!(store.producers_of("pred-50").unwrap().len(), 1);
    }

    #[test]
    fn ingest_threads_logs_everything() {
        let store = MemoryStore::new();
        assert_eq!(ingest_threads(&store, 2, 100, 1), 100);
        let store = MemoryStore::new();
        assert_eq!(ingest_threads(&store, 4, 100, 10), 100);
        let ids = store.run_ids().unwrap();
        assert_eq!(ids.len(), 100);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn uniform_is_deterministic() {
        assert_eq!(uniform(10, 5), uniform(10, 5));
        assert_ne!(uniform(10, 5), uniform(10, 6));
    }
}
