//! Point-in-time metric snapshots: merge, persist, render.
//!
//! A [`TelemetrySnapshot`] is a plain-data copy of a registry. Snapshots
//! merge — across the registries of different subsystems, or across
//! process invocations — which is how the CLI accumulates engine
//! telemetry in a `<db>.telemetry` sidecar file: each invocation loads
//! the sidecar, merges its own process-local registry, and writes the
//! result back. The persistence format is line-oriented text (one metric
//! per line, whitespace-separated), dependency-free and greppable like
//! the WAL itself.

use crate::histogram::{bucket_lower_bound, bucket_upper_bound, BUCKET_COUNT};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (nanoseconds for duration histograms).
    pub sum: u64,
    /// Per-bucket observation counts ([`BUCKET_COUNT`] log2 buckets).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`). Returns the midpoint
    /// of the bucket containing the target rank — within 2× of the true
    /// value by construction of the log2 buckets. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                let lo = bucket_lower_bound(i);
                let hi = bucket_upper_bound(i);
                return Some(if hi == u64::MAX {
                    lo.saturating_add(lo / 2)
                } else {
                    lo + (hi - lo) / 2
                });
            }
        }
        None
    }

    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Add another histogram's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

const HEADER: &str = "mltrace-telemetry v1";

/// Histograms holding raw quantities rather than durations are named with
/// one of these suffixes and rendered as plain numbers.
fn is_duration(name: &str) -> bool {
    !(name.ends_with("_events") || name.ends_with("_bytes") || name.ends_with("_size"))
}

/// Human-friendly duration from nanoseconds: `420ns`, `3.4µs`, `12.7ms`,
/// `2.41s`.
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Thousands-separated integer (`1_234_567`-style with commas).
pub fn format_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

impl TelemetrySnapshot {
    /// Merge `other` into `self`: counters and histograms accumulate,
    /// gauges take `other`'s (more recent) value.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Serialize to the line-oriented persistence format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "hist {name} {} {}", h.count, h.sum);
            for b in &h.buckets {
                let _ = write!(out, " {b}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Parse one metric line into the snapshot. `lineno` is 1-based for
    /// error messages.
    fn parse_line(&mut self, lineno: usize, line: &str) -> Result<(), String> {
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().unwrap_or_default();
        let name = tokens
            .next()
            .ok_or_else(|| format!("line {lineno}: missing metric name"))?
            .to_owned();
        let bad = |what: &str| format!("line {lineno}: bad {what} for {name}");
        match kind {
            "counter" => {
                let v: u64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("counter value"))?;
                self.counters.insert(name, v);
            }
            "gauge" => {
                let v: i64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("gauge value"))?;
                self.gauges.insert(name, v);
            }
            "hist" => {
                let count: u64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("histogram count"))?;
                let sum: u64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("histogram sum"))?;
                let mut buckets = Vec::with_capacity(BUCKET_COUNT);
                for t in tokens {
                    buckets.push(t.parse::<u64>().map_err(|_| bad("bucket"))?);
                }
                // Tolerate snapshots from builds with a different
                // bucket count: pad or truncate (tail spill merges
                // into the last kept bucket).
                if buckets.len() > BUCKET_COUNT {
                    let spill: u64 = buckets[BUCKET_COUNT..].iter().sum();
                    buckets.truncate(BUCKET_COUNT);
                    buckets[BUCKET_COUNT - 1] += spill;
                } else {
                    buckets.resize(BUCKET_COUNT, 0);
                }
                self.histograms.insert(
                    name,
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                );
            }
            other => return Err(format!("line {lineno}: unknown record {other:?}")),
        }
        Ok(())
    }

    /// Parse the persistence format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<TelemetrySnapshot, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            Some(h) => return Err(format!("unrecognized telemetry header: {h:?}")),
            None => return Ok(TelemetrySnapshot::default()),
        }
        let mut snap = TelemetrySnapshot::default();
        for (lineno, line) in lines.enumerate() {
            snap.parse_line(lineno + 2, line)?;
        }
        Ok(snap)
    }

    /// Parse like [`Self::from_text`], but salvage the valid prefix of a
    /// truncated or concurrently-rewritten file instead of discarding it
    /// — the sidecar analogue of WAL torn-tail recovery. An unterminated
    /// final line is treated as torn and dropped *before* parsing (its
    /// prefix could otherwise parse as a smaller, wrong number). Returns
    /// the snapshot plus a warning when anything was dropped.
    pub fn from_text_lossy(text: &str) -> (TelemetrySnapshot, Option<String>) {
        let mut warning = None;
        let complete = match text.rfind('\n') {
            _ if text.is_empty() => text,
            Some(last) if last + 1 == text.len() => text,
            Some(last) => {
                warning = Some("dropped unterminated final line".to_owned());
                &text[..=last]
            }
            None => {
                warning = Some("dropped unterminated final line".to_owned());
                ""
            }
        };
        let mut lines = complete.lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            Some(h) => {
                return (
                    TelemetrySnapshot::default(),
                    Some(format!("unrecognized telemetry header: {h:?}")),
                )
            }
            None => return (TelemetrySnapshot::default(), warning),
        }
        let mut snap = TelemetrySnapshot::default();
        for (lineno, line) in lines.enumerate() {
            if let Err(e) = snap.parse_line(lineno + 2, line) {
                warning = Some(format!("salvaged prefix only: {e}"));
                break;
            }
        }
        (snap, warning)
    }

    /// Load a snapshot from a sidecar file; `None` if the file is absent
    /// or unreadable/corrupt (telemetry loss is never fatal).
    pub fn load_file(path: impl AsRef<Path>) -> Option<TelemetrySnapshot> {
        let text = std::fs::read_to_string(path).ok()?;
        TelemetrySnapshot::from_text(&text).ok()
    }

    /// Load a sidecar leniently: an absent file is silently empty, while
    /// a torn, truncated, or corrupt file yields its salvageable prefix
    /// plus a warning the caller should surface.
    pub fn load_file_lenient(path: impl AsRef<Path>) -> (TelemetrySnapshot, Option<String>) {
        match std::fs::read_to_string(&path) {
            Ok(text) => TelemetrySnapshot::from_text_lossy(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (TelemetrySnapshot::default(), None)
            }
            Err(e) => (
                TelemetrySnapshot::default(),
                Some(format!("unreadable telemetry sidecar: {e}")),
            ),
        }
    }

    /// Write the snapshot to a sidecar file.
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One-screen human rendering: counters, histograms with
    /// p50/p95/p99/mean, and the WAL group-commit efficiency line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            let _ = writeln!(out, "no engine telemetry recorded yet");
            return out;
        }
        let _ = writeln!(out, "engine telemetry");
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<32} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p95", "p99", "mean"
            );
            // Busiest first: these are the engine's hot paths.
            let mut hists: Vec<(&String, &HistogramSnapshot)> = self.histograms.iter().collect();
            hists.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
            for (name, h) in hists {
                let fmt = |v: Option<u64>| match v {
                    Some(v) if is_duration(name) => format_ns(v),
                    Some(v) => format_count(v),
                    None => "-".to_owned(),
                };
                let mean = match h.mean() {
                    Some(m) if is_duration(name) => format_ns(m as u64),
                    Some(m) => format!("{m:.1}"),
                    None => "-".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "  {:<32} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    format_count(h.count),
                    fmt(h.quantile(0.50)),
                    fmt(h.quantile(0.95)),
                    fmt(h.quantile(0.99)),
                    mean,
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "    {:<34} {:>12}", name, format_count(*value));
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "    {name:<34} {value:>12}");
            }
        }
        let events = self.counters.get("wal.append_events_total").copied();
        let flushes = self.counters.get("wal.flushes_total").copied();
        if let (Some(events), Some(flushes)) = (events, flushes) {
            if flushes > 0 {
                let fsyncs = self.counters.get("wal.fsyncs_total").copied().unwrap_or(0);
                let bytes = self
                    .counters
                    .get("wal.bytes_written_total")
                    .copied()
                    .unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  wal group commit: {} events in {} flushes ({:.1} events/flush), {} fsyncs, {} bytes written",
                    format_count(events),
                    format_count(flushes),
                    events as f64 / flushes as f64,
                    format_count(fsyncs),
                    format_count(bytes),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.add("wal.append_events_total", 1000);
        t.add("wal.flushes_total", 10);
        t.add("wal.fsyncs_total", 2);
        t.gauge("wal.pending_events").set(7);
        for i in 0..100u64 {
            t.record("component_run", (i + 1) * 1000);
        }
        t.record("wal.group_commit_events", 256);
        t.snapshot()
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let snap = sample();
        let parsed = TelemetrySnapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn empty_text_parses_to_empty_snapshot() {
        assert_eq!(
            TelemetrySnapshot::from_text("").unwrap(),
            TelemetrySnapshot::default()
        );
        assert!(TelemetrySnapshot::from_text("not-a-header\n").is_err());
        assert!(
            TelemetrySnapshot::from_text("mltrace-telemetry v1\ncounter x notanumber\n").is_err()
        );
    }

    #[test]
    fn lossy_parse_salvages_truncated_sidecars() {
        let full = sample().to_text();
        // Clean text: identical to strict parsing, no warning.
        let (snap, warn) = TelemetrySnapshot::from_text_lossy(&full);
        assert_eq!(snap, TelemetrySnapshot::from_text(&full).unwrap());
        assert!(warn.is_none());
        // Torn mid-number: the unterminated line is dropped, not parsed
        // as a smaller value.
        let torn = &full[..full.len() - 2];
        assert!(!torn.ends_with('\n'));
        let (snap, warn) = TelemetrySnapshot::from_text_lossy(torn);
        let last_metric = full
            .lines()
            .last()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap();
        assert!(
            !snap.counters.contains_key(last_metric) && !snap.histograms.contains_key(last_metric),
            "torn line for {last_metric} must not survive"
        );
        assert!(warn.unwrap().contains("unterminated"));
        // Garbage in the middle: everything before it survives.
        let corrupt = "mltrace-telemetry v1\ncounter a 1\nbogus line here\ncounter b 2\n";
        let (snap, warn) = TelemetrySnapshot::from_text_lossy(corrupt);
        assert_eq!(snap.counters.get("a"), Some(&1));
        assert!(!snap.counters.contains_key("b"), "after the tear is gone");
        assert!(warn.unwrap().contains("salvaged prefix"));
        // Wrong header: empty with a warning.
        let (snap, warn) = TelemetrySnapshot::from_text_lossy("not-a-header\n");
        assert!(snap.is_empty());
        assert!(warn.unwrap().contains("header"));
        // Empty text: empty, no warning.
        let (snap, warn) = TelemetrySnapshot::from_text_lossy("");
        assert!(snap.is_empty() && warn.is_none());
    }

    #[test]
    fn lenient_load_distinguishes_absent_from_corrupt() {
        let dir = std::env::temp_dir().join(format!("mlt-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.telemetry");
        let (snap, warn) = TelemetrySnapshot::load_file_lenient(&missing);
        assert!(snap.is_empty() && warn.is_none(), "absent is silent");
        let torn = dir.join("torn.telemetry");
        std::fs::write(&torn, "mltrace-telemetry v1\ncounter a 1\ncounter b 12").unwrap();
        let (snap, warn) = TelemetrySnapshot::load_file_lenient(&torn);
        assert_eq!(snap.counters.get("a"), Some(&1));
        assert!(!snap.counters.contains_key("b"));
        assert!(warn.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_accumulates_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counters["wal.append_events_total"], 2000);
        assert_eq!(a.histograms["component_run"].count, 200);
        assert_eq!(a.gauges["wal.pending_events"], 7);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let snap = sample();
        let h = &snap.histograms["component_run"];
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // True p50 of 1k..100k is ~50µs; log2 buckets bound error by 2x.
        assert!((25_000..=100_000).contains(&p50), "{p50}");
        assert!(h.quantile(1.0).unwrap() >= p99);
        assert!(HistogramSnapshot::default().quantile(0.5).is_none());
    }

    #[test]
    fn human_rendering_has_the_headline_sections() {
        let text = sample().render_human();
        assert!(text.contains("engine telemetry"));
        assert!(text.contains("component_run"));
        assert!(text.contains("p95"));
        assert!(text.contains("events/flush"));
        assert!(TelemetrySnapshot::default()
            .render_human()
            .contains("no engine telemetry"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_ns(420), "420ns");
        assert_eq!(format_ns(3_400), "3.4µs");
        assert_eq!(format_ns(12_700_000), "12.7ms");
        assert_eq!(format_ns(2_410_000_000), "2.41s");
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(1_234_567), "1,234,567");
    }
}
