//! The [`Telemetry`] registry: named metrics, shared by cloning.
//!
//! The registry is deliberately *not* a global/static: each store or
//! engine instance owns (a clone of) one, so tests and embedded multi-
//! instance deployments never share state by accident. All layers of one
//! engine instance report into the same registry because the handle is
//! threaded top-down (the `Mltrace` handle adopts its store's registry).
//!
//! Handle acquisition (`counter`/`gauge`/`histogram`/`span`) takes a
//! read lock on a small name map — acquire once and hold the handle on
//! hot paths. Recording through a held handle is a relaxed atomic op.

use crate::histogram::{Histogram, HistogramCore};
use crate::snapshot::TelemetrySnapshot;
use crate::span::TelemetrySpan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Metric names: lowercase words joined by `_`, namespaced by `.`
/// (e.g. `wal.fsyncs_total`, `store.log_run_bundle`). Anything outside
/// `[a-zA-Z0-9_.]` is replaced with `_` so the snapshot text format and
/// the Prometheus renderer stay unambiguous.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The telemetry registry. Cloning is cheap and shares all metrics.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Registry>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Registry {
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(cell) = read(&self.inner.counters).get(name) {
            return Counter { cell: cell.clone() };
        }
        let name = sanitize(name);
        let mut g = write(&self.inner.counters);
        let cell = g
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(cell) = read(&self.inner.gauges).get(name) {
            return Gauge { cell: cell.clone() };
        }
        let name = sanitize(name);
        let mut g = write(&self.inner.gauges);
        let cell = g
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge { cell }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(core) = read(&self.inner.histograms).get(name) {
            return Histogram { core: core.clone() };
        }
        let name = sanitize(name);
        let mut g = write(&self.inner.histograms);
        let core = g
            .entry(name)
            .or_insert_with(|| Arc::new(HistogramCore::new()))
            .clone();
        Histogram { core }
    }

    /// One-shot counter increment (looks the handle up by name; prefer a
    /// held [`Counter`] on hot paths).
    pub fn incr(&self, name: &str) {
        self.counter(name).incr();
    }

    /// One-shot counter add.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// One-shot histogram record.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Start an RAII span recording into the histogram named `name`: the
    /// elapsed nanoseconds are recorded when the span drops (or on
    /// [`TelemetrySpan::finish`]).
    pub fn span(&self, name: &str) -> TelemetrySpan {
        TelemetrySpan::new(self.clone(), self.histogram(name))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = read(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = read(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = read(&self.inner.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render the current state in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_cell() {
        let t = Telemetry::new();
        let a = t.counter("x_total");
        let b = t.counter("x_total");
        a.incr();
        b.add(2);
        assert_eq!(t.counter("x_total").get(), 3);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.counter("shared_total").incr();
        assert_eq!(t2.snapshot().counters["shared_total"], 1);
    }

    #[test]
    fn gauges_go_both_ways() {
        let t = Telemetry::new();
        let g = t.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(t.snapshot().gauges["depth"], 7);
    }

    #[test]
    fn names_are_sanitized() {
        let t = Telemetry::new();
        t.incr("weird name{x=\"1\"}");
        let snap = t.snapshot();
        assert!(snap.counters.contains_key("weird_name_x__1__"), "{snap:?}");
    }

    #[test]
    fn snapshot_is_a_copy() {
        let t = Telemetry::new();
        t.record("h", 100);
        let snap = t.snapshot();
        t.record("h", 100);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(t.snapshot().histograms["h"].count, 2);
    }
}
