//! Cross-process coordination for the telemetry sidecar file.
//!
//! Every CLI invocation folds its registry into `<db>.telemetry` with a
//! load → merge → save cycle. Two concurrent invocations (a `serve`
//! process exiting while a `tail` exits, say) can interleave those
//! cycles and silently drop one side's counters — or worse, one reads
//! the other's half-written file. [`SidecarLock`] closes the race with
//! an advisory `flock(2)` on a `<path>.lock` companion file: writers
//! serialize, and because the lock file is separate from the data file,
//! lock acquisition never truncates or touches the data.
//!
//! Advisory means cooperating processes only — which is exactly the
//! scope here (every writer goes through [`merge_into_file`]). Readers
//! that skip the lock still degrade gracefully: the lenient loader
//! salvages the complete prefix of a mid-write file.
//!
//! On non-Unix targets the lock is a no-op and the cycle keeps its old
//! last-writer-wins behavior.

use crate::snapshot::TelemetrySnapshot;
use std::fs::File;
use std::path::Path;

/// Held advisory lock on a sidecar's `.lock` companion. Released on
/// drop (and by the OS if the process dies, which is the point of
/// `flock` over lock-file existence checks).
#[derive(Debug)]
pub struct SidecarLock {
    // Keep the descriptor alive for the lock's lifetime.
    _file: File,
}

impl SidecarLock {
    /// Block until the exclusive advisory lock for `sidecar_path` is
    /// held. Lock acquisition failures (unsupported filesystem, no
    /// permission to create the companion) degrade to an unlocked
    /// guard: telemetry persistence must never become fatal.
    pub fn acquire(sidecar_path: impl AsRef<Path>) -> std::io::Result<SidecarLock> {
        let mut lock_path = sidecar_path.as_ref().as_os_str().to_owned();
        lock_path.push(".lock");
        let file = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path)?;
        imp::lock_exclusive(&file)?;
        Ok(SidecarLock { _file: file })
    }
}

impl Drop for SidecarLock {
    fn drop(&mut self) {
        imp::unlock(&self._file);
    }
}

/// The locked load → merge → save cycle: fold `live` into the sidecar
/// at `path` under the advisory lock. Returns the loader's salvage
/// warning, if any. Errors at any stage (lock, save) are swallowed —
/// the sidecar is best-effort by contract.
pub fn merge_into_file(path: impl AsRef<Path>, live: &TelemetrySnapshot) -> Option<String> {
    let path = path.as_ref();
    let _lock = SidecarLock::acquire(path).ok();
    let (mut snap, warning) = TelemetrySnapshot::load_file_lenient(path);
    snap.merge(live);
    let _ = snap.save_file(path);
    warning
}

#[cfg(unix)]
mod imp {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_UN: i32 = 8;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    pub fn lock_exclusive(file: &File) -> std::io::Result<()> {
        loop {
            // SAFETY: fd is owned by `file`, which outlives the call.
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX) };
            if rc == 0 {
                return Ok(());
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn unlock(file: &File) {
        // SAFETY: as above; close() would release the lock anyway.
        unsafe { flock(file.as_raw_fd(), LOCK_UN) };
    }
}

#[cfg(not(unix))]
mod imp {
    use std::fs::File;

    pub fn lock_exclusive(_file: &File) -> std::io::Result<()> {
        Ok(())
    }

    pub fn unlock(_file: &File) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::sync::Arc;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        let pid = std::process::id();
        p.push(format!("mltrace-sidecar-{tag}-{pid}.telemetry"));
        let _ = std::fs::remove_file(&p);
        let mut lock = p.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(lock);
        p
    }

    #[test]
    fn lock_is_reacquirable_after_drop() {
        let path = temp_path("reacquire");
        let first = SidecarLock::acquire(&path).expect("first acquire");
        drop(first);
        let second = SidecarLock::acquire(&path).expect("second acquire");
        drop(second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_merges_lose_nothing() {
        // Without the lock, concurrent load→merge→save cycles interleave
        // and drop increments; with it, every thread's count survives.
        let path = Arc::new(temp_path("race"));
        const THREADS: usize = 8;
        const MERGES: usize = 10;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let path = path.clone();
                std::thread::spawn(move || {
                    for _ in 0..MERGES {
                        let t = Telemetry::new();
                        t.counter("sidecar.race_total").incr();
                        merge_into_file(path.as_ref(), &t.snapshot());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = TelemetrySnapshot::load_file(path.as_ref()).expect("sidecar readable");
        assert_eq!(
            snap.counters["sidecar.race_total"],
            (THREADS * MERGES) as u64
        );
        let _ = std::fs::remove_file(path.as_ref());
    }
}
