//! # mltrace-telemetry
//!
//! Self-telemetry for the mltrace engine: the observability tool made
//! observable. Leest et al. ("Monitoring and Observability of Machine
//! Learning Systems") point out that monitoring tooling is usually itself
//! unmonitorable; and the source paper's §3.2 requires that "logging
//! should add minimal overhead to component runs" — a claim that stays
//! rhetorical until the engine can measure its own hot paths at runtime.
//! This crate provides the measuring instruments:
//!
//! * [`Telemetry`] — a clonable, global-free registry handing out
//!   [`Counter`]s, [`Gauge`]s, and [`Histogram`]s by name. Handle
//!   acquisition takes a short-lived read lock; every *record* operation
//!   afterwards is a relaxed atomic op (no locks, no allocation).
//! * [`Histogram`] — fixed log2 buckets over `u64` values (nanoseconds by
//!   convention) backed by an `AtomicU64` array, so the record path is a
//!   handful of `fetch_add`s.
//! * [`TelemetrySpan`] — RAII timer that records its elapsed time into a
//!   histogram on drop, with parent/child nesting so a `component_run`
//!   span decomposes into `before_triggers` / `component_body` /
//!   `after_triggers` children and the parent can report self-time.
//! * [`TelemetrySnapshot`] — a point-in-time copy of every metric that
//!   can be merged (across registries or process invocations), persisted
//!   as a line-oriented text file, rendered for humans with
//!   p50/p95/p99, or rendered as Prometheus text exposition.
//!
//! The crate is dependency-free (std only): it sits below every other
//! mltrace crate so the storage, execution, query, and provenance layers
//! can all report into one registry.
//!
//! ```
//! use mltrace_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! t.counter("wal.fsyncs_total").incr();
//! {
//!     let _span = t.span("component_run"); // records elapsed ns on drop
//! }
//! let snap = t.snapshot();
//! assert_eq!(snap.counters["wal.fsyncs_total"], 1);
//! assert_eq!(snap.histograms["component_run"].count, 1);
//! assert!(snap.render_prometheus().contains("# TYPE mltrace_wal_fsyncs_total counter"));
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod registry;
pub mod sidecar;
pub mod snapshot;
pub mod span;

pub use histogram::{Histogram, BUCKET_COUNT};
pub use registry::{Counter, Gauge, Telemetry};
pub use sidecar::{merge_into_file, SidecarLock};
pub use snapshot::{format_count, format_ns, HistogramSnapshot, TelemetrySnapshot};
pub use span::TelemetrySpan;
