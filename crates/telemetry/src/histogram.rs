//! Fixed-bucket log2 latency histogram with a lock-free record path.
//!
//! Bucket `i` holds values whose bit length is `i` (i.e. values in
//! `[2^(i-1), 2^i - 1]`; bucket 0 holds exactly the value 0, bucket 1
//! exactly the value 1). With [`BUCKET_COUNT`] = 48 buckets the range
//! covers 0 ns up to `2^47 - 1` ns (~39 hours) before the final bucket
//! absorbs everything larger, which comfortably brackets every engine
//! operation from a 20 ns counter bump to a multi-hour training run.
//! Relative quantile error is bounded by the 2× bucket width.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets per histogram.
pub const BUCKET_COUNT: usize = 48;

/// Bucket index for a value: its bit length, saturated to the last bucket.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    let bits = (64 - value.leading_zeros()) as usize;
    bits.min(BUCKET_COUNT - 1)
}

/// Inclusive upper bound of bucket `i` (the last bucket is unbounded).
#[inline]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => 1u64 << (i - 1),
    }
}

/// Shared histogram state: one atomic per bucket plus count and sum.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A handle to a registered histogram. Cloning shares the underlying
/// buckets; recording through a held handle is entirely lock-free.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation (nanoseconds by convention for durations).
    #[inline]
    pub fn record(&self, value: u64) {
        self.core.record(value);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bounds_are_consistent() {
        for i in 0..BUCKET_COUNT {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi, "bucket {i}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), i, "lower bound of {i}");
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi), i, "upper bound of {i}");
                assert_eq!(bucket_index(hi + 1), i + 1, "first value past {i}");
            }
        }
    }

    #[test]
    fn record_accumulates_count_and_sum() {
        let core = HistogramCore::new();
        for v in [0u64, 1, 5, 1000, 1_000_000] {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1_001_006);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = Histogram {
            core: Arc::new(HistogramCore::new()),
        };
        let threads = 4u64;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per_thread);
        assert_eq!(
            h.snapshot().buckets.iter().sum::<u64>(),
            threads * per_thread
        );
    }
}
