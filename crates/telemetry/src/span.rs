//! RAII timing spans.
//!
//! A [`TelemetrySpan`] samples a monotonic clock on creation and records
//! the elapsed nanoseconds into its histogram when it is dropped (or
//! explicitly finished). Spans nest: a child created with
//! [`TelemetrySpan::child`] records into its *own* histogram and, on
//! completion, adds its elapsed time to the parent's child accumulator so
//! the parent can report self-time ([`TelemetrySpan::self_ns`]) — e.g. a
//! `component_run` span decomposes into `before_triggers` /
//! `component_body` / `after_triggers` children, and
//! `component_run.self_ns()` is the engine bookkeeping left over.

use crate::histogram::Histogram;
use crate::registry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An in-flight timed operation; records on drop.
pub struct TelemetrySpan {
    telemetry: Telemetry,
    hist: Histogram,
    start: Instant,
    /// Nanoseconds accumulated by completed children of this span.
    child_ns: Arc<AtomicU64>,
    /// Where to report our own elapsed time when we complete, if nested.
    parent_child_ns: Option<Arc<AtomicU64>>,
    finished: bool,
}

impl TelemetrySpan {
    pub(crate) fn new(telemetry: Telemetry, hist: Histogram) -> Self {
        TelemetrySpan {
            telemetry,
            hist,
            start: Instant::now(),
            child_ns: Arc::new(AtomicU64::new(0)),
            parent_child_ns: None,
            finished: false,
        }
    }

    /// Start a child span recording into the histogram named `name` in
    /// the same registry. The child's elapsed time is added to this
    /// span's child accumulator when the child completes.
    pub fn child(&self, name: &str) -> TelemetrySpan {
        let mut span = self.telemetry.span(name);
        span.parent_child_ns = Some(self.child_ns.clone());
        span
    }

    /// Nanoseconds since the span started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Nanoseconds spent in completed children so far.
    pub fn children_ns(&self) -> u64 {
        self.child_ns.load(Ordering::Relaxed)
    }

    /// Elapsed time not attributed to any completed child.
    pub fn self_ns(&self) -> u64 {
        self.elapsed_ns().saturating_sub(self.children_ns())
    }

    fn complete(&mut self) -> u64 {
        if self.finished {
            return 0;
        }
        self.finished = true;
        let ns = self.elapsed_ns();
        self.hist.record(ns);
        if let Some(parent) = &self.parent_child_ns {
            parent.fetch_add(ns, Ordering::Relaxed);
        }
        ns
    }

    /// Finish the span now, recording and returning the elapsed
    /// nanoseconds (drop would do the same, minus the return value).
    pub fn finish(mut self) -> u64 {
        self.complete()
    }
}

impl Drop for TelemetrySpan {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let t = Telemetry::new();
        {
            let _span = t.span("op");
        }
        let snap = t.snapshot();
        assert_eq!(snap.histograms["op"].count, 1);
    }

    #[test]
    fn finish_records_once() {
        let t = Telemetry::new();
        let span = t.span("op");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ns = span.finish();
        assert!(ns >= 1_000_000, "slept 2ms, recorded {ns}ns");
        let snap = t.snapshot();
        assert_eq!(
            snap.histograms["op"].count, 1,
            "finish + drop is one record"
        );
        assert_eq!(snap.histograms["op"].sum, ns);
    }

    #[test]
    fn children_attribute_time_to_the_parent() {
        let t = Telemetry::new();
        let parent = t.span("parent");
        {
            let _child = parent.child("child_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(parent.children_ns() >= 1_000_000);
        assert!(parent.elapsed_ns() >= parent.children_ns());
        let total = parent.finish();
        let snap = t.snapshot();
        assert_eq!(snap.histograms["parent"].count, 1);
        assert_eq!(snap.histograms["child_a"].count, 1);
        assert!(total >= snap.histograms["child_a"].sum);
    }

    #[test]
    fn grandchildren_report_to_their_own_parent() {
        let t = Telemetry::new();
        let root = t.span("root");
        {
            let mid = root.child("mid");
            {
                let _leaf = mid.child("leaf");
            }
            assert_eq!(t.snapshot().histograms["leaf"].count, 1);
            assert!(mid.children_ns() <= mid.elapsed_ns() + 1_000_000);
        }
        // mid completed → root's child accumulator includes mid only once.
        assert_eq!(t.snapshot().histograms["mid"].count, 1);
        assert!(root.children_ns() > 0);
    }
}
