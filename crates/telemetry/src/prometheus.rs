//! Prometheus text exposition rendering.
//!
//! [`TelemetrySnapshot::render_prometheus`] emits the standard text
//! format: one `# TYPE` line per metric; counters and gauges as single
//! samples; histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum` and `_count`. All metric names are prefixed `mltrace_` and
//! sanitized to the Prometheus charset; duration histograms (recorded in
//! nanoseconds) are exported in seconds with an `_seconds` suffix, per
//! Prometheus convention.

use crate::histogram::bucket_upper_bound;
use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};
use std::fmt::Write as _;

/// Map a registry name to a Prometheus metric name: `mltrace_` prefix,
/// `[^a-zA-Z0-9_]` → `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("mltrace_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Same suffix convention as the human renderer: histograms not named
/// `*_events`/`*_bytes`/`*_size` hold nanosecond durations.
fn is_duration(name: &str) -> bool {
    !(name.ends_with("_events") || name.ends_with("_bytes") || name.ends_with("_size"))
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let duration = is_duration(name);
    let base = if duration {
        format!("{}_seconds", prom_name(name))
    } else {
        prom_name(name)
    };
    let _ = writeln!(out, "# TYPE {base} histogram");
    // Emit buckets only up to the last occupied one — the exposition
    // format does not require every boundary, and 48 mostly-zero lines
    // per histogram would drown the scrape.
    let last_occupied = h
        .buckets
        .iter()
        .rposition(|&b| b > 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &b) in h.buckets.iter().take(last_occupied).enumerate() {
        cumulative += b;
        let bound = bucket_upper_bound(i);
        if bound == u64::MAX {
            // The unbounded final bucket is the +Inf line below.
            continue;
        }
        let le = if duration {
            format!("{}", bound as f64 / 1e9)
        } else {
            format!("{bound}")
        };
        let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count);
    let sum = if duration {
        format!("{}", h.sum as f64 / 1e9)
    } else {
        format!("{}", h.sum)
    };
    let _ = writeln!(out, "{base}_sum {sum}");
    let _ = writeln!(out, "{base}_count {}", h.count);
}

impl TelemetrySnapshot {
    /// Render every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            render_histogram(&mut out, name, h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;
    use std::collections::BTreeMap;

    /// Minimal exposition-format checker: every sample line belongs to a
    /// `# TYPE`-declared metric, each metric is declared exactly once,
    /// histogram buckets are cumulative (monotone nondecreasing), the
    /// `+Inf` bucket equals `_count`, and names match the Prometheus
    /// charset.
    fn validate(text: &str) {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("type line has a name").to_owned();
                let kind = it.next().expect("type line has a kind").to_owned();
                assert!(!types.contains_key(&name), "duplicate # TYPE for {name}");
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "bad metric name {name}"
                );
                types.insert(name, kind);
            }
        }
        let base_of = |sample: &str| -> String {
            let name = sample.split(['{', ' ']).next().unwrap().to_owned();
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(stripped) = name.strip_suffix(suffix) {
                    if types.contains_key(stripped) {
                        return stripped.to_owned();
                    }
                }
            }
            name
        };
        // Histogram bucket monotonicity + +Inf == count.
        let mut last_bucket: BTreeMap<String, u64> = BTreeMap::new();
        let mut inf: BTreeMap<String, u64> = BTreeMap::new();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let base = base_of(line);
            let kind = types
                .get(&base)
                .unwrap_or_else(|| panic!("sample without # TYPE: {line}"));
            let value: f64 = line
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap_or_else(|_| panic!("unparseable value: {line}"));
            if kind == "histogram" {
                if line.contains("_bucket{le=") {
                    let v = value as u64;
                    let prev = last_bucket.entry(base.clone()).or_insert(0);
                    assert!(v >= *prev, "non-monotone buckets: {line}");
                    *prev = v;
                    if line.contains("le=\"+Inf\"") {
                        inf.insert(base, v);
                    }
                } else if line.starts_with(&format!("{base}_count")) {
                    counts.insert(base, value as u64);
                }
            }
        }
        for (base, count) in &counts {
            assert_eq!(
                inf.get(base),
                Some(count),
                "+Inf bucket != count for {base}"
            );
        }
    }

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.add("wal.fsyncs_total", 3);
        t.add("core.runs_total", 40);
        t.gauge("wal.pending_events").set(5);
        for i in 1..=1000u64 {
            t.record("component_run", i * 997);
        }
        for _ in 0..10 {
            t.record("wal.group_commit_events", 256);
        }
        t.snapshot()
    }

    #[test]
    fn exposition_is_valid() {
        validate(&sample().render_prometheus());
    }

    #[test]
    fn one_type_line_per_metric_and_expected_names() {
        let text = sample().render_prometheus();
        assert_eq!(
            text.matches("# TYPE mltrace_component_run_seconds histogram")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE mltrace_wal_fsyncs_total counter")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE mltrace_wal_pending_events gauge")
                .count(),
            1
        );
        // Non-duration histogram keeps raw-unit buckets, no _seconds.
        assert!(text.contains("# TYPE mltrace_wal_group_commit_events histogram"));
        assert!(!text.contains("mltrace_wal_group_commit_events_seconds"));
        assert!(text.contains("mltrace_wal_group_commit_events_bucket{le=\"511\"} 10"));
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let t = Telemetry::new();
        t.histogram("quiet");
        let text = t.render_prometheus();
        validate(&text);
        assert!(text.contains("mltrace_quiet_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("mltrace_quiet_seconds_count 0"));
    }

    #[test]
    fn duration_buckets_are_in_seconds() {
        let t = Telemetry::new();
        t.record("op", 1_500_000); // 1.5ms → bucket upper bound 2^21-1 ns
        let text = t.render_prometheus();
        validate(&text);
        let bound = (1u64 << 21) - 1;
        let expected = format!("le=\"{}\"", bound as f64 / 1e9);
        assert!(text.contains(&expected), "{text}");
    }
}
