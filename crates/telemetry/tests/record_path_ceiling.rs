//! Tier-1 guard on the telemetry record path: the instruments must stay
//! cheap enough that instrumenting the engine cannot meaningfully distort
//! what the engine measures (the §3.2 "minimal overhead" requirement,
//! applied to the observer itself).
//!
//! Ceilings are deliberately generous — they are meant to catch a
//! regression that puts a lock, an allocation, or a syscall on the record
//! path (microseconds → tens of microseconds), not to benchmark. The
//! precise numbers live in `cargo bench --bench logging_overhead`
//! (`E12/telemetry/*`).

use mltrace_telemetry::Telemetry;
use std::time::Instant;

const ITERS: u32 = 100_000;

/// Average nanoseconds per call of `op` over [`ITERS`] iterations.
fn avg_ns(mut op: impl FnMut()) -> f64 {
    // Warm up: first calls pay the name-insertion write lock.
    for _ in 0..100 {
        op();
    }
    let started = Instant::now();
    for _ in 0..ITERS {
        op();
    }
    started.elapsed().as_nanos() as f64 / ITERS as f64
}

#[test]
fn counter_incr_stays_under_ceiling() {
    let tele = Telemetry::new();
    let counter = tele.counter("ceiling.counter");
    let avg = avg_ns(|| counter.incr());
    // A relaxed fetch_add is single-digit ns; 2 µs is ~3 orders of margin
    // for CI-shared vCPUs while still failing on an accidental mutex.
    assert!(avg < 2_000.0, "counter incr averaged {avg:.0} ns/op");
}

#[test]
fn histogram_record_stays_under_ceiling() {
    let tele = Telemetry::new();
    let hist = tele.histogram("ceiling.hist");
    let mut v = 0u64;
    let avg = avg_ns(|| {
        v = v.wrapping_add(997);
        hist.record(v);
    });
    assert!(avg < 2_000.0, "histogram record averaged {avg:.0} ns/op");
}

#[test]
fn named_lookup_record_stays_under_ceiling() {
    // The one-shot `incr(name)` path takes a read lock + BTreeMap lookup;
    // it must still be well under a microsecond-scale budget.
    let tele = Telemetry::new();
    tele.incr("ceiling.named");
    let avg = avg_ns(|| tele.incr("ceiling.named"));
    assert!(avg < 5_000.0, "named counter incr averaged {avg:.0} ns/op");
}

#[test]
fn span_create_and_drop_stays_under_ceiling() {
    // Two `Instant::now()` calls plus a histogram record; budget covers
    // slow clock sources on virtualized CI.
    let tele = Telemetry::new();
    let avg = avg_ns(|| drop(tele.span("ceiling.span")));
    assert!(avg < 20_000.0, "span create+drop averaged {avg:.0} ns/op");
}
