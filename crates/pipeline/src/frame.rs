//! A small column-oriented data frame: the tabular substrate the demo
//! pipeline's ETL, cleaning and feature-generation components operate on.
//!
//! Nulls are first-class (Example 4.1 of the paper hinges on "the fraction
//! of NULL values in an important column"): float columns use NaN as the
//! null sentinel, other column types carry explicit `Option`s.

use std::collections::HashMap;
use std::fmt;

/// A typed column.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit floats; NaN encodes null.
    Float(Vec<f64>),
    /// Nullable 64-bit integers.
    Int(Vec<Option<i64>>),
    /// Nullable strings.
    Str(Vec<Option<String>>),
    /// Nullable booleans.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Float(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Float(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of null entries (0 for an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// Type name for diagnostics.
    pub fn dtype(&self) -> &'static str {
        match self {
            Column::Float(_) => "float",
            Column::Int(_) => "int",
            Column::Str(_) => "str",
            Column::Bool(_) => "bool",
        }
    }

    /// Numeric view: floats pass through (nulls as NaN), ints and bools
    /// coerce; `None` for string columns.
    pub fn as_f64(&self) -> Option<Vec<f64>> {
        match self {
            Column::Float(v) => Some(v.clone()),
            Column::Int(v) => Some(
                v.iter()
                    .map(|x| x.map(|i| i as f64).unwrap_or(f64::NAN))
                    .collect(),
            ),
            Column::Bool(v) => Some(
                v.iter()
                    .map(|x| match x {
                        Some(true) => 1.0,
                        Some(false) => 0.0,
                        None => f64::NAN,
                    })
                    .collect(),
            ),
            Column::Str(_) => None,
        }
    }

    /// Non-null numeric values (the input shape drift checks want).
    pub fn finite_values(&self) -> Vec<f64> {
        self.as_f64()
            .map(|v| v.into_iter().filter(|x| x.is_finite()).collect())
            .unwrap_or_default()
    }

    /// Keep only entries where `mask` is true. Panics on length mismatch.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        fn pick<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask.iter())
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::Float(v) => Column::Float(pick(v, mask)),
            Column::Int(v) => Column::Int(pick(v, mask)),
            Column::Str(v) => Column::Str(pick(v, mask)),
            Column::Bool(v) => Column::Bool(pick(v, mask)),
        }
    }

    /// Take rows by index (duplicates allowed). Panics on out-of-range.
    pub fn take(&self, indexes: &[usize]) -> Column {
        fn pick<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        match self {
            Column::Float(v) => Column::Float(pick(v, indexes)),
            Column::Int(v) => Column::Int(pick(v, indexes)),
            Column::Str(v) => Column::Str(pick(v, indexes)),
            Column::Bool(v) => Column::Bool(pick(v, indexes)),
        }
    }
}

impl PartialEq for Column {
    /// Null-aware equality: two NaN floats (the null sentinel) compare
    /// equal, so round-tripped frames with nulls compare as expected.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Float(a), Column::Float(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
            }
            (Column::Int(a), Column::Int(b)) => a == b,
            (Column::Str(a), Column::Str(b)) => a == b,
            (Column::Bool(a), Column::Bool(b)) => a == b,
            _ => false,
        }
    }
}

/// Errors from frame operations.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Column name not present.
    UnknownColumn(String),
    /// Column length does not match the frame's row count.
    LengthMismatch {
        /// Rows in the frame.
        expected: usize,
        /// Entries in the offered column.
        got: usize,
    },
    /// Duplicate column name on construction.
    DuplicateColumn(String),
    /// A typed accessor was used on the wrong column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Type requested.
        wanted: &'static str,
        /// Type present.
        got: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            FrameError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            FrameError::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
            FrameError::TypeMismatch {
                column,
                wanted,
                got,
            } => {
                write!(f, "column {column}: wanted {wanted}, got {got}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A column-oriented table with named columns of equal length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
}

impl DataFrame {
    /// Empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from (name, column) pairs.
    pub fn from_columns(pairs: Vec<(impl Into<String>, Column)>) -> Result<DataFrame, FrameError> {
        let mut df = DataFrame::new();
        for (name, col) in pairs {
            df.add_column(name, col)?;
        }
        Ok(df)
    }

    /// Number of rows (0 for an empty frame).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(Column::len).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Append or replace a column. New columns must match the row count of
    /// a non-empty frame.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<(), FrameError> {
        let name = name.into();
        if !self.columns.is_empty() && col.len() != self.num_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.num_rows(),
                got: col.len(),
            });
        }
        match self.index.get(&name) {
            Some(&i) => {
                self.columns[i] = col;
            }
            None => {
                self.index.insert(name.clone(), self.columns.len());
                self.names.push(name);
                self.columns.push(col);
            }
        }
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| FrameError::UnknownColumn(name.to_owned()))
    }

    /// Float view of a column (coercing ints/bools).
    pub fn float_column(&self, name: &str) -> Result<Vec<f64>, FrameError> {
        let col = self.column(name)?;
        col.as_f64().ok_or(FrameError::TypeMismatch {
            column: name.to_owned(),
            wanted: "numeric",
            got: col.dtype(),
        })
    }

    /// Projection onto a subset of columns.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame, FrameError> {
        let mut out = DataFrame::new();
        for &n in names {
            out.add_column(n, self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame, FrameError> {
        if mask.len() != self.num_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.num_rows(),
                got: mask.len(),
            });
        }
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(self.columns.iter()) {
            out.add_column(name.clone(), col.filter(mask))?;
        }
        Ok(out)
    }

    /// Take rows by index.
    pub fn take(&self, indexes: &[usize]) -> DataFrame {
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(self.columns.iter()) {
            out.add_column(name.clone(), col.take(indexes))
                .expect("take preserves lengths");
        }
        out
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.num_rows().min(n)).collect();
        self.take(&idx)
    }

    /// Vertically concatenate another frame with the same schema.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame, FrameError> {
        if self.names != other.names {
            return Err(FrameError::UnknownColumn(format!(
                "schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        let mut out = DataFrame::new();
        for (name, (a, b)) in self
            .names
            .iter()
            .zip(self.columns.iter().zip(other.columns.iter()))
        {
            let merged = match (a, b) {
                (Column::Float(x), Column::Float(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Float(v)
                }
                (Column::Int(x), Column::Int(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Int(v)
                }
                (Column::Str(x), Column::Str(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Str(v)
                }
                (Column::Bool(x), Column::Bool(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Bool(v)
                }
                (a, b) => {
                    return Err(FrameError::TypeMismatch {
                        column: name.clone(),
                        wanted: a.dtype(),
                        got: b.dtype(),
                    })
                }
            };
            out.add_column(name.clone(), merged)?;
        }
        Ok(out)
    }

    /// Per-column null fractions, in column order.
    pub fn null_report(&self) -> Vec<(String, f64)> {
        self.names
            .iter()
            .zip(self.columns.iter())
            .map(|(n, c)| (n.clone(), c.null_fraction()))
            .collect()
    }

    /// Extract numeric feature matrix (row-major) from the named columns.
    /// Nulls surface as NaN; callers impute first.
    pub fn to_matrix(&self, feature_names: &[&str]) -> Result<Vec<Vec<f64>>, FrameError> {
        let cols: Vec<Vec<f64>> = feature_names
            .iter()
            .map(|&n| self.float_column(n))
            .collect::<Result<_, _>>()?;
        let rows = self.num_rows();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            out.push(cols.iter().map(|c| c[r]).collect());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("fare", Column::Float(vec![10.0, 20.0, f64::NAN, 40.0])),
            (
                "passengers",
                Column::Int(vec![Some(1), Some(2), None, Some(4)]),
            ),
            (
                "borough",
                Column::Str(vec![
                    Some("manhattan".into()),
                    Some("queens".into()),
                    Some("bronx".into()),
                    None,
                ]),
            ),
            (
                "tipped",
                Column::Bool(vec![Some(true), Some(false), Some(true), None]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn shape_and_names() {
        let df = sample();
        assert_eq!(df.num_rows(), 4);
        assert_eq!(df.num_columns(), 4);
        assert_eq!(df.names(), &["fare", "passengers", "borough", "tipped"]);
    }

    #[test]
    fn null_accounting() {
        let df = sample();
        assert_eq!(df.column("fare").unwrap().null_count(), 1);
        assert_eq!(df.column("borough").unwrap().null_count(), 1);
        let report = df.null_report();
        assert_eq!(report.len(), 4);
        assert!((report[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn float_coercion() {
        let df = sample();
        let p = df.float_column("passengers").unwrap();
        assert_eq!(p[0], 1.0);
        assert!(p[2].is_nan());
        let t = df.float_column("tipped").unwrap();
        assert_eq!(t[0], 1.0);
        assert_eq!(t[1], 0.0);
        assert!(df.float_column("borough").is_err());
    }

    #[test]
    fn filter_and_take() {
        let df = sample();
        let filtered = df.filter(&[true, false, false, true]).unwrap();
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.float_column("fare").unwrap(), vec![10.0, 40.0]);
        let taken = df.take(&[3, 0, 0]);
        assert_eq!(taken.num_rows(), 3);
        assert_eq!(taken.float_column("fare").unwrap()[1], 10.0);
        assert!(df.filter(&[true]).is_err(), "wrong mask length");
    }

    #[test]
    fn select_and_head() {
        let df = sample();
        let sel = df.select(&["fare", "tipped"]).unwrap();
        assert_eq!(sel.num_columns(), 2);
        assert!(df.select(&["nope"]).is_err());
        assert_eq!(df.head(2).num_rows(), 2);
        assert_eq!(df.head(100).num_rows(), 4);
    }

    #[test]
    fn add_column_validates_and_replaces() {
        let mut df = sample();
        assert!(matches!(
            df.add_column("bad", Column::Float(vec![1.0])),
            Err(FrameError::LengthMismatch {
                expected: 4,
                got: 1
            })
        ));
        df.add_column("fare", Column::Float(vec![0.0; 4])).unwrap();
        assert_eq!(df.num_columns(), 4, "replacement does not add");
        assert_eq!(df.float_column("fare").unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn concat_same_schema() {
        let df = sample();
        let both = df.concat(&df).unwrap();
        assert_eq!(both.num_rows(), 8);
        assert_eq!(both.num_columns(), 4);
        let other = df.select(&["fare"]).unwrap();
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn to_matrix_row_major() {
        let df = sample();
        let m = df.to_matrix(&["fare", "passengers"]).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m[1], vec![20.0, 2.0]);
        assert!(m[2][0].is_nan());
    }

    #[test]
    fn finite_values_drops_nulls() {
        let df = sample();
        assert_eq!(
            df.column("fare").unwrap().finite_values(),
            vec![10.0, 20.0, 40.0]
        );
        assert!(df.column("borough").unwrap().finite_values().is_empty());
    }
}
