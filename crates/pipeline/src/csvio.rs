//! Minimal CSV reader/writer for the [`DataFrame`]: enough for the demo
//! pipeline's file-shaped component boundaries (the paper's I/O pointers
//! are identifiers like `features.csv`). Handles quoting, embedded commas
//! and the empty-string-as-null convention; type inference promotes
//! int → float → bool → str per column.

use crate::frame::{Column, DataFrame, FrameError};
use std::fmt::Write as _;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// A data row had a different field count than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields expected (header width).
        expected: usize,
        /// Fields found.
        got: usize,
    },
    /// No header line present.
    Empty,
    /// Frame construction failed (duplicate columns etc.).
    Frame(FrameError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::Empty => write!(f, "empty csv"),
            CsvError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<FrameError> for CsvError {
    fn from(e: FrameError) -> Self {
        CsvError::Frame(e)
    }
}

/// Split one CSV line into fields, honoring double-quote quoting with
/// `""` escapes.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n')
}

fn quote(s: &str) -> String {
    if needs_quoting(s) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parse CSV text into a frame. Empty fields are nulls. Column types are
/// inferred: all-int → Int, all-numeric → Float, all-true/false → Bool,
/// otherwise Str.
pub fn parse_csv(text: &str) -> Result<DataFrame, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Empty)?;
    let names = split_line(header);
    let width = names.len();
    let mut raw: Vec<Vec<Option<String>>> = vec![Vec::new(); width];
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != width {
            return Err(CsvError::RaggedRow {
                line: i + 1,
                expected: width,
                got: fields.len(),
            });
        }
        for (col, field) in raw.iter_mut().zip(fields) {
            col.push(if field.is_empty() { None } else { Some(field) });
        }
    }
    let mut df = DataFrame::new();
    for (name, col) in names.into_iter().zip(raw) {
        df.add_column(name, infer_column(col))?;
    }
    Ok(df)
}

fn infer_column(raw: Vec<Option<String>>) -> Column {
    let nonnull: Vec<&str> = raw.iter().flatten().map(String::as_str).collect();
    if !nonnull.is_empty() && nonnull.iter().all(|s| s.parse::<i64>().is_ok()) {
        return Column::Int(
            raw.iter()
                .map(|x| x.as_ref().map(|s| s.parse().unwrap()))
                .collect(),
        );
    }
    if !nonnull.is_empty() && nonnull.iter().all(|s| s.parse::<f64>().is_ok()) {
        return Column::Float(
            raw.iter()
                .map(|x| x.as_ref().map(|s| s.parse().unwrap()).unwrap_or(f64::NAN))
                .collect(),
        );
    }
    if !nonnull.is_empty() && nonnull.iter().all(|s| *s == "true" || *s == "false") {
        return Column::Bool(
            raw.iter()
                .map(|x| x.as_ref().map(|s| s == "true"))
                .collect(),
        );
    }
    Column::Str(raw)
}

/// Serialize a frame to CSV text. Nulls become empty fields.
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let header: Vec<String> = df.names().iter().map(|n| quote(n)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    let rows = df.num_rows();
    let cols: Vec<&Column> = df
        .names()
        .iter()
        .map(|n| df.column(n).expect("name from frame"))
        .collect();
    for r in 0..rows {
        let mut fields = Vec::with_capacity(cols.len());
        for col in &cols {
            let field = match col {
                Column::Float(v) => {
                    if v[r].is_nan() {
                        String::new()
                    } else {
                        format!("{}", v[r])
                    }
                }
                Column::Int(v) => v[r].map(|i| i.to_string()).unwrap_or_default(),
                Column::Str(v) => v[r].as_deref().map(quote).unwrap_or_default(),
                Column::Bool(v) => v[r].map(|b| b.to_string()).unwrap_or_default(),
            };
            fields.push(field);
        }
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_types_and_nulls() {
        let csv = "fare,count,borough,tipped\n12.5,2,manhattan,true\n,3,,false\n7,,queens,\n";
        let df = parse_csv(csv).unwrap();
        assert_eq!(df.num_rows(), 3);
        assert!(matches!(df.column("fare").unwrap(), Column::Float(_)));
        assert!(matches!(df.column("count").unwrap(), Column::Int(_)));
        assert!(matches!(df.column("borough").unwrap(), Column::Str(_)));
        assert!(matches!(df.column("tipped").unwrap(), Column::Bool(_)));
        assert_eq!(df.column("fare").unwrap().null_count(), 1);
        let back = parse_csv(&to_csv(&df)).unwrap();
        assert_eq!(back, df);
    }

    #[test]
    fn integers_stay_integers() {
        let df = parse_csv("a\n1\n2\n").unwrap();
        assert!(matches!(df.column("a").unwrap(), Column::Int(_)));
        // A single float promotes the column.
        let df = parse_csv("a\n1\n2.5\n").unwrap();
        assert!(matches!(df.column("a").unwrap(), Column::Float(_)));
    }

    #[test]
    fn quoting_handles_commas_and_quotes() {
        let original = DataFrame::from_columns(vec![(
            "note",
            Column::Str(vec![
                Some("hello, world".into()),
                Some("she said \"hi\"".into()),
            ]),
        )])
        .unwrap();
        let text = to_csv(&original);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn ragged_rows_rejected() {
        match parse_csv("a,b\n1,2\n3\n") {
            Err(CsvError::RaggedRow {
                line,
                expected,
                got,
            }) => {
                assert_eq!((line, expected, got), (3, 2, 1));
            }
            other => panic!("expected ragged-row error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected_blank_lines_skipped() {
        assert!(matches!(parse_csv(""), Err(CsvError::Empty)));
        let df = parse_csv("a\n1\n\n2\n").unwrap();
        assert_eq!(df.num_rows(), 2);
    }

    #[test]
    fn all_null_column_is_str() {
        let df = parse_csv("a,b\n1,\n2,\n").unwrap();
        assert!(matches!(df.column("b").unwrap(), Column::Str(_)));
        assert_eq!(df.column("b").unwrap().null_count(), 2);
    }
}
