//! # mltrace-pipeline
//!
//! The ML pipeline substrate of the mltrace reproduction. The paper
//! observes existing Python pipelines; since no mature Rust ML pipeline
//! framework exists to instrument (reproduction note repro=2), this crate
//! *is* the pipeline being observed: a column-oriented [`frame::DataFrame`]
//! with first-class nulls, CSV I/O ([`csvio`]), serializable fit/transform
//! feature engineering ([`transform`]), linear/logistic/tree models
//! ([`model`]), and train/test splitting ([`split`]).

#![warn(missing_docs)]

pub mod csvio;
pub mod frame;
pub mod linalg;
pub mod model;
pub mod split;
pub mod transform;

pub use csvio::{parse_csv, to_csv, CsvError};
pub use frame::{Column, DataFrame, FrameError};
pub use model::{
    DecisionTree, ForestConfig, LinearRegression, LogisticConfig, LogisticRegression, ModelError,
    RandomForest, TreeConfig,
};
pub use split::{k_fold_indexes, time_split, train_test_split};
pub use transform::{
    from_artifact, to_artifact, MeanImputer, MinMaxScaler, OneHotEncoder, StandardScaler,
    TransformError,
};
