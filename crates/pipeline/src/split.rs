//! Train/test splitting with a seeded shuffle, plus time-ordered splits
//! (production pipelines train on the past and serve the future, which is
//! exactly where the paper's train/serve drift comes from).

use crate::frame::DataFrame;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly split a frame into (train, test) with `test_fraction` of rows
/// in the test set. Deterministic for a given seed.
pub fn train_test_split(df: &DataFrame, test_fraction: f64, seed: u64) -> (DataFrame, DataFrame) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test fraction must be in [0,1]"
    );
    let n = df.num_rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let test_n = (n as f64 * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(test_n.min(n));
    (df.take(train_idx), df.take(test_idx))
}

/// Chronological split: the first `train_fraction` of rows (assumed
/// time-ordered) train, the remainder tests.
pub fn time_split(df: &DataFrame, train_fraction: f64) -> (DataFrame, DataFrame) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction must be in [0,1]"
    );
    let n = df.num_rows();
    let cut = (n as f64 * train_fraction).round() as usize;
    let train_idx: Vec<usize> = (0..cut.min(n)).collect();
    let test_idx: Vec<usize> = (cut.min(n)..n).collect();
    (df.take(&train_idx), df.take(&test_idx))
}

/// K-fold index sets: returns `k` (train_indexes, test_indexes) pairs.
pub fn k_fold_indexes(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "more folds than rows");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(idx[hi..].iter()).copied().collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Column;

    fn frame(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![(
            "x",
            Column::Float((0..n).map(|i| i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let df = frame(100);
        let (train, test) = train_test_split(&df, 0.3, 7);
        assert_eq!(train.num_rows(), 70);
        assert_eq!(test.num_rows(), 30);
        let mut all: Vec<f64> = train
            .float_column("x")
            .unwrap()
            .into_iter()
            .chain(test.float_column("x").unwrap())
            .collect();
        all.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seed_deterministic() {
        let df = frame(50);
        let (a, _) = train_test_split(&df, 0.2, 9);
        let (b, _) = train_test_split(&df, 0.2, 9);
        assert_eq!(a, b);
        let (c, _) = train_test_split(&df, 0.2, 10);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn time_split_preserves_order() {
        let df = frame(10);
        let (train, test) = time_split(&df, 0.7);
        assert_eq!(
            train.float_column("x").unwrap(),
            (0..7).map(|i| i as f64).collect::<Vec<_>>()
        );
        assert_eq!(
            test.float_column("x").unwrap(),
            (7..10).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extreme_fractions() {
        let df = frame(10);
        let (train, test) = train_test_split(&df, 0.0, 1);
        assert_eq!((train.num_rows(), test.num_rows()), (10, 0));
        let (train, test) = time_split(&df, 1.0);
        assert_eq!((train.num_rows(), test.num_rows()), (10, 0));
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold_indexes(25, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = [0u32; 25];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 25);
            for &i in test {
                seen[i] += 1;
            }
            for &i in train {
                assert!(!test.contains(&i), "train/test overlap");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each row tested exactly once");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_fold_validates_k() {
        k_fold_indexes(10, 1, 0);
    }
}
