//! Just enough dense linear algebra for the models: a row-major matrix,
//! normal-equation assembly, and a partial-pivoting Gaussian solver.

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Aᵀ·A (cols×cols), the Gram matrix of the design matrix.
    #[allow(clippy::needless_range_loop)] // triangular index arithmetic
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    let v = ri * row[j];
                    out.data[i * self.cols + j] += v;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out.data[i * self.cols + j] = out.data[j * self.cols + i];
            }
        }
        out
    }

    /// Aᵀ·y (length cols).
    #[allow(clippy::needless_range_loop)]
    pub fn t_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let yr = y[r];
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x * yr;
            }
        }
        out
    }
}

/// Solve `A·x = b` for square `A` via Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Augmented working copy.
    let mut m = vec![0.0; n * (n + 1)];
    for r in 0..n {
        for c in 0..n {
            m[r * (n + 1) + c] = a.get(r, c);
        }
        m[r * (n + 1) + n] = b[r];
    }
    for col in 0..n {
        // Pivot: largest magnitude in the column at or below the diagonal.
        let mut pivot = col;
        let mut best = m[col * (n + 1) + col].abs();
        for r in col + 1..n {
            let v = m[r * (n + 1) + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for c in 0..=n {
                m.swap(col * (n + 1) + c, pivot * (n + 1) + c);
            }
        }
        let diag = m[col * (n + 1) + col];
        for r in col + 1..n {
            let factor = m[r * (n + 1) + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..=n {
                m[r * (n + 1) + c] -= factor * m[col * (n + 1) + c];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut sum = m[r * (n + 1) + n];
        for c in r + 1..n {
            sum -= m[r * (n + 1) + c] * x[c];
        }
        x[r] = sum / m[r * (n + 1) + r];
    }
    Some(x)
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn gram_and_t_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        // AᵀA = [[35, 44], [44, 56]]
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let v = a.t_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![9.0, 12.0]);
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_larger_system() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let x = solve(&a, &[11.0, -16.0, 17.0]).unwrap();
        // Verify by substitution.
        for (r, &bi) in [11.0, -16.0, 17.0].iter().enumerate() {
            let got = dot(a.row(r), &x);
            assert!((got - bi).abs() < 1e-9, "row {r}: {got} vs {bi}");
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
