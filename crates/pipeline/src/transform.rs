//! Fit/transform feature engineering. Every transformer serializes its
//! fitted parameters, because in the paper's world the *fitted transformer
//! is an artifact*: Example 4.4's root cause is "a preprocessing component
//! that hasn't been refit in 6 weeks", and Example 4.3's is a discrepancy
//! between offline and online feature generation code — both require
//! fitted-parameter provenance to diagnose.

use serde::{Deserialize, Serialize};

/// Errors from transformers.
#[derive(Debug, PartialEq)]
pub enum TransformError {
    /// `transform` called before `fit`.
    NotFitted,
    /// Input width differs from the fitted width.
    WidthMismatch {
        /// Fitted width.
        expected: usize,
        /// Offered width.
        got: usize,
    },
    /// Fit input was empty or all-null.
    EmptyFit,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NotFitted => write!(f, "transformer is not fitted"),
            TransformError::WidthMismatch { expected, got } => {
                write!(f, "width mismatch: fitted {expected}, got {got}")
            }
            TransformError::EmptyFit => write!(f, "cannot fit on empty data"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Standardize columns to zero mean, unit variance. Constant columns map
/// to zero. NaNs pass through (impute first).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit on row-major data.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, TransformError> {
        let width = rows.first().map(Vec::len).ok_or(TransformError::EmptyFit)?;
        let mut means = vec![0.0; width];
        let mut counts = vec![0u64; width];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    counts[c] += 1;
                    means[c] += (v - means[c]) / counts[c] as f64;
                }
            }
        }
        let mut m2 = vec![0.0; width];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    m2[c] += (v - means[c]) * (v - means[c]);
                }
            }
        }
        let stds: Vec<f64> = m2
            .iter()
            .zip(counts.iter())
            .map(|(&s, &n)| if n > 0 { (s / n as f64).sqrt() } else { 0.0 })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    /// Scale rows in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) -> Result<(), TransformError> {
        for row in rows.iter_mut() {
            if row.len() != self.means.len() {
                return Err(TransformError::WidthMismatch {
                    expected: self.means.len(),
                    got: row.len(),
                });
            }
            for (c, v) in row.iter_mut().enumerate() {
                let s = self.stds[c];
                *v = if s > 0.0 {
                    (*v - self.means[c]) / s
                } else {
                    0.0
                };
            }
        }
        Ok(())
    }

    /// Fitted column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Scale columns linearly into [0, 1] using the fitted min/max.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit on row-major data.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, TransformError> {
        let width = rows.first().map(Vec::len).ok_or(TransformError::EmptyFit)?;
        let mut mins = vec![f64::INFINITY; width];
        let mut maxs = vec![f64::NEG_INFINITY; width];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    mins[c] = mins[c].min(v);
                    maxs[c] = maxs[c].max(v);
                }
            }
        }
        Ok(MinMaxScaler { mins, maxs })
    }

    /// Scale rows in place (values outside the fitted range extrapolate).
    pub fn transform(&self, rows: &mut [Vec<f64>]) -> Result<(), TransformError> {
        for row in rows.iter_mut() {
            if row.len() != self.mins.len() {
                return Err(TransformError::WidthMismatch {
                    expected: self.mins.len(),
                    got: row.len(),
                });
            }
            for (c, v) in row.iter_mut().enumerate() {
                let span = self.maxs[c] - self.mins[c];
                *v = if span > 0.0 {
                    (*v - self.mins[c]) / span
                } else {
                    0.0
                };
            }
        }
        Ok(())
    }
}

/// Replace NaNs with the fitted per-column mean.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanImputer {
    means: Vec<f64>,
}

impl MeanImputer {
    /// Fit on row-major data (NaNs excluded from the means; an all-NaN
    /// column imputes to 0).
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, TransformError> {
        let width = rows.first().map(Vec::len).ok_or(TransformError::EmptyFit)?;
        let mut means = vec![0.0; width];
        let mut counts = vec![0u64; width];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    counts[c] += 1;
                    means[c] += (v - means[c]) / counts[c] as f64;
                }
            }
        }
        Ok(MeanImputer { means })
    }

    /// Impute rows in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) -> Result<(), TransformError> {
        for row in rows.iter_mut() {
            if row.len() != self.means.len() {
                return Err(TransformError::WidthMismatch {
                    expected: self.means.len(),
                    got: row.len(),
                });
            }
            for (c, v) in row.iter_mut().enumerate() {
                if !v.is_finite() {
                    *v = self.means[c];
                }
            }
        }
        Ok(())
    }

    /// Fitted means used as fill values.
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

/// One-hot encode a categorical (string) column with a stable category
/// order; unseen categories at transform time map to the all-zero vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OneHotEncoder {
    categories: Vec<String>,
}

impl OneHotEncoder {
    /// Fit on the observed categories (nulls ignored), sorted for
    /// determinism.
    pub fn fit<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> Self {
        let mut categories: Vec<String> = Vec::new();
        for v in values.into_iter().flatten() {
            if !categories.iter().any(|c| c == v) {
                categories.push(v.to_owned());
            }
        }
        categories.sort();
        OneHotEncoder { categories }
    }

    /// The fitted category list.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Encode one value into a one-hot vector (all zeros for null/unseen).
    pub fn encode(&self, value: Option<&str>) -> Vec<f64> {
        let mut out = vec![0.0; self.categories.len()];
        if let Some(v) = value {
            if let Ok(i) = self.categories.binary_search_by(|c| c.as_str().cmp(v)) {
                out[i] = 1.0;
            }
        }
        out
    }
}

/// Serialize a fitted transformer (or model) to JSON bytes — the artifact
/// payload stored (and deduplicated) by the artifact store.
pub fn to_artifact<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_vec(value).expect("transform params serialize")
}

/// Deserialize an artifact back into a fitted transformer/model.
pub fn from_artifact<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Option<T> {
    serde_json::from_slice(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ]
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let mut data = rows();
        scaler.transform(&mut data).unwrap();
        for c in 0..2 {
            let mean: f64 = data.iter().map(|r| r[c]).sum::<f64>() / 4.0;
            let var: f64 = data.iter().map(|r| r[c] * r[c]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_constant_column() {
        let data = vec![vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&data).unwrap();
        let mut out = data;
        scaler.transform(&mut out).unwrap();
        assert_eq!(out, vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn standard_scaler_skips_nans_in_fit() {
        let data = vec![vec![1.0], vec![f64::NAN], vec![3.0]];
        let scaler = StandardScaler::fit(&data).unwrap();
        assert!((scaler.means()[0] - 2.0).abs() < 1e-12);
        assert!(scaler.stds()[0] > 0.0);
    }

    #[test]
    fn width_mismatch_detected() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let mut bad = vec![vec![1.0]];
        assert_eq!(
            scaler.transform(&mut bad),
            Err(TransformError::WidthMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(StandardScaler::fit(&[]).is_err());
    }

    #[test]
    fn minmax_scaler_unit_interval() {
        let scaler = MinMaxScaler::fit(&rows()).unwrap();
        let mut data = rows();
        scaler.transform(&mut data).unwrap();
        assert_eq!(data[0], vec![0.0, 0.0]);
        assert_eq!(data[3], vec![1.0, 1.0]);
        // Out-of-range input extrapolates rather than clamping silently.
        let mut wide = vec![vec![7.0, 700.0]];
        scaler.transform(&mut wide).unwrap();
        assert!(wide[0][0] > 1.0);
    }

    #[test]
    fn mean_imputer_fills_nans() {
        let train = vec![vec![1.0], vec![3.0], vec![f64::NAN]];
        let imp = MeanImputer::fit(&train).unwrap();
        assert_eq!(imp.means(), &[2.0]);
        let mut data = vec![vec![f64::NAN], vec![5.0]];
        imp.transform(&mut data).unwrap();
        assert_eq!(data, vec![vec![2.0], vec![5.0]]);
    }

    #[test]
    fn one_hot_round_trip() {
        let enc = OneHotEncoder::fit(vec![
            Some("queens"),
            Some("manhattan"),
            None,
            Some("queens"),
        ]);
        assert_eq!(enc.categories(), &["manhattan", "queens"]);
        assert_eq!(enc.encode(Some("manhattan")), vec![1.0, 0.0]);
        assert_eq!(enc.encode(Some("queens")), vec![0.0, 1.0]);
        assert_eq!(enc.encode(Some("bronx")), vec![0.0, 0.0], "unseen");
        assert_eq!(enc.encode(None), vec![0.0, 0.0]);
    }

    #[test]
    fn artifact_round_trip() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let bytes = to_artifact(&scaler);
        let back: StandardScaler = from_artifact(&bytes).unwrap();
        assert_eq!(back, scaler);
        assert!(from_artifact::<StandardScaler>(b"not json").is_none());
    }
}
