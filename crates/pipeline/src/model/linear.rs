//! Ordinary least squares with optional L2 (ridge) regularization, solved
//! via the normal equations. The regression model of the demo pipeline's
//! "regression model" stage (Figure 3 of the paper pairs an embedding
//! model with a regression model).

use crate::linalg::{dot, solve, Matrix};
use serde::{Deserialize, Serialize};

/// Errors from model fitting.
#[derive(Debug, PartialEq)]
pub enum ModelError {
    /// No training rows / labels.
    EmptyTrainingSet,
    /// Rows and labels differ in count, or rows are ragged.
    ShapeMismatch(String),
    /// Normal equations were singular even after ridge damping.
    Singular,
    /// Predict called with the wrong feature width.
    WidthMismatch {
        /// Fitted width.
        expected: usize,
        /// Offered width.
        got: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyTrainingSet => write!(f, "empty training set"),
            ModelError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            ModelError::Singular => write!(f, "normal equations singular"),
            ModelError::WidthMismatch { expected, got } => {
                write!(f, "feature width mismatch: fitted {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Fitted linear regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fit by solving (XᵀX + λI)β = Xᵀy with an intercept column.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], l2: f64) -> Result<Self, ModelError> {
        if rows.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if rows.len() != targets.len() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} rows vs {} targets",
                rows.len(),
                targets.len()
            )));
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(ModelError::ShapeMismatch("ragged rows".into()));
        }
        // Design matrix with a leading 1s column.
        let design: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut d = Vec::with_capacity(width + 1);
                d.push(1.0);
                d.extend_from_slice(r);
                d
            })
            .collect();
        let x = Matrix::from_rows(&design);
        let mut gram = x.gram();
        // Ridge damping (not applied to the intercept).
        for i in 1..=width {
            let v = gram.get(i, i) + l2;
            gram.set(i, i, v);
        }
        let xty = x.t_vec(targets);
        let beta = solve(&gram, &xty).ok_or(ModelError::Singular)?;
        Ok(LinearRegression {
            intercept: beta[0],
            weights: beta[1..].to_vec(),
        })
    }

    /// Predict one row.
    pub fn predict_one(&self, row: &[f64]) -> Result<f64, ModelError> {
        if row.len() != self.weights.len() {
            return Err(ModelError::WidthMismatch {
                expected: self.weights.len(),
                got: row.len(),
            });
        }
        Ok(self.intercept + dot(&self.weights, row))
    }

    /// Predict many rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, ModelError> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 + 2a − b
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 * 0.1, (i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = LinearRegression::fit(&rows, &y, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.weights[0] - 2.0).abs() < 1e-8);
        assert!((m.weights[1] + 1.0).abs() < 1e-8);
        let p = m.predict(&rows).unwrap();
        for (a, b) in p.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn ridge_shrinks_weights() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        let plain = LinearRegression::fit(&rows, &y, 0.0).unwrap();
        let ridged = LinearRegression::fit(&rows, &y, 1000.0).unwrap();
        assert!(ridged.weights[0].abs() < plain.weights[0].abs());
    }

    #[test]
    fn collinear_features_singular_without_ridge() {
        // Second feature is an exact copy of the first.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(
            LinearRegression::fit(&rows, &y, 0.0).unwrap_err(),
            ModelError::Singular
        );
        // Ridge resolves it.
        assert!(LinearRegression::fit(&rows, &y, 0.1).is_ok());
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            LinearRegression::fit(&[], &[], 0.0).unwrap_err(),
            ModelError::EmptyTrainingSet
        );
        assert!(matches!(
            LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        let m = LinearRegression {
            weights: vec![1.0, 2.0],
            intercept: 0.0,
        };
        assert!(matches!(
            m.predict_one(&[1.0]).unwrap_err(),
            ModelError::WidthMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn serde_round_trip() {
        let m = LinearRegression {
            weights: vec![0.5, -1.5],
            intercept: 2.0,
        };
        let s = serde_json::to_string(&m).unwrap();
        let back: LinearRegression = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
