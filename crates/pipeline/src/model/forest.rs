//! A bagged random forest over the CART trees in [`super::tree`]:
//! bootstrap-sampled training sets, per-tree feature subsampling, and
//! probability averaging. The demo pipeline's heavier challenger model —
//! large enough that artifact dedup across retrains matters (§5.1).

use super::linear::ModelError;
use super::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Fraction of features each tree sees (0 < f ≤ 1).
    pub feature_fraction: f64,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 20,
            tree: TreeConfig::default(),
            feature_fraction: 0.7,
            seed: 17,
        }
    }
}

/// A fitted random forest classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    /// Trees with the feature indexes each was trained on.
    trees: Vec<(Vec<usize>, DecisionTree)>,
    width: usize,
}

impl RandomForest {
    /// Fit on row-major features and boolean labels.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[bool],
        config: ForestConfig,
    ) -> Result<Self, ModelError> {
        if rows.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if rows.len() != labels.len() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(ModelError::ShapeMismatch("ragged rows".into()));
        }
        if config.trees == 0 {
            return Err(ModelError::ShapeMismatch("need at least one tree".into()));
        }
        let feature_count =
            ((width as f64 * config.feature_fraction).ceil() as usize).clamp(1, width);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = rows.len();
        let mut trees = Vec::with_capacity(config.trees);
        for _ in 0..config.trees {
            // Bootstrap sample.
            let sample_idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Feature subsample (sorted, unique).
            let mut features: Vec<usize> = (0..width).collect();
            for i in (1..features.len()).rev() {
                let j = rng.gen_range(0..=i);
                features.swap(i, j);
            }
            features.truncate(feature_count);
            features.sort_unstable();
            let sub_rows: Vec<Vec<f64>> = sample_idx
                .iter()
                .map(|&i| features.iter().map(|&f| rows[i][f]).collect())
                .collect();
            let sub_labels: Vec<bool> = sample_idx.iter().map(|&i| labels[i]).collect();
            let tree = DecisionTree::fit(&sub_rows, &sub_labels, config.tree)?;
            trees.push((features, tree));
        }
        Ok(RandomForest { trees, width })
    }

    /// Averaged positive-class probability for one row.
    pub fn predict_proba_one(&self, row: &[f64]) -> Result<f64, ModelError> {
        if row.len() != self.width {
            return Err(ModelError::WidthMismatch {
                expected: self.width,
                got: row.len(),
            });
        }
        let mut sum = 0.0;
        for (features, tree) in &self.trees {
            let sub: Vec<f64> = features.iter().map(|&f| row[f]).collect();
            sum += tree.predict_proba_one(&sub)?;
        }
        Ok(sum / self.trees.len() as f64)
    }

    /// Probabilities for many rows.
    pub fn predict_proba(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, ModelError> {
        rows.iter().map(|r| self.predict_proba_one(r)).collect()
    }

    /// Hard labels at threshold 0.5.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<bool>, ModelError> {
        Ok(self
            .predict_proba(rows)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unif(state: &mut u64) -> f64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Noisy ring: positive iff the point lies inside an annulus — a
    /// shape single trees struggle with and ensembles smooth out.
    fn ring_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut st = seed;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x = unif(&mut st) * 2.0 - 1.0;
            let y = unif(&mut st) * 2.0 - 1.0;
            let r = (x * x + y * y).sqrt();
            rows.push(vec![x, y]);
            labels.push((0.4..0.8).contains(&r));
        }
        (rows, labels)
    }

    #[test]
    fn forest_learns_nonlinear_boundary() {
        let (rows, labels) = ring_data(1500, 3);
        let forest = RandomForest::fit(
            &rows,
            &labels,
            ForestConfig {
                trees: 25,
                feature_fraction: 1.0,
                tree: TreeConfig {
                    max_depth: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (test_rows, test_labels) = ring_data(500, 99);
        let preds = forest.predict(&test_rows).unwrap();
        let acc = preds
            .iter()
            .zip(test_labels.iter())
            .filter(|(p, l)| p == l)
            .count() as f64
            / test_rows.len() as f64;
        assert!(acc > 0.82, "forest accuracy {acc}");
        assert_eq!(forest.tree_count(), 25);
    }

    #[test]
    fn forest_beats_single_stump_on_hard_shape() {
        let (rows, labels) = ring_data(1500, 7);
        let stump = DecisionTree::fit(
            &rows,
            &labels,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let forest = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        let (test_rows, test_labels) = ring_data(500, 11);
        let acc = |preds: Vec<bool>| {
            preds
                .iter()
                .zip(test_labels.iter())
                .filter(|(p, l)| p == l)
                .count() as f64
                / test_rows.len() as f64
        };
        let stump_acc = acc(stump.predict(&test_rows).unwrap());
        let forest_acc = acc(forest.predict(&test_rows).unwrap());
        assert!(
            forest_acc > stump_acc + 0.05,
            "forest {forest_acc} vs stump {stump_acc}"
        );
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (rows, labels) = ring_data(400, 5);
        let forest = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        for p in forest.predict_proba(&rows).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let (rows, labels) = ring_data(300, 5);
        let a = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = RandomForest::fit(
            &rows,
            &labels,
            ForestConfig {
                seed: 18,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            RandomForest::fit(&[], &[], ForestConfig::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let (rows, labels) = ring_data(50, 1);
        assert!(matches!(
            RandomForest::fit(
                &rows,
                &labels,
                ForestConfig {
                    trees: 0,
                    ..Default::default()
                }
            ),
            Err(ModelError::ShapeMismatch(_))
        ));
        let forest = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        assert!(matches!(
            forest.predict_proba_one(&[1.0]),
            Err(ModelError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let (rows, labels) = ring_data(200, 13);
        let forest = RandomForest::fit(&rows, &labels, ForestConfig::default()).unwrap();
        let bytes = serde_json::to_vec(&forest).unwrap();
        let back: RandomForest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, forest);
    }
}
