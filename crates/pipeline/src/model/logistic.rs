//! Binary logistic regression trained with mini-batch gradient descent —
//! the classifier behind the paper's §5 demo task: "predicts ... whether a
//! rider will give a high tip (at least 20% of the fare)".

use super::linear::ModelError;
use crate::linalg::dot;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Gradient step size.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// L2 penalty on the weights (not the intercept).
    pub l2: f64,
    /// Mini-batch size (0 = full batch).
    pub batch_size: usize,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.1,
            epochs: 100,
            l2: 1e-4,
            batch_size: 64,
        }
    }
}

/// Fitted binary logistic regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fit on row-major features and boolean labels.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[bool],
        config: LogisticConfig,
    ) -> Result<Self, ModelError> {
        if rows.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if rows.len() != labels.len() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(ModelError::ShapeMismatch("ragged rows".into()));
        }
        let n = rows.len();
        let batch = if config.batch_size == 0 {
            n
        } else {
            config.batch_size.min(n)
        };
        let mut weights = vec![0.0; width];
        let mut intercept = 0.0;
        for _ in 0..config.epochs {
            let mut start = 0;
            while start < n {
                let end = (start + batch).min(n);
                let m = (end - start) as f64;
                let mut grad_w = vec![0.0; width];
                let mut grad_b = 0.0;
                for i in start..end {
                    let p = sigmoid(intercept + dot(&weights, &rows[i]));
                    let err = p - if labels[i] { 1.0 } else { 0.0 };
                    grad_b += err;
                    for (g, &x) in grad_w.iter_mut().zip(rows[i].iter()) {
                        *g += err * x;
                    }
                }
                intercept -= config.learning_rate * grad_b / m;
                for (w, g) in weights.iter_mut().zip(grad_w.iter()) {
                    *w -= config.learning_rate * (g / m + config.l2 * *w);
                }
                start = end;
            }
        }
        Ok(LogisticRegression { weights, intercept })
    }

    /// Predicted probability of the positive class for one row.
    pub fn predict_proba_one(&self, row: &[f64]) -> Result<f64, ModelError> {
        if row.len() != self.weights.len() {
            return Err(ModelError::WidthMismatch {
                expected: self.weights.len(),
                got: row.len(),
            });
        }
        Ok(sigmoid(self.intercept + dot(&self.weights, row)))
    }

    /// Predicted probabilities for many rows.
    pub fn predict_proba(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, ModelError> {
        rows.iter().map(|r| self.predict_proba_one(r)).collect()
    }

    /// Hard labels at threshold 0.5.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<bool>, ModelError> {
        Ok(self
            .predict_proba(rows)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform in [0,1).
    fn unif(state: &mut u64) -> f64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn separable_data(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut st = 42u64;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x = unif(&mut st) * 4.0 - 2.0;
            let y = unif(&mut st) * 4.0 - 2.0;
            rows.push(vec![x, y]);
            labels.push(x + y > 0.0);
        }
        (rows, labels)
    }

    #[test]
    fn learns_separable_boundary() {
        let (rows, labels) = separable_data(800);
        let m = LogisticRegression::fit(&rows, &labels, LogisticConfig::default()).unwrap();
        let preds = m.predict(&rows).unwrap();
        let correct = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count();
        let acc = correct as f64 / rows.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // Boundary x + y = 0 → weights roughly equal, positive.
        assert!(m.weights[0] > 0.0 && m.weights[1] > 0.0);
    }

    #[test]
    fn probabilities_are_calibrated_direction() {
        let (rows, labels) = separable_data(500);
        let m = LogisticRegression::fit(&rows, &labels, LogisticConfig::default()).unwrap();
        let deep_pos = m.predict_proba_one(&[2.0, 2.0]).unwrap();
        let deep_neg = m.predict_proba_one(&[-2.0, -2.0]).unwrap();
        assert!(deep_pos > 0.9);
        assert!(deep_neg < 0.1);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn full_batch_matches_minibatch_direction() {
        let (rows, labels) = separable_data(300);
        let full = LogisticRegression::fit(
            &rows,
            &labels,
            LogisticConfig {
                batch_size: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let mini = LogisticRegression::fit(&rows, &labels, LogisticConfig::default()).unwrap();
        // Same sign structure.
        assert_eq!(full.weights[0] > 0.0, mini.weights[0] > 0.0);
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            LogisticRegression::fit(&[], &[], LogisticConfig::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            LogisticRegression::fit(&[vec![1.0]], &[true, false], LogisticConfig::default()),
            Err(ModelError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let m = LogisticRegression {
            weights: vec![1.0],
            intercept: -0.5,
        };
        let s = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<LogisticRegression>(&s).unwrap(), m);
    }
}
