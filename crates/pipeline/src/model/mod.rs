//! Models trained by the pipeline substrate: ordinary least squares
//! ([`linear`]), binary logistic regression ([`logistic`]), and a CART
//! decision tree ([`tree`]). All models serialize to JSON artifacts so the
//! observability layer can version and deduplicate them.

pub mod forest;
pub mod linear;
pub mod logistic;
pub mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use linear::{LinearRegression, ModelError};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use tree::{DecisionTree, TreeConfig, TreeNode};
