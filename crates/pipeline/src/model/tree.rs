//! A CART-style binary decision tree classifier (Gini impurity, axis-
//! aligned splits). The demo pipeline uses it as the *baseline/challenger*
//! model so that cross-model comparisons flow through the observability
//! layer like any other metric.

use super::linear::ModelError;
use serde::{Deserialize, Serialize};

/// Tree hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (1 = a single stump split).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate thresholds per feature (quantile cuts).
    pub candidate_cuts: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 10,
            candidate_cuts: 16,
        }
    }
}

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Internal split: `feature < threshold` goes left, else right.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left subtree (feature < threshold).
        left: Box<TreeNode>,
        /// Right subtree.
        right: Box<TreeNode>,
    },
    /// Leaf with a positive-class probability.
    Leaf {
        /// Fraction of positive training labels at this leaf.
        probability: f64,
        /// Training samples that landed here.
        samples: usize,
    },
}

/// Fitted decision tree classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: TreeNode,
    width: usize,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fit on row-major features and boolean labels.
    pub fn fit(rows: &[Vec<f64>], labels: &[bool], config: TreeConfig) -> Result<Self, ModelError> {
        if rows.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if rows.len() != labels.len() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(ModelError::ShapeMismatch("ragged rows".into()));
        }
        let indexes: Vec<usize> = (0..rows.len()).collect();
        let root = Self::build(rows, labels, &indexes, config, 1);
        Ok(DecisionTree { root, width })
    }

    #[allow(clippy::needless_range_loop)] // feature index is the split id
    fn build(
        rows: &[Vec<f64>],
        labels: &[bool],
        indexes: &[usize],
        config: TreeConfig,
        depth: usize,
    ) -> TreeNode {
        let total = indexes.len();
        let pos = indexes.iter().filter(|&&i| labels[i]).count();
        let leaf = || TreeNode::Leaf {
            probability: if total == 0 {
                0.5
            } else {
                pos as f64 / total as f64
            },
            samples: total,
        };
        if depth > config.max_depth || total < config.min_samples_split || pos == 0 || pos == total
        {
            return leaf();
        }
        let parent_gini = gini(pos, total);
        let width = rows[indexes[0]].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for f in 0..width {
            let mut vals: Vec<f64> = indexes
                .iter()
                .map(|&i| rows[i][f])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                continue;
            }
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Quantile-spaced candidate thresholds (midpoints).
            let cuts = config.candidate_cuts.max(1).min(vals.len() - 1);
            for c in 1..=cuts {
                let pos_idx = c * (vals.len() - 1) / (cuts + 1) + 1;
                let threshold = (vals[pos_idx - 1] + vals[pos_idx.min(vals.len() - 1)]) / 2.0;
                let mut lt = 0usize;
                let mut lp = 0usize;
                for &i in indexes {
                    if rows[i][f] < threshold {
                        lt += 1;
                        if labels[i] {
                            lp += 1;
                        }
                    }
                }
                let rt = total - lt;
                if lt == 0 || rt == 0 {
                    continue;
                }
                let rp = pos - lp;
                let weighted = (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt)) / total as f64;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                    best = Some((f, threshold, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return leaf();
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indexes.iter().partition(|&&i| rows[i][feature] < threshold);
        TreeNode::Split {
            feature,
            threshold,
            left: Box::new(Self::build(rows, labels, &left_idx, config, depth + 1)),
            right: Box::new(Self::build(rows, labels, &right_idx, config, depth + 1)),
        }
    }

    /// Positive-class probability for one row.
    pub fn predict_proba_one(&self, row: &[f64]) -> Result<f64, ModelError> {
        if row.len() != self.width {
            return Err(ModelError::WidthMismatch {
                expected: self.width,
                got: row.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { probability, .. } => return Ok(*probability),
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // NaN (null at serving time) routes right: the
                    // "unknown" branch shares the ≥ threshold side.
                    node = if row[*feature] < *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Probabilities for many rows.
    pub fn predict_proba(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, ModelError> {
        rows.iter().map(|r| self.predict_proba_one(r)).collect()
    }

    /// Hard labels at threshold 0.5.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<bool>, ModelError> {
        Ok(self
            .predict_proba(rows)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    /// Number of leaves (model-complexity diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn count(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        // XOR: not linearly separable, easily tree-separable.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x = (i % 2) as f64 + (i as f64 * 0.001);
            let y = ((i / 2) % 2) as f64 + (i as f64 * 0.0007);
            rows.push(vec![x, y]);
            labels.push((x < 0.7) != (y < 0.7));
        }
        (rows, labels)
    }

    #[test]
    fn learns_xor() {
        let (rows, labels) = xor_data();
        let t = DecisionTree::fit(&rows, &labels, TreeConfig::default()).unwrap();
        let preds = t.predict(&rows).unwrap();
        let acc = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count() as f64
            / rows.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(t.depth() >= 2, "xor needs two levels");
    }

    #[test]
    fn pure_node_is_leaf() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![true, true, true];
        let t = DecisionTree::fit(&rows, &labels, TreeConfig::default()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict_proba_one(&[9.0]).unwrap(), 1.0);
    }

    #[test]
    fn max_depth_respected() {
        let (rows, labels) = xor_data();
        let t = DecisionTree::fit(
            &rows,
            &labels,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(t.depth() <= 2, "stump plus leaves");
        assert!(t.leaf_count() <= 2);
    }

    #[test]
    fn probabilities_reflect_leaf_purity() {
        // One feature, mixed labels on each side of an obvious split.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let t = DecisionTree::fit(&rows, &labels, TreeConfig::default()).unwrap();
        assert!(t.predict_proba_one(&[10.0]).unwrap() < 0.2);
        assert!(t.predict_proba_one(&[90.0]).unwrap() > 0.8);
    }

    #[test]
    fn nan_routes_to_a_leaf() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let t = DecisionTree::fit(&rows, &labels, TreeConfig::default()).unwrap();
        // Must not panic; NaN < x is false, so it follows right branches.
        let p = t.predict_proba_one(&[f64::NAN]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            DecisionTree::fit(&[], &[], TreeConfig::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let t = DecisionTree::fit(
            &[vec![1.0], vec![2.0]],
            &[true, false],
            TreeConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            t.predict_proba_one(&[1.0, 2.0]),
            Err(ModelError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let (rows, labels) = xor_data();
        let t = DecisionTree::fit(&rows, &labels, TreeConfig::default()).unwrap();
        let s = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
