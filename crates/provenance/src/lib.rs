//! # mltrace-provenance
//!
//! The lineage substrate of the mltrace reproduction: an interned
//! run/pointer DAG ([`graph`]), DFS output traces with time-travel
//! producer resolution ([`trace`]), slice-based lineage aggregation and
//! culprit ranking ([`mod@slice`]), DAG algorithms ([`algo`]), and
//! attention-directing summaries ([`summarize`]).

#![warn(missing_docs)]

pub mod algo;
pub mod diff;
pub mod graph;
pub mod slice;
pub mod summarize;
pub mod trace;

pub use algo::{ancestor_runs, downstream_runs, topo_order};
pub use diff::{diff_snapshots, snapshot, PipelineSnapshot, SnapshotDiff};
pub use graph::{IoIdx, IoNode, LineageGraph, RunIdx, RunNode};
pub use slice::{slice_lineage, RankedRun, SliceReport};
pub use summarize::{component_summary, most_problematic, ComponentSummary};
pub use trace::{trace_output, trace_run, TraceNode, TraceOptions};
