//! Pipeline-snapshot comparison: §2.1 of the paper — "Rarely is the
//! architecture for an ML pipeline known upfront. As ML pipelines stand in
//! production over time, new components are added and existing components
//! are removed" — and the fourth query category, "questions about
//! historical pipeline snapshots".
//!
//! A [`PipelineSnapshot`] captures the architecture *as executed* during a
//! time window: which components ran, which code versions they ran, and
//! which component-to-component edges the inferred dependencies realized.
//! [`diff_snapshots`] compares two windows.

use crate::graph::LineageGraph;
use std::collections::{BTreeMap, BTreeSet};

/// The architecture realized in one time window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineSnapshot {
    /// Window start (inclusive), epoch milliseconds.
    pub from_ms: u64,
    /// Window end (exclusive), epoch milliseconds.
    pub to_ms: u64,
    /// Components that ran, with the set of code versions they ran as.
    pub components: BTreeMap<String, BTreeSet<String>>,
    /// Realized dependency edges: (upstream component, downstream
    /// component).
    pub edges: BTreeSet<(String, String)>,
    /// Runs in the window.
    pub run_count: usize,
}

/// Capture the architecture executed between `from_ms` (inclusive) and
/// `to_ms` (exclusive). `code_of` supplies each run's code snapshot (the
/// graph itself does not retain code hashes; pass
/// `|run_id| store.run(run_id)...code_hash`).
pub fn snapshot(
    graph: &LineageGraph,
    from_ms: u64,
    to_ms: u64,
    mut code_of: impl FnMut(u64) -> Option<String>,
) -> PipelineSnapshot {
    let mut snap = PipelineSnapshot {
        from_ms,
        to_ms,
        ..Default::default()
    };
    for idx in graph.run_indexes() {
        let run = graph.run(idx);
        if run.start_ms < from_ms || run.start_ms >= to_ms {
            continue;
        }
        snap.run_count += 1;
        let versions = snap.components.entry(run.component.clone()).or_default();
        if let Some(code) = code_of(run.run_id) {
            if !code.is_empty() {
                versions.insert(code);
            }
        }
        for &dep in &run.deps {
            let upstream = &graph.run(dep).component;
            if upstream != &run.component {
                snap.edges.insert((upstream.clone(), run.component.clone()));
            }
        }
    }
    snap
}

/// What changed between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDiff {
    /// Components present in `after` but not `before`.
    pub added_components: BTreeSet<String>,
    /// Components present in `before` but not `after`.
    pub removed_components: BTreeSet<String>,
    /// Components whose code-version set changed (present in both).
    pub changed_code: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)>,
    /// Dependency edges that appeared.
    pub added_edges: BTreeSet<(String, String)>,
    /// Dependency edges that disappeared.
    pub removed_edges: BTreeSet<(String, String)>,
}

impl SnapshotDiff {
    /// True when the architecture (components + edges + code) is
    /// unchanged.
    pub fn is_empty(&self) -> bool {
        self.added_components.is_empty()
            && self.removed_components.is_empty()
            && self.changed_code.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
    }

    /// Text rendering for the UI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("no architecture changes\n");
            return out;
        }
        for c in &self.added_components {
            let _ = writeln!(out, "+ component {c}");
        }
        for c in &self.removed_components {
            let _ = writeln!(out, "- component {c}");
        }
        for (c, (before, after)) in &self.changed_code {
            let _ = writeln!(out, "~ {c}: code {before:?} → {after:?}");
        }
        for (a, b) in &self.added_edges {
            let _ = writeln!(out, "+ edge {a} → {b}");
        }
        for (a, b) in &self.removed_edges {
            let _ = writeln!(out, "- edge {a} → {b}");
        }
        out
    }
}

/// Compare two snapshots (typically adjacent time windows).
pub fn diff_snapshots(before: &PipelineSnapshot, after: &PipelineSnapshot) -> SnapshotDiff {
    let mut diff = SnapshotDiff::default();
    for c in after.components.keys() {
        if !before.components.contains_key(c) {
            diff.added_components.insert(c.clone());
        }
    }
    for (c, before_code) in &before.components {
        match after.components.get(c) {
            None => {
                diff.removed_components.insert(c.clone());
            }
            Some(after_code) if after_code != before_code => {
                diff.changed_code
                    .insert(c.clone(), (before_code.clone(), after_code.clone()));
            }
            Some(_) => {}
        }
    }
    for e in &after.edges {
        if !before.edges.contains(e) {
            diff.added_edges.insert(e.clone());
        }
    }
    for e in &before.edges {
        if !after.edges.contains(e) {
            diff.removed_edges.insert(e.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Week 1: etl → train (code v1). Week 2: etl → train (code v2),
    /// plus a new ensemble component consuming train's model.
    fn evolving_graph() -> (LineageGraph, BTreeMap<u64, String>) {
        let mut g = LineageGraph::new();
        let mut code = BTreeMap::new();
        g.add_run(1, "etl", 100, false, &[], &strs(&["raw"]), &[]);
        code.insert(1, "etl-v1".to_string());
        g.add_run(
            2,
            "train",
            200,
            false,
            &strs(&["raw"]),
            &strs(&["model"]),
            &[1],
        );
        code.insert(2, "train-v1".to_string());
        // Week 2 (from 1000).
        g.add_run(3, "etl", 1100, false, &[], &strs(&["raw"]), &[]);
        code.insert(3, "etl-v1".to_string());
        g.add_run(
            4,
            "train",
            1200,
            false,
            &strs(&["raw"]),
            &strs(&["model"]),
            &[3],
        );
        code.insert(4, "train-v2".to_string());
        g.add_run(
            5,
            "ensemble",
            1300,
            false,
            &strs(&["model"]),
            &strs(&["blended"]),
            &[4],
        );
        code.insert(5, "ensemble-v1".to_string());
        (g, code)
    }

    #[test]
    fn snapshot_captures_window_architecture() {
        let (g, code) = evolving_graph();
        let week1 = snapshot(&g, 0, 1000, |id| code.get(&id).cloned());
        assert_eq!(week1.run_count, 2);
        assert_eq!(week1.components.len(), 2);
        assert!(week1.edges.contains(&("etl".into(), "train".into())));
        assert_eq!(
            week1.components["train"],
            BTreeSet::from(["train-v1".to_string()])
        );
    }

    #[test]
    fn diff_detects_additions_and_code_changes() {
        let (g, code) = evolving_graph();
        let week1 = snapshot(&g, 0, 1000, |id| code.get(&id).cloned());
        let week2 = snapshot(&g, 1000, 2000, |id| code.get(&id).cloned());
        let diff = diff_snapshots(&week1, &week2);
        assert!(!diff.is_empty());
        assert_eq!(
            diff.added_components,
            BTreeSet::from(["ensemble".to_string()])
        );
        assert!(diff.removed_components.is_empty());
        assert!(diff.changed_code.contains_key("train"));
        let (before, after) = &diff.changed_code["train"];
        assert!(before.contains("train-v1") && after.contains("train-v2"));
        assert!(diff
            .added_edges
            .contains(&("train".to_string(), "ensemble".to_string())));
        let rendered = diff.render();
        assert!(rendered.contains("+ component ensemble"));
        assert!(rendered.contains("~ train"));
        assert!(rendered.contains("+ edge train → ensemble"));
    }

    #[test]
    fn identical_windows_diff_empty() {
        let (g, code) = evolving_graph();
        let week1 = snapshot(&g, 0, 1000, |id| code.get(&id).cloned());
        let diff = diff_snapshots(&week1, &week1);
        assert!(diff.is_empty());
        assert_eq!(diff.render(), "no architecture changes\n");
    }

    #[test]
    fn removal_detected() {
        let (g, code) = evolving_graph();
        let week2 = snapshot(&g, 1000, 2000, |id| code.get(&id).cloned());
        let week1 = snapshot(&g, 0, 1000, |id| code.get(&id).cloned());
        let diff = diff_snapshots(&week2, &week1);
        assert_eq!(
            diff.removed_components,
            BTreeSet::from(["ensemble".to_string()])
        );
        assert!(diff
            .removed_edges
            .contains(&("train".to_string(), "ensemble".to_string())));
    }

    #[test]
    fn self_edges_excluded() {
        let mut g = LineageGraph::new();
        g.add_run(1, "updater", 10, false, &strs(&["s"]), &strs(&["s"]), &[]);
        g.add_run(2, "updater", 20, false, &strs(&["s"]), &strs(&["s"]), &[1]);
        let snap = snapshot(&g, 0, 100, |_| None);
        assert!(snap.edges.is_empty(), "self-dependencies are not edges");
    }
}
