//! The lineage graph: component runs and I/O pointers as nodes, with
//! produces / consumes / depends-on edges. This is the pipeline computation
//! DAG the paper's system "reconstructs ... to help practitioners catch
//! failures" (§2.2).
//!
//! Node payloads are interned into arenas and referenced by dense indexes,
//! so graphs at the paper's §3.4 scale (Ω(1M) nodes per day) stay compact
//! and traversals stay allocation-light.

use std::collections::HashMap;

/// Dense index of a run node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunIdx(pub u32);

/// Dense index of an I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoIdx(pub u32);

/// A component-run node.
#[derive(Debug, Clone)]
pub struct RunNode {
    /// External run identifier (the store's `RunId`).
    pub run_id: u64,
    /// Component name.
    pub component: String,
    /// Start time, epoch milliseconds.
    pub start_ms: u64,
    /// Whether the run (body or trigger) failed.
    pub failed: bool,
    /// Runs this run depends on (resolved by the execution layer).
    pub deps: Vec<RunIdx>,
    /// Input I/O nodes.
    pub inputs: Vec<IoIdx>,
    /// Output I/O nodes.
    pub outputs: Vec<IoIdx>,
}

/// An I/O pointer node.
#[derive(Debug, Clone)]
pub struct IoNode {
    /// Pointer identifier.
    pub name: String,
    /// Runs that produced this pointer, ascending by start time.
    pub producers: Vec<RunIdx>,
    /// Runs that consumed this pointer, ascending by insertion.
    pub consumers: Vec<RunIdx>,
}

/// The lineage graph.
#[derive(Debug, Default)]
pub struct LineageGraph {
    runs: Vec<RunNode>,
    ios: Vec<IoNode>,
    run_index: HashMap<u64, RunIdx>,
    io_index: HashMap<String, IoIdx>,
}

impl LineageGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or fetch) an I/O node by name.
    pub fn io(&mut self, name: &str) -> IoIdx {
        if let Some(&idx) = self.io_index.get(name) {
            return idx;
        }
        let idx = IoIdx(self.ios.len() as u32);
        self.ios.push(IoNode {
            name: name.to_owned(),
            producers: Vec::new(),
            consumers: Vec::new(),
        });
        self.io_index.insert(name.to_owned(), idx);
        idx
    }

    /// Add a run with its I/O sets and resolved run-level dependencies
    /// (external run ids; unknown dependency ids are ignored). Returns the
    /// new node's index. Panics if `run_id` was already added.
    #[allow(clippy::too_many_arguments)] // mirrors the run-record shape
    pub fn add_run(
        &mut self,
        run_id: u64,
        component: &str,
        start_ms: u64,
        failed: bool,
        inputs: &[String],
        outputs: &[String],
        dep_run_ids: &[u64],
    ) -> RunIdx {
        assert!(
            !self.run_index.contains_key(&run_id),
            "run {run_id} already in graph"
        );
        let idx = RunIdx(self.runs.len() as u32);
        let input_idxs: Vec<IoIdx> = inputs.iter().map(|n| self.io(n)).collect();
        let output_idxs: Vec<IoIdx> = outputs.iter().map(|n| self.io(n)).collect();
        for &io in &input_idxs {
            self.ios[io.0 as usize].consumers.push(idx);
        }
        for &io in &output_idxs {
            // Keep producers sorted by start time for time-travel lookups.
            let producers = &mut self.ios[io.0 as usize].producers;
            let pos = producers.partition_point(|&r| self.runs[r.0 as usize].start_ms <= start_ms);
            producers.insert(pos, idx);
        }
        let deps: Vec<RunIdx> = dep_run_ids
            .iter()
            .filter_map(|id| self.run_index.get(id).copied())
            .collect();
        self.runs.push(RunNode {
            run_id,
            component: component.to_owned(),
            start_ms,
            failed,
            deps,
            inputs: input_idxs,
            outputs: output_idxs,
        });
        self.run_index.insert(run_id, idx);
        idx
    }

    /// Number of run nodes.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of I/O nodes.
    pub fn io_count(&self) -> usize {
        self.ios.len()
    }

    /// Run node by index.
    pub fn run(&self, idx: RunIdx) -> &RunNode {
        &self.runs[idx.0 as usize]
    }

    /// I/O node by index.
    pub fn io_node(&self, idx: IoIdx) -> &IoNode {
        &self.ios[idx.0 as usize]
    }

    /// Look up a run node by external id.
    pub fn run_by_id(&self, run_id: u64) -> Option<RunIdx> {
        self.run_index.get(&run_id).copied()
    }

    /// Look up an I/O node by name.
    pub fn io_by_name(&self, name: &str) -> Option<IoIdx> {
        self.io_index.get(name).copied()
    }

    /// Iterate all run indexes.
    pub fn run_indexes(&self) -> impl Iterator<Item = RunIdx> + '_ {
        (0..self.runs.len() as u32).map(RunIdx)
    }

    /// The producer of `io` whose start time is the latest ≤ `at_ms`
    /// (`u64::MAX` for "the freshest"). This is the paper's runtime
    /// dependency-resolution rule applied at query time.
    pub fn producer_at(&self, io: IoIdx, at_ms: u64) -> Option<RunIdx> {
        let producers = &self.ios[io.0 as usize].producers;
        let pos = producers.partition_point(|&r| self.runs[r.0 as usize].start_ms <= at_ms);
        if pos == 0 {
            None
        } else {
            Some(producers[pos - 1])
        }
    }

    /// The freshest producer of `io`.
    pub fn latest_producer(&self, io: IoIdx) -> Option<RunIdx> {
        self.ios[io.0 as usize].producers.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn interning_is_stable() {
        let mut g = LineageGraph::new();
        let a = g.io("features.csv");
        let b = g.io("features.csv");
        let c = g.io("model.bin");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.io_count(), 2);
        assert_eq!(g.io_node(a).name, "features.csv");
    }

    #[test]
    fn add_run_wires_edges() {
        let mut g = LineageGraph::new();
        let etl = g.add_run(1, "etl", 100, false, &[], &strs(&["raw.csv"]), &[]);
        let clean = g.add_run(
            2,
            "clean",
            200,
            false,
            &strs(&["raw.csv"]),
            &strs(&["clean.csv"]),
            &[1],
        );
        assert_eq!(g.run_count(), 2);
        let raw = g.io_by_name("raw.csv").unwrap();
        assert_eq!(g.io_node(raw).producers, vec![etl]);
        assert_eq!(g.io_node(raw).consumers, vec![clean]);
        assert_eq!(g.run(clean).deps, vec![etl]);
        assert_eq!(g.run_by_id(2), Some(clean));
        assert_eq!(g.run_by_id(99), None);
    }

    #[test]
    fn unknown_dep_ids_are_ignored() {
        let mut g = LineageGraph::new();
        let r = g.add_run(1, "x", 1, false, &[], &[], &[42, 43]);
        assert!(g.run(r).deps.is_empty());
    }

    #[test]
    fn producer_at_respects_time() {
        let mut g = LineageGraph::new();
        let v1 = g.add_run(1, "featurize", 100, false, &[], &strs(&["f.csv"]), &[]);
        let v2 = g.add_run(2, "featurize", 300, false, &[], &strs(&["f.csv"]), &[]);
        let f = g.io_by_name("f.csv").unwrap();
        assert_eq!(g.producer_at(f, 50), None);
        assert_eq!(g.producer_at(f, 100), Some(v1));
        assert_eq!(g.producer_at(f, 250), Some(v1));
        assert_eq!(g.producer_at(f, 400), Some(v2));
        assert_eq!(g.latest_producer(f), Some(v2));
    }

    #[test]
    fn producers_sorted_even_with_out_of_order_insertion() {
        let mut g = LineageGraph::new();
        g.add_run(1, "f", 300, false, &[], &strs(&["x"]), &[]);
        g.add_run(2, "f", 100, false, &[], &strs(&["x"]), &[]);
        g.add_run(3, "f", 200, false, &[], &strs(&["x"]), &[]);
        let x = g.io_by_name("x").unwrap();
        let starts: Vec<u64> = g
            .io_node(x)
            .producers
            .iter()
            .map(|&r| g.run(r).start_ms)
            .collect();
        assert_eq!(starts, vec![100, 200, 300]);
    }

    #[test]
    #[should_panic(expected = "already in graph")]
    fn duplicate_run_id_panics() {
        let mut g = LineageGraph::new();
        g.add_run(1, "a", 1, false, &[], &[], &[]);
        g.add_run(1, "b", 2, false, &[], &[], &[]);
    }
}
