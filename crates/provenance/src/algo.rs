//! Graph algorithms over the lineage DAG: topological ordering, forward
//! impact sets (what is downstream of a pointer — the query behind §5.3's
//! deletion propagation), and ancestor sets.

use crate::graph::{LineageGraph, RunIdx};
use std::collections::{HashSet, VecDeque};

/// Topological order of run nodes over dependency edges (dependencies
/// first). Returns `None` if the dependency edges contain a cycle (which
/// the execution layer never produces, but hand-built graphs might).
pub fn topo_order(graph: &LineageGraph) -> Option<Vec<RunIdx>> {
    let n = graph.run_count();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<RunIdx>> = vec![Vec::new(); n];
    for idx in graph.run_indexes() {
        for &dep in &graph.run(idx).deps {
            indegree[idx.0 as usize] += 1;
            dependents[dep.0 as usize].push(idx);
        }
    }
    let mut queue: VecDeque<RunIdx> = graph
        .run_indexes()
        .filter(|r| indegree[r.0 as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(r) = queue.pop_front() {
        order.push(r);
        for &d in &dependents[r.0 as usize] {
            indegree[d.0 as usize] -= 1;
            if indegree[d.0 as usize] == 0 {
                queue.push_back(d);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// All runs transitively downstream of an I/O pointer (runs that consumed
/// it, runs that consumed their outputs, ...). BFS over consumer edges.
pub fn downstream_runs(graph: &LineageGraph, io_name: &str) -> HashSet<RunIdx> {
    let mut result = HashSet::new();
    let Some(start) = graph.io_by_name(io_name) else {
        return result;
    };
    let mut io_queue = VecDeque::from([start]);
    let mut seen_io = HashSet::from([start]);
    while let Some(io) = io_queue.pop_front() {
        for &run in &graph.io_node(io).consumers {
            if result.insert(run) {
                for &out in &graph.run(run).outputs {
                    if seen_io.insert(out) {
                        io_queue.push_back(out);
                    }
                }
            }
        }
    }
    result
}

/// All runs transitively upstream of a run (its dependency closure).
pub fn ancestor_runs(graph: &LineageGraph, run_id: u64) -> HashSet<RunIdx> {
    let mut result = HashSet::new();
    let Some(start) = graph.run_by_id(run_id) else {
        return result;
    };
    let mut queue = VecDeque::from([start]);
    while let Some(r) = queue.pop_front() {
        for &dep in &graph.run(r).deps {
            if result.insert(dep) {
                queue.push_back(dep);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn chain() -> LineageGraph {
        let mut g = LineageGraph::new();
        g.add_run(1, "etl", 10, false, &[], &strs(&["a"]), &[]);
        g.add_run(2, "clean", 20, false, &strs(&["a"]), &strs(&["b"]), &[1]);
        g.add_run(3, "train", 30, false, &strs(&["b"]), &strs(&["m"]), &[2]);
        g.add_run(
            4,
            "infer",
            40,
            false,
            &strs(&["b", "m"]),
            &strs(&["p"]),
            &[2, 3],
        );
        g
    }

    #[test]
    fn topo_respects_dependencies() {
        let g = chain();
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| {
                order
                    .iter()
                    .position(|r| g.run(*r).run_id == i as u64 + 1)
                    .unwrap()
            })
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn downstream_of_source_covers_all() {
        let g = chain();
        let down = downstream_runs(&g, "a");
        assert_eq!(down.len(), 3); // clean, train, infer
        let down_b = downstream_runs(&g, "b");
        assert_eq!(down_b.len(), 2); // train, infer
        assert!(downstream_runs(&g, "p").is_empty());
        assert!(downstream_runs(&g, "ghost").is_empty());
    }

    #[test]
    fn ancestors_of_sink_cover_all() {
        let g = chain();
        let up = ancestor_runs(&g, 4);
        assert_eq!(up.len(), 3);
        assert!(ancestor_runs(&g, 1).is_empty());
        assert!(ancestor_runs(&g, 999).is_empty());
    }

    #[test]
    fn self_loop_io_does_not_hang_downstream() {
        let mut g = LineageGraph::new();
        g.add_run(1, "updater", 10, false, &strs(&["s"]), &strs(&["s"]), &[]);
        let down = downstream_runs(&g, "s");
        assert_eq!(down.len(), 1);
    }
}
