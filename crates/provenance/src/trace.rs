//! Output traces: "the end-to-end journey of a data point", computed on
//! the fly via depth-first search (§3.1, UI layer).
//!
//! A trace starts from an output pointer, resolves the run that produced
//! it at the relevant time, and expands that run's inputs recursively
//! through their own producers, yielding a tree whose leaves are the most
//! upstream sources.

use crate::graph::{IoIdx, LineageGraph, RunIdx};
use std::collections::HashSet;
use std::fmt::Write as _;

/// One node of a trace tree: a run plus, per input pointer, the producing
/// sub-trace (if any run produced that pointer in time).
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The traced run.
    pub run: RunIdx,
    /// External run id.
    pub run_id: u64,
    /// Component name.
    pub component: String,
    /// Run start, epoch milliseconds.
    pub start_ms: u64,
    /// Whether the run failed.
    pub failed: bool,
    /// For each input pointer: (name, producing sub-trace or None).
    pub inputs: Vec<(String, Option<TraceNode>)>,
}

impl TraceNode {
    /// Number of runs in this trace (including self).
    pub fn size(&self) -> usize {
        1 + self
            .inputs
            .iter()
            .filter_map(|(_, t)| t.as_ref())
            .map(TraceNode::size)
            .sum::<usize>()
    }

    /// Depth of the trace tree (a lone run is depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .inputs
            .iter()
            .filter_map(|(_, t)| t.as_ref())
            .map(TraceNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order visit of all runs in the trace.
    pub fn visit<F: FnMut(&TraceNode)>(&self, f: &mut F) {
        f(self);
        for (_, sub) in &self.inputs {
            if let Some(t) = sub {
                t.visit(f);
            }
        }
    }

    /// Collect all (component, run_id) pairs in the trace.
    pub fn runs(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.visit(&mut |n| out.push((n.component.clone(), n.run_id)));
        out
    }

    /// Render an indented text view (the Figure 4 "trace" command).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, None);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, via: Option<&str>) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let marker = if self.failed { "✗" } else { "✓" };
        match via {
            Some(io) => {
                let _ = writeln!(
                    out,
                    "{marker} {} (run#{}) ← {io}",
                    self.component, self.run_id
                );
            }
            None => {
                let _ = writeln!(out, "{marker} {} (run#{})", self.component, self.run_id);
            }
        }
        for (io, sub) in &self.inputs {
            match sub {
                Some(t) => t.render_into(out, depth + 1, Some(io)),
                None => {
                    for _ in 0..depth + 1 {
                        out.push_str("  ");
                    }
                    let _ = writeln!(out, "• source: {io}");
                }
            }
        }
    }
}

/// Options bounding a trace expansion.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Maximum tree depth (guards pathological graphs).
    pub max_depth: usize,
    /// When true, resolve each input to the latest producer *before the
    /// consuming run started* (time-travel semantics); when false, use the
    /// freshest producer.
    pub as_of_run_start: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            max_depth: 64,
            as_of_run_start: true,
        }
    }
}

/// Trace the lineage of `output` (an I/O pointer name): DFS backward from
/// its most recent producer. Returns `None` when nothing produced it.
pub fn trace_output(graph: &LineageGraph, output: &str, opts: TraceOptions) -> Option<TraceNode> {
    let io = graph.io_by_name(output)?;
    let producer = graph.latest_producer(io)?;
    let mut on_path = HashSet::new();
    Some(expand(graph, producer, opts, 1, &mut on_path))
}

/// Trace from a specific run instead of an output pointer.
pub fn trace_run(graph: &LineageGraph, run_id: u64, opts: TraceOptions) -> Option<TraceNode> {
    let idx = graph.run_by_id(run_id)?;
    let mut on_path = HashSet::new();
    Some(expand(graph, idx, opts, 1, &mut on_path))
}

fn expand(
    graph: &LineageGraph,
    run: RunIdx,
    opts: TraceOptions,
    depth: usize,
    on_path: &mut HashSet<RunIdx>,
) -> TraceNode {
    let node = graph.run(run);
    let mut inputs = Vec::with_capacity(node.inputs.len());
    on_path.insert(run);
    for &io in &node.inputs {
        let sub = if depth >= opts.max_depth {
            None
        } else {
            resolve(graph, io, node.start_ms, opts)
                .filter(|p| !on_path.contains(p))
                .map(|p| expand(graph, p, opts, depth + 1, on_path))
        };
        inputs.push((graph.io_node(io).name.clone(), sub));
    }
    on_path.remove(&run);
    TraceNode {
        run,
        run_id: node.run_id,
        component: node.component.clone(),
        start_ms: node.start_ms,
        failed: node.failed,
        inputs,
    }
}

fn resolve(graph: &LineageGraph, io: IoIdx, at_ms: u64, opts: TraceOptions) -> Option<RunIdx> {
    if opts.as_of_run_start {
        graph.producer_at(io, at_ms)
    } else {
        graph.latest_producer(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// etl(1) → raw.csv → clean(2) → clean.csv ┐
    ///                    featurize(3) → f.csv ┴→ train(4) → model.bin
    ///                                  f.csv ──→ infer(5: f.csv+model.bin) → preds.csv
    fn pipeline() -> LineageGraph {
        let mut g = LineageGraph::new();
        g.add_run(1, "etl", 100, false, &[], &strs(&["raw.csv"]), &[]);
        g.add_run(
            2,
            "clean",
            200,
            false,
            &strs(&["raw.csv"]),
            &strs(&["clean.csv"]),
            &[1],
        );
        g.add_run(
            3,
            "featurize",
            300,
            false,
            &strs(&["clean.csv"]),
            &strs(&["f.csv"]),
            &[2],
        );
        g.add_run(
            4,
            "train",
            400,
            true,
            &strs(&["f.csv"]),
            &strs(&["model.bin"]),
            &[3],
        );
        g.add_run(
            5,
            "infer",
            500,
            false,
            &strs(&["f.csv", "model.bin"]),
            &strs(&["preds.csv"]),
            &[3, 4],
        );
        g
    }

    #[test]
    fn trace_reaches_sources() {
        let g = pipeline();
        let t = trace_output(&g, "preds.csv", TraceOptions::default()).unwrap();
        assert_eq!(t.component, "infer");
        assert_eq!(t.depth(), 5); // infer→train→featurize→clean→etl
        let runs = t.runs();
        let components: Vec<&str> = runs.iter().map(|(c, _)| c.as_str()).collect();
        assert!(components.contains(&"etl"));
        assert!(components.contains(&"train"));
        // f.csv is reached via both infer and train: size counts both paths.
        assert!(t.size() >= 5);
    }

    #[test]
    fn trace_unknown_output_is_none() {
        let g = pipeline();
        assert!(trace_output(&g, "ghost.csv", TraceOptions::default()).is_none());
    }

    #[test]
    fn io_without_producer_is_source_leaf() {
        let mut g = LineageGraph::new();
        g.add_run(
            1,
            "clean",
            100,
            false,
            &strs(&["external.csv"]),
            &strs(&["out.csv"]),
            &[],
        );
        let t = trace_output(&g, "out.csv", TraceOptions::default()).unwrap();
        assert_eq!(t.inputs.len(), 1);
        assert_eq!(t.inputs[0].0, "external.csv");
        assert!(t.inputs[0].1.is_none());
        assert!(t.render().contains("source: external.csv"));
    }

    #[test]
    fn time_travel_resolution_picks_contemporary_producer() {
        let mut g = LineageGraph::new();
        g.add_run(1, "featurize", 100, false, &[], &strs(&["f.csv"]), &[]);
        g.add_run(
            2,
            "infer",
            200,
            false,
            &strs(&["f.csv"]),
            &strs(&["p1"]),
            &[1],
        );
        g.add_run(3, "featurize", 300, false, &[], &strs(&["f.csv"]), &[]);
        // Tracing p1 with as-of semantics sees featurize run 1, not run 3.
        let t = trace_output(&g, "p1", TraceOptions::default()).unwrap();
        let sub = t.inputs[0].1.as_ref().unwrap();
        assert_eq!(sub.run_id, 1);
        // Freshest semantics would pick run 3.
        let t = trace_output(
            &g,
            "p1",
            TraceOptions {
                as_of_run_start: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.inputs[0].1.as_ref().unwrap().run_id, 3);
    }

    #[test]
    fn cyclic_io_terminates() {
        let mut g = LineageGraph::new();
        // Run 1 consumes and produces state.bin (self-loop); run 2 reads it.
        g.add_run(
            1,
            "updater",
            100,
            false,
            &strs(&["state.bin"]),
            &strs(&["state.bin"]),
            &[],
        );
        g.add_run(
            2,
            "reader",
            200,
            false,
            &strs(&["state.bin"]),
            &strs(&["out"]),
            &[1],
        );
        let t = trace_output(&g, "out", TraceOptions::default()).unwrap();
        assert!(t.size() <= 3, "cycle must not blow up the trace");
    }

    #[test]
    fn max_depth_bounds_expansion() {
        let mut g = LineageGraph::new();
        let mut prev = "src".to_string();
        for i in 0..100u64 {
            let out = format!("io{i}");
            let deps: Vec<u64> = if i == 0 { vec![] } else { vec![i] };
            g.add_run(
                i + 1,
                &format!("stage{i}"),
                (i + 1) * 10,
                false,
                &[prev.clone()],
                std::slice::from_ref(&out),
                &deps,
            );
            prev = out;
        }
        let t = trace_output(
            &g,
            "io99",
            TraceOptions {
                max_depth: 10,
                as_of_run_start: true,
            },
        )
        .unwrap();
        assert_eq!(t.depth(), 10);
    }

    #[test]
    fn trace_run_and_render() {
        let g = pipeline();
        let t = trace_run(&g, 4, TraceOptions::default()).unwrap();
        assert_eq!(t.component, "train");
        let rendered = t.render();
        assert!(
            rendered.contains("✗ train"),
            "failed run marked: {rendered}"
        );
        assert!(rendered.contains("✓ featurize"));
        assert!(rendered.contains("← f.csv"));
    }
}
