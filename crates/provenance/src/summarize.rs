//! Graph summarization (§5.3 "Complex DAGs": pipeline DAGs "could be large
//! and complex, motivating new methods to draw human attention to
//! summaries and anomalies (i.e., the most problematic components)").
//!
//! [`component_summary`] rolls the run-level graph up to per-component
//! health; [`most_problematic`] ranks components by a problem score that
//! combines failure rate and failure recency so attention lands on what is
//! broken *now*.

use crate::graph::LineageGraph;
use std::collections::BTreeMap;

/// Per-component health rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSummary {
    /// Component name.
    pub component: String,
    /// Total runs in the graph.
    pub runs: usize,
    /// Failed runs.
    pub failures: usize,
    /// failures / runs.
    pub failure_rate: f64,
    /// Start time of the most recent run.
    pub last_run_ms: u64,
    /// Start time of the most recent *failed* run, if any.
    pub last_failure_ms: Option<u64>,
}

/// Summarize every component in the graph, keyed by name.
pub fn component_summary(graph: &LineageGraph) -> BTreeMap<String, ComponentSummary> {
    let mut out: BTreeMap<String, ComponentSummary> = BTreeMap::new();
    for idx in graph.run_indexes() {
        let run = graph.run(idx);
        let entry = out
            .entry(run.component.clone())
            .or_insert_with(|| ComponentSummary {
                component: run.component.clone(),
                runs: 0,
                failures: 0,
                failure_rate: 0.0,
                last_run_ms: 0,
                last_failure_ms: None,
            });
        entry.runs += 1;
        entry.last_run_ms = entry.last_run_ms.max(run.start_ms);
        if run.failed {
            entry.failures += 1;
            entry.last_failure_ms = Some(
                entry
                    .last_failure_ms
                    .map_or(run.start_ms, |t| t.max(run.start_ms)),
            );
        }
    }
    for summary in out.values_mut() {
        summary.failure_rate = summary.failures as f64 / summary.runs as f64;
    }
    out
}

/// Rank components by problem score, descending; take the top `k`.
///
/// Score = failure_rate × recency_weight, where recency_weight decays
/// linearly from 1 (failure at `now_ms`) to 0.1 (failure at or before
/// `now_ms − horizon_ms`). Components with no failures score 0 and are
/// omitted.
pub fn most_problematic(
    graph: &LineageGraph,
    now_ms: u64,
    horizon_ms: u64,
    k: usize,
) -> Vec<(ComponentSummary, f64)> {
    assert!(horizon_ms > 0, "horizon must be positive");
    let mut scored: Vec<(ComponentSummary, f64)> = component_summary(graph)
        .into_values()
        .filter_map(|s| {
            let last_failure = s.last_failure_ms?;
            let age = now_ms.saturating_sub(last_failure) as f64;
            let recency = (1.0 - age / horizon_ms as f64).max(0.1);
            let score = s.failure_rate * recency;
            Some((s, score))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.component.cmp(&b.0.component)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> LineageGraph {
        let mut g = LineageGraph::new();
        // etl: 4 runs, 0 failures. clean: 4 runs, 2 recent failures.
        // train: 2 runs, 1 ancient failure.
        for i in 0..4u64 {
            g.add_run(i + 1, "etl", 1000 + i, false, &[], &[], &[]);
        }
        for i in 0..4u64 {
            g.add_run(10 + i, "clean", 9_000 + i, i >= 2, &[], &[], &[]);
        }
        g.add_run(20, "train", 100, true, &[], &[], &[]);
        g.add_run(21, "train", 9_500, false, &[], &[], &[]);
        g
    }

    #[test]
    fn summary_counts() {
        let g = graph();
        let s = component_summary(&g);
        assert_eq!(s.len(), 3);
        assert_eq!(s["etl"].runs, 4);
        assert_eq!(s["etl"].failures, 0);
        assert_eq!(s["etl"].failure_rate, 0.0);
        assert!(s["etl"].last_failure_ms.is_none());
        assert_eq!(s["clean"].failures, 2);
        assert_eq!(s["clean"].failure_rate, 0.5);
        assert_eq!(s["clean"].last_failure_ms, Some(9_003));
        assert_eq!(s["train"].last_run_ms, 9_500);
        assert_eq!(s["train"].last_failure_ms, Some(100));
    }

    #[test]
    fn problematic_ranks_recent_failures_first() {
        let g = graph();
        let top = most_problematic(&g, 10_000, 10_000, 5);
        // clean (rate .5, recent) should outrank train (rate .5, ancient).
        assert_eq!(top[0].0.component, "clean");
        assert_eq!(top[1].0.component, "train");
        assert!(top[0].1 > top[1].1);
        // etl never failed → not present.
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_truncates() {
        let g = graph();
        let top = most_problematic(&g, 10_000, 10_000, 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn empty_graph_empty_summary() {
        let g = LineageGraph::new();
        assert!(component_summary(&g).is_empty());
        assert!(most_problematic(&g, 1, 1, 3).is_empty());
    }
}
