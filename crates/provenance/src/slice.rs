//! Slice-based lineage queries (§1.1 Querying: "Practitioners typically
//! investigate errors belonging to a group of outputs, or a slice ...
//! where slices could be any subgroup defined on-demand").
//!
//! Example 4.4 of the paper is the canonical use: slice the complained-
//! about outputs, aggregate their traces, and rank the component runs by
//! how often they appear — the top-ranked run (a preprocessor not refit in
//! six weeks) is the likely culprit.

use crate::graph::LineageGraph;
use crate::trace::{trace_output, TraceNode, TraceOptions};
use std::collections::HashMap;

/// A component run with its frequency across a slice's traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedRun {
    /// Component name.
    pub component: String,
    /// External run id.
    pub run_id: u64,
    /// Number of slice outputs whose trace contains this run.
    pub frequency: usize,
    /// Whether the run failed.
    pub failed: bool,
    /// Run start, epoch milliseconds.
    pub start_ms: u64,
}

/// Result of a slice lineage aggregation.
#[derive(Debug, Clone, Default)]
pub struct SliceReport {
    /// Outputs that produced a trace.
    pub traced_outputs: usize,
    /// Outputs with no producer (skipped).
    pub untraced_outputs: usize,
    /// Runs ranked by descending frequency (ties: older runs first —
    /// long-unrefreshed dependencies surface sooner).
    pub ranked: Vec<RankedRun>,
}

/// Aggregate the traces of a slice of outputs and rank component runs by
/// frequency, descending.
pub fn slice_lineage(graph: &LineageGraph, outputs: &[String], opts: TraceOptions) -> SliceReport {
    let mut counts: HashMap<u64, RankedRun> = HashMap::new();
    let mut traced = 0usize;
    let mut untraced = 0usize;
    for out in outputs {
        match trace_output(graph, out, opts) {
            Some(trace) => {
                traced += 1;
                accumulate(&trace, &mut counts);
            }
            None => untraced += 1,
        }
    }
    let mut ranked: Vec<RankedRun> = counts.into_values().collect();
    ranked.sort_by(|a, b| {
        b.frequency
            .cmp(&a.frequency)
            .then(a.start_ms.cmp(&b.start_ms))
            .then(a.run_id.cmp(&b.run_id))
    });
    SliceReport {
        traced_outputs: traced,
        untraced_outputs: untraced,
        ranked,
    }
}

fn accumulate(trace: &TraceNode, counts: &mut HashMap<u64, RankedRun>) {
    // Count each run once per *output trace*, even if it appears on
    // multiple paths within that trace (e.g. features feeding both train
    // and inference).
    let mut seen: Vec<u64> = Vec::new();
    trace.visit(&mut |n| {
        if !seen.contains(&n.run_id) {
            seen.push(n.run_id);
            counts
                .entry(n.run_id)
                .and_modify(|r| r.frequency += 1)
                .or_insert_with(|| RankedRun {
                    component: n.component.clone(),
                    run_id: n.run_id,
                    frequency: 1,
                    failed: n.failed,
                    start_ms: n.start_ms,
                });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// A shared stale preprocessor feeds many predictions; a fresh one
    /// feeds a few.
    fn sliced_graph() -> LineageGraph {
        let mut g = LineageGraph::new();
        // Old preprocessor run (6 weeks old), used by inference runs 10..14.
        g.add_run(
            1,
            "preprocess",
            100,
            false,
            &[],
            &strs(&["prep_old.bin"]),
            &[],
        );
        // Fresh preprocessor for the last prediction.
        g.add_run(
            2,
            "preprocess",
            5_000,
            false,
            &[],
            &strs(&["prep_new.bin"]),
            &[],
        );
        for i in 0..5u64 {
            g.add_run(
                10 + i,
                "infer",
                1_000 + i,
                false,
                &strs(&["prep_old.bin"]),
                &[format!("pred-{i}")],
                &[1],
            );
        }
        g.add_run(
            20,
            "infer",
            6_000,
            false,
            &strs(&["prep_new.bin"]),
            &strs(&["pred-fresh"]),
            &[2],
        );
        g
    }

    #[test]
    fn stale_preprocessor_tops_the_ranking() {
        let g = sliced_graph();
        // The complained-about slice: the five old predictions.
        let slice: Vec<String> = (0..5).map(|i| format!("pred-{i}")).collect();
        let report = slice_lineage(&g, &slice, TraceOptions::default());
        assert_eq!(report.traced_outputs, 5);
        assert_eq!(report.untraced_outputs, 0);
        // Top-ranked: the shared old preprocessor (frequency 5). The five
        // distinct inference runs each have frequency 1.
        assert_eq!(report.ranked[0].component, "preprocess");
        assert_eq!(report.ranked[0].run_id, 1);
        assert_eq!(report.ranked[0].frequency, 5);
        assert!(
            report.ranked.iter().all(|r| r.run_id != 2),
            "fresh prep not in slice"
        );
    }

    #[test]
    fn ties_break_toward_older_runs() {
        let mut g = LineageGraph::new();
        g.add_run(1, "a", 100, false, &[], &strs(&["x"]), &[]);
        g.add_run(2, "b", 50, false, &strs(&["x"]), &strs(&["out"]), &[1]);
        let report = slice_lineage(&g, &strs(&["out"]), TraceOptions::default());
        // Both runs have frequency 1; run 2 started earlier.
        assert_eq!(report.ranked[0].run_id, 2);
    }

    #[test]
    fn missing_outputs_counted_untraced() {
        let g = sliced_graph();
        let report = slice_lineage(
            &g,
            &strs(&["pred-0", "nope-1", "nope-2"]),
            TraceOptions::default(),
        );
        assert_eq!(report.traced_outputs, 1);
        assert_eq!(report.untraced_outputs, 2);
    }

    #[test]
    fn run_counted_once_per_trace_even_on_diamond() {
        let mut g = LineageGraph::new();
        // featurize feeds both train and infer; infer also takes the model.
        g.add_run(1, "featurize", 10, false, &[], &strs(&["f.csv"]), &[]);
        g.add_run(
            2,
            "train",
            20,
            false,
            &strs(&["f.csv"]),
            &strs(&["m.bin"]),
            &[1],
        );
        g.add_run(
            3,
            "infer",
            30,
            false,
            &strs(&["f.csv", "m.bin"]),
            &strs(&["pred"]),
            &[1, 2],
        );
        let report = slice_lineage(&g, &strs(&["pred"]), TraceOptions::default());
        let featurize = report
            .ranked
            .iter()
            .find(|r| r.component == "featurize")
            .unwrap();
        assert_eq!(featurize.frequency, 1, "diamond path counted once");
    }

    #[test]
    fn empty_slice_is_empty_report() {
        let g = sliced_graph();
        let report = slice_lineage(&g, &[], TraceOptions::default());
        assert_eq!(report.traced_outputs, 0);
        assert!(report.ranked.is_empty());
    }
}
