//! Ctrl-C / SIGTERM → a process-wide shutdown flag, with no dependency on
//! a signal-handling crate: one raw `signal(2)` registration per signal.
//!
//! The handler only flips an `AtomicBool` (the one async-signal-safe
//! thing worth doing); long-running loops poll [`shutdown_requested`] and
//! unwind normally — flushing group-commit queues and fsyncing — instead
//! of dying mid-batch.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGINT/SIGTERM arrived (or [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatic trigger (the protocol's `Shutdown` request, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Reset the flag (between tests that share the process).
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` from the platform libc, declared directly — every Rust
    // binary on this platform already links libc, and the full-featured
    // bindings crate is not available in this build environment.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: flip the flag.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No portable hook without a dependency; the flag still works via
    /// [`super::request_shutdown`].
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_shutdown();
        assert!(!shutdown_requested());
    }
}
