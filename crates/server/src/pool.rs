//! The query-executor pool: `--workers` threads (default: one per core)
//! pulling SQL and prepared-exec jobs from a shared queue.
//!
//! Queries run here, never on a connection's reader thread and never on
//! the ingest coalescer — a connection saturated with slow queries backs
//! up only its own admission gate (answered `Busy`), while other
//! connections' queries ride the remaining workers and ingest keeps its
//! dedicated thread.

use crate::reply::Reply;
use mltrace_protocol::Response;
use mltrace_query::{execute, execute_prepared, PreparedQuery};
use mltrace_store::{Value, WalStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One unit of query work.
pub(crate) enum QueryJob {
    /// One-shot SQL (or `EXPLAIN`).
    Sql {
        /// Statement text.
        sql: String,
        /// Responder.
        reply: Reply,
    },
    /// Prepared statement + bound parameters. The statement is cloned out
    /// of the connection's registry at dispatch, so the connection can
    /// close or re-prepare without racing the worker.
    Exec {
        /// The prepared statement.
        stmt: PreparedQuery,
        /// Positional parameter values.
        params: Vec<Value>,
        /// Responder.
        reply: Reply,
    },
}

/// Worker loop: run jobs until the queue closes or shutdown is set and
/// the queue is drained.
pub(crate) fn run_worker(
    store: Arc<WalStore>,
    rx: Arc<Mutex<Receiver<QueryJob>>>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        let job = {
            let guard = rx.lock().expect("query queue lock");
            match guard.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::Relaxed) {
                        // Drain stragglers before exiting so no admitted
                        // query goes unanswered.
                        match guard.try_recv() {
                            Ok(job) => job,
                            Err(_) => return,
                        }
                    } else {
                        continue;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        match job {
            QueryJob::Sql { sql, reply } => {
                let resp = match execute(store.as_ref(), &sql) {
                    Ok(result) => Response::Rows {
                        columns: result.columns,
                        rows: result.rows,
                    },
                    Err(e) => Response::error(e.to_string()),
                };
                reply.send(resp);
            }
            QueryJob::Exec {
                stmt,
                params,
                reply,
            } => {
                let resp = match execute_prepared(store.as_ref(), &stmt, &params) {
                    Ok(result) => Response::Rows {
                        columns: result.columns,
                        rows: result.rows,
                    },
                    Err(e) => Response::error(e.to_string()),
                };
                reply.send(resp);
            }
        }
    }
}
