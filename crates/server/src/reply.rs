//! Response plumbing shared by the dispatch paths: a [`Reply`] carries
//! everything needed to answer one request from any thread — the frame id
//! to echo, the connection's writer channel, the per-op latency
//! histogram, and the admission-gate slot that frees itself when the
//! response goes out (or the reply is dropped on a dead connection).

use mltrace_protocol::Response;
use mltrace_telemetry::Histogram;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// RAII slot in a connection's `--max-inflight` admission gate.
pub(crate) struct InflightGuard(Arc<AtomicUsize>);

impl InflightGuard {
    /// Try to take a slot; `None` means the connection is at its limit
    /// and the request must be answered [`Response::Busy`] unexecuted.
    pub fn acquire(inflight: &Arc<AtomicUsize>, limit: usize) -> Option<InflightGuard> {
        let mut cur = inflight.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return None;
            }
            match inflight.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(InflightGuard(inflight.clone())),
                Err(now) => cur = now,
            }
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// How to answer one request.
pub(crate) struct Reply {
    /// Frame id to echo.
    pub request_id: u64,
    /// The connection's writer channel.
    pub tx: Sender<(u64, Response)>,
    /// Latency histogram for this op class (nanoseconds).
    pub hist: Histogram,
    /// When the request was admitted.
    pub started: Instant,
    /// Admission slot; released when the reply is sent or dropped.
    pub _slot: Option<InflightGuard>,
}

impl Reply {
    /// Record latency and queue the response to the connection writer.
    /// A send error just means the connection died first; the admission
    /// slot is released either way.
    pub fn send(self, resp: Response) {
        self.hist.record(self.started.elapsed().as_nanos() as u64);
        let _ = self.tx.send((self.request_id, resp));
    }
}
