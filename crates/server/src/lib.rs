//! # mltrace-server
//!
//! `mltrace serve`: a concurrent TCP front-end for one WAL-backed
//! observability store — the network story the paper's deployment sketch
//! assumes (§5: many logging clients feeding one store), built from three
//! thread populations with distinct jobs:
//!
//! - **Connection threads** (one reader + one writer per accepted
//!   socket) decode [`mltrace_protocol`] frames incrementally, answer
//!   control ops inline, and dispatch the rest.
//! - **One ingest coalescer** applies every connection's ingest in
//!   merged batches and acks after a single batch-wide
//!   [`WalStore::sync`] — cross-connection group commit: N writers, one
//!   fsync, `wal.group_commit_events` mean ≫ 1.
//! - **A query-executor pool** (`--workers`, default one per core) runs
//!   SQL and prepared `EXEC`s. Placeholder binding happens before
//!   planning, so prepared queries take the same pushdown/index routes
//!   (and `EXPLAIN` output) as their literal equivalents.
//!
//! Backpressure is explicit at every boundary: each connection has a
//! `--max-inflight` admission gate answered with `Busy` (the request is
//! *not* executed), the gate is per-connection so a saturated reader
//! cannot starve writers, and `tail` subscriptions ride the EventBus's
//! bounded drop-oldest queues — a slow tail loses events, never stalls
//! the write path.
//!
//! Shutdown (Ctrl-C, SIGTERM, or the protocol `Shutdown` request) is
//! graceful: stop accepting, let connection threads notice within one
//! read-poll, drain both queues so every admitted request is answered,
//! then flush and fsync the WAL.

#![warn(missing_docs)]

mod coalesce;
mod conn;
mod pool;
mod reply;
pub mod signal;

use coalesce::IngestJob;
use mltrace_store::{Store, WalStore};
use mltrace_telemetry::Telemetry;
use pool::QueryJob;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server`]; every field has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`--addr`).
    pub addr: String,
    /// Query-executor threads; 0 means one per core (`--workers`).
    pub workers: usize,
    /// Per-connection admission gate: requests in flight beyond this are
    /// answered `Busy` unexecuted (`--max-inflight`).
    pub max_inflight: usize,
    /// Ingest coalescing window in milliseconds: how long the coalescer
    /// waits for more connections' writes to ride the same group commit.
    pub coalesce_ms: u64,
    /// Cap on ingest jobs merged into one batch/sync.
    pub coalesce_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7764".into(),
            workers: 0,
            max_inflight: 64,
            coalesce_ms: 2,
            coalesce_max: 256,
        }
    }
}

/// State shared by every thread of one server.
pub(crate) struct ServerShared {
    pub store: Arc<WalStore>,
    pub tele: Telemetry,
    pub max_inflight: usize,
    pub ingest_tx: Sender<IngestJob>,
    pub query_tx: Sender<QueryJob>,
    pub shutdown: Arc<AtomicBool>,
}

impl ServerShared {
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    store: Arc<WalStore>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listen socket. `cfg.addr` may use port 0 to let the OS
    /// pick (tests do); [`Server::local_addr`] reports the result.
    pub fn bind(store: Arc<WalStore>, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            cfg,
            store,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return when set (the SIGINT
    /// path sets it through [`signal`] instead).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Accept and serve until shutdown, then drain and fsync. Blocks the
    /// calling thread for the server's lifetime.
    pub fn run(self) -> io::Result<()> {
        let tele = self
            .store
            .telemetry()
            .cloned()
            .unwrap_or_else(Telemetry::new);
        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.cfg.workers
        };
        tele.gauge("server.workers").set(workers as i64);

        let (ingest_tx, ingest_rx) = mpsc::channel::<IngestJob>();
        let (query_tx, query_rx) = mpsc::channel::<QueryJob>();
        let shared = Arc::new(ServerShared {
            store: self.store.clone(),
            tele: tele.clone(),
            max_inflight: self.cfg.max_inflight.max(1),
            ingest_tx,
            query_tx,
            shutdown: self.shutdown.clone(),
        });

        let coalescer = {
            let store = self.store.clone();
            let tele = tele.clone();
            let shutdown = self.shutdown.clone();
            let window = Duration::from_millis(self.cfg.coalesce_ms);
            let max_jobs = self.cfg.coalesce_max.max(1);
            std::thread::Builder::new()
                .name("mltrace-coalesce".into())
                .spawn(move || {
                    coalesce::run_coalescer(store, ingest_rx, tele, shutdown, window, max_jobs)
                })?
        };
        let query_rx = Arc::new(Mutex::new(query_rx));
        let pool: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let store = self.store.clone();
                let rx = query_rx.clone();
                let shutdown = self.shutdown.clone();
                std::thread::Builder::new()
                    .name(format!("mltrace-query-{i}"))
                    .spawn(move || pool::run_worker(store, rx, shutdown))
            })
            .collect::<io::Result<_>>()?;

        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !shared.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    let shared = shared.clone();
                    let handle = std::thread::Builder::new()
                        .name("mltrace-conn".into())
                        .spawn(move || conn::handle_connection(stream, shared))?;
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Graceful drain: connections notice the flag within one read
        // poll; the coalescer and pool drain admitted work, then exit.
        self.shutdown.store(true, Ordering::Relaxed);
        for h in conns {
            let _ = h.join();
        }
        drop(shared); // releases the queue senders
        let _ = coalescer.join();
        for h in pool {
            let _ = h.join();
        }
        // Final durability barrier: nothing admitted is left unflushed.
        self.store
            .sync()
            .map_err(|e| io::Error::other(format!("final sync failed: {e}")))?;
        Ok(())
    }
}

pub use signal::{install_handlers, request_shutdown, reset_shutdown, shutdown_requested};
