//! Per-connection protocol handling.
//!
//! Each accepted socket gets a reader (this module, on its own thread)
//! plus a writer thread fed by an mpsc channel. The reader decodes frames
//! incrementally, answers cheap control ops inline, and dispatches the
//! rest: ingest to the shared coalescer thread, queries to the worker
//! pool. Responses from those threads flow back through the writer
//! channel, so one pipelining connection can have many requests in
//! flight — bounded by the `--max-inflight` admission gate, beyond which
//! the reader answers `Busy` without executing anything.
//!
//! Response order on the wire follows completion order, not request
//! order; the echoed request id is the correlation contract.

use crate::coalesce::{IngestJob, IngestPayload};
use crate::pool::QueryJob;
use crate::reply::{InflightGuard, Reply};
use crate::ServerShared;
use mltrace_protocol::{decode_frame, write_frame, Frame, Request, Response};
use mltrace_query::prepare;
use mltrace_store::{EventFilter, EventSubscription, Store};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::AtomicUsize;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Sleep quantum while a `PollEvents` waits for traffic.
const EVENT_POLL: Duration = Duration::from_millis(5);

/// Serve one connection to completion. Returns when the peer closes, a
/// protocol violation poisons the stream, or shutdown is requested.
pub(crate) fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let tele = &shared.tele;
    tele.gauge("server.connections").add(1);
    tele.incr("server.connections_total");
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    run_connection(stream, &shared);
    tele.gauge("server.connections").add(-1);
    let _ = peer;
}

fn run_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    // Writer thread: single owner of the write half, so responses from
    // the coalescer, the query pool, and inline handlers never interleave
    // mid-frame.
    let (tx, rx) = mpsc::channel::<(u64, Response)>();
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = std::thread::spawn(move || {
        let mut out = writer_stream;
        while let Ok((request_id, resp)) = rx.recv() {
            let frame = Frame::new(request_id, resp.to_body());
            if write_frame(&mut out, &frame).is_err() {
                // Peer is gone; drain remaining responses to release
                // admission slots promptly.
                for _ in rx.iter() {}
                return;
            }
        }
    });

    let mut conn = ConnState {
        shared: shared.clone(),
        tx,
        inflight: Arc::new(AtomicUsize::new(0)),
        prepared: HashMap::new(),
        next_stmt: 1,
        subscription: None,
        sub_filter: EventFilter::default(),
        dropped_reported: 0,
    };
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    'read: loop {
        // Drain every complete frame already buffered.
        loop {
            match decode_frame(&buf) {
                Ok(Some((frame, used))) => {
                    buf.drain(..used);
                    conn.dispatch(frame);
                }
                Ok(None) => break,
                Err(_) => break 'read, // framing violation poisons the stream
            }
        }
        if shared.shutdown_requested() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF; any buffered partial frame is torn — drop it
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Drop our sender; the writer exits once dispatched work drains.
    drop(conn);
    let _ = writer.join();
}

struct ConnState {
    shared: Arc<ServerShared>,
    tx: Sender<(u64, Response)>,
    inflight: Arc<AtomicUsize>,
    prepared: HashMap<u64, mltrace_query::PreparedQuery>,
    next_stmt: u64,
    subscription: Option<EventSubscription>,
    sub_filter: EventFilter,
    dropped_reported: u64,
}

impl ConnState {
    fn respond(&self, request_id: u64, resp: Response) {
        let _ = self.tx.send((request_id, resp));
    }

    /// Take an admission slot or answer `Busy` and return `None`.
    fn admit(&self, request_id: u64) -> Option<InflightGuard> {
        let limit = self.shared.max_inflight;
        match InflightGuard::acquire(&self.inflight, limit) {
            Some(slot) => Some(slot),
            None => {
                self.shared.tele.incr("server.busy_total");
                self.respond(request_id, Response::Busy { limit });
                None
            }
        }
    }

    fn reply(&self, request_id: u64, hist: &str, slot: Option<InflightGuard>) -> Reply {
        Reply {
            request_id,
            tx: self.tx.clone(),
            hist: self.shared.tele.histogram(hist),
            started: Instant::now(),
            _slot: slot,
        }
    }

    fn dispatch(&mut self, frame: Frame) {
        let tele = &self.shared.tele;
        tele.incr("server.requests_total");
        let id = frame.request_id;
        let req = match Request::from_body(&frame.body) {
            Ok(req) => req,
            Err(e) => {
                tele.incr("server.errors_total");
                self.respond(id, Response::error(format!("bad request body: {e}")));
                return;
            }
        };
        match req {
            // ---- inline control ops --------------------------------
            Request::Ping => self.respond(id, Response::Ok),
            Request::Sync => {
                let started = Instant::now();
                let resp = match self.shared.store.sync() {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::error(e.to_string()),
                };
                tele.record("server.op.control", started.elapsed().as_nanos() as u64);
                self.respond(id, resp);
            }
            Request::Stats => {
                let resp = match self.shared.store.stats() {
                    Ok(stats) => Response::Stats { stats },
                    Err(e) => Response::error(e.to_string()),
                };
                self.respond(id, resp);
            }
            Request::Shutdown => {
                self.respond(id, Response::Ok);
                self.shared.request_shutdown();
            }
            Request::Prepare { sql } => {
                let started = Instant::now();
                let resp = match prepare(&sql) {
                    Ok(stmt) => {
                        let handle = self.next_stmt;
                        self.next_stmt += 1;
                        let params = stmt.param_count();
                        self.prepared.insert(handle, stmt);
                        Response::Prepared {
                            stmt: handle,
                            params,
                        }
                    }
                    Err(e) => {
                        tele.incr("server.errors_total");
                        Response::error(e.to_string())
                    }
                };
                tele.record("server.op.control", started.elapsed().as_nanos() as u64);
                self.respond(id, resp);
            }
            Request::ClosePrepared { stmt } => {
                let resp = if self.prepared.remove(&stmt).is_some() {
                    Response::Ok
                } else {
                    Response::error(format!("unknown statement handle {stmt}"))
                };
                self.respond(id, resp);
            }
            Request::Subscribe { filter, capacity } => {
                let resp = match self.shared.store.event_bus() {
                    Some(bus) => {
                        let sub = match capacity {
                            Some(c) => bus.subscribe_with_capacity(c),
                            None => bus.subscribe(),
                        };
                        self.dropped_reported = sub.dropped();
                        self.subscription = Some(sub);
                        self.sub_filter = filter;
                        Response::Ok
                    }
                    None => Response::error("store has no event bus"),
                };
                self.respond(id, resp);
            }
            Request::PollEvents { max, wait_ms } => {
                let resp = self.poll_events(max, wait_ms);
                self.respond(id, resp);
            }
            // ---- ingest: admission gate, then the coalescer --------
            Request::RegisterComponents { components } => {
                self.enqueue_ingest(id, IngestPayload::Components(components));
            }
            Request::LogRuns { runs } => {
                self.enqueue_ingest(id, IngestPayload::Runs(runs));
            }
            Request::LogMetrics { metrics } => {
                self.enqueue_ingest(id, IngestPayload::Metrics(metrics));
            }
            Request::LogBundles { bundles } => {
                self.enqueue_ingest(id, IngestPayload::Bundles(bundles));
            }
            // ---- queries: admission gate, then the worker pool -----
            Request::Query { sql } => {
                let Some(slot) = self.admit(id) else { return };
                let reply = self.reply(id, "server.op.query", Some(slot));
                if self
                    .shared
                    .query_tx
                    .send(QueryJob::Sql { sql, reply })
                    .is_err()
                {
                    self.respond(id, Response::error("server shutting down"));
                }
            }
            Request::Exec { stmt, params } => {
                let Some(prepared) = self.prepared.get(&stmt).cloned() else {
                    self.respond(
                        id,
                        Response::error(format!("unknown statement handle {stmt}")),
                    );
                    return;
                };
                let Some(slot) = self.admit(id) else { return };
                let reply = self.reply(id, "server.op.exec", Some(slot));
                if self
                    .shared
                    .query_tx
                    .send(QueryJob::Exec {
                        stmt: prepared,
                        params,
                        reply,
                    })
                    .is_err()
                {
                    self.respond(id, Response::error("server shutting down"));
                }
            }
        }
    }

    fn enqueue_ingest(&mut self, id: u64, payload: IngestPayload) {
        let Some(slot) = self.admit(id) else { return };
        let reply = self.reply(id, "server.op.ingest", Some(slot));
        if self
            .shared
            .ingest_tx
            .send(IngestJob { payload, reply })
            .is_err()
        {
            self.respond(id, Response::error("server shutting down"));
        }
    }

    /// Drain up to `max` filter-matching events, waiting up to `wait_ms`
    /// for the first one. The subscription queue is bounded drop-oldest
    /// (the EventBus backpressure contract): a consumer that polls too
    /// slowly loses events — reported via `dropped` — and never stalls a
    /// writer.
    fn poll_events(&mut self, max: usize, wait_ms: u64) -> Response {
        let Some(sub) = &self.subscription else {
            return Response::error("not subscribed — send Subscribe first");
        };
        let max = max.clamp(1, 10_000);
        let deadline = Instant::now() + Duration::from_millis(wait_ms.min(30_000));
        let mut events = Vec::new();
        loop {
            while events.len() < max {
                match sub.try_next() {
                    Some(e) => {
                        if self.sub_filter.matches(&e) {
                            events.push((*e).clone());
                        }
                    }
                    None => break,
                }
            }
            if !events.is_empty() || Instant::now() >= deadline || self.shared.shutdown_requested()
            {
                break;
            }
            std::thread::sleep(EVENT_POLL);
        }
        let total_dropped = sub.dropped();
        let dropped = total_dropped.saturating_sub(self.dropped_reported);
        self.dropped_reported = total_dropped;
        Response::Events { events, dropped }
    }
}
