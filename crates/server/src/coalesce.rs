//! Cross-connection ingest coalescing.
//!
//! Every ingest request from every connection funnels into one dedicated
//! coalescer thread. The thread drains whatever has accumulated (bounded
//! by a short collection window and a batch cap), applies it to the store
//! with consecutive same-kind jobs merged into single batched calls, then
//! issues **one** [`WalStore::sync`] for the whole batch before acking
//! any of it. Under the serve-mode default `OnSync` durability this is
//! textbook group commit: N connections' writes ride one fsync, and the
//! `wal.group_commit_events` histogram records N-sized batches instead of
//! a mean of 1.
//!
//! Structural backpressure property: a saturated *reader* cannot stall
//! this thread — queries live on their own worker pool — so writer
//! throughput degrades only with writer load.

use crate::reply::Reply;
use mltrace_protocol::Response;
use mltrace_store::{
    ComponentRecord, ComponentRunRecord, MetricRecord, RunBundle, Store, WalStore,
};
use mltrace_telemetry::Telemetry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One connection's ingest request, queued for the coalescer.
pub(crate) struct IngestJob {
    /// What to apply.
    pub payload: IngestPayload,
    /// Where (and how) to answer.
    pub reply: Reply,
}

/// The batched-ingest operations of the protocol.
pub(crate) enum IngestPayload {
    /// Component upserts.
    Components(Vec<ComponentRecord>),
    /// Run records.
    Runs(Vec<ComponentRunRecord>),
    /// Metric points.
    Metrics(Vec<MetricRecord>),
    /// Run bundles (§3.4 step-6 transactions).
    Bundles(Vec<RunBundle>),
}

/// Run the coalescer loop until the channel closes and drains, or
/// `shutdown` is set *and* the channel is empty. Never drops a job that
/// was already queued: shutdown drains first, so a client that got no
/// response simply never had its request read.
pub(crate) fn run_coalescer(
    store: Arc<WalStore>,
    rx: Receiver<IngestJob>,
    tele: Telemetry,
    shutdown: Arc<AtomicBool>,
    window: Duration,
    max_jobs: usize,
) {
    // `_size` suffix marks this as a count histogram (batch sizes), not
    // a nanosecond duration, for the Prometheus renderer.
    let batch_hist = tele.histogram("server.coalesce_batch_size");
    loop {
        // Block (briefly) for the first job so shutdown stays responsive.
        let first = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    // Drain any race-window stragglers, then exit.
                    let rest: Vec<_> = rx.try_iter().collect();
                    if !rest.is_empty() {
                        apply_batch(&store, rest, &tele, &batch_hist);
                    }
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Collection window: let concurrent connections pile on.
        let mut jobs = vec![first];
        let deadline = Instant::now() + window;
        while jobs.len() < max_jobs {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => jobs.push(job),
                        Err(_) => break,
                    }
                }
            }
        }
        apply_batch(&store, jobs, &tele, &batch_hist);
    }
}

/// Apply one coalesced batch: merge consecutive same-kind payloads into
/// single store calls, sync once, then ack every job.
fn apply_batch(
    store: &WalStore,
    jobs: Vec<IngestJob>,
    tele: &Telemetry,
    batch_hist: &mltrace_telemetry::Histogram,
) {
    batch_hist.record(jobs.len() as u64);
    tele.add("server.coalesced_ops_total", jobs.len() as u64);
    // Apply in arrival order (preserves each connection's own ordering),
    // merging runs of the same kind. Each job records the store's answer;
    // replies wait until the batch-wide sync below makes them durable.
    let mut replies: Vec<(Reply, Response)> = Vec::with_capacity(jobs.len());
    let mut queue = jobs.into_iter().peekable();
    while let Some(job) = queue.next() {
        match job.payload {
            IngestPayload::Runs(mut runs) => {
                // Merge consecutive Runs jobs into one log_runs call.
                let mut splits = vec![(runs.len(), job.reply)];
                while let Some(IngestJob {
                    payload: IngestPayload::Runs(_),
                    ..
                }) = queue.peek()
                {
                    let Some(IngestJob {
                        payload: IngestPayload::Runs(mut more),
                        reply,
                    }) = queue.next()
                    else {
                        unreachable!("peeked Runs");
                    };
                    splits.push((more.len(), reply));
                    runs.append(&mut more);
                }
                match store.log_runs(runs) {
                    Ok(ids) => {
                        let mut offset = 0;
                        for (n, reply) in splits {
                            let slice = ids[offset..offset + n]
                                .iter()
                                .map(|id| id.0)
                                .collect::<Vec<u64>>();
                            offset += n;
                            replies.push((reply, Response::RunIds { ids: slice }));
                        }
                    }
                    Err(e) => {
                        // A merged batch is all-or-nothing in the store;
                        // report the shared failure to every rider.
                        let msg = e.to_string();
                        for (_, reply) in splits {
                            replies.push((reply, Response::error(&msg)));
                        }
                    }
                }
            }
            IngestPayload::Metrics(mut metrics) => {
                let mut splits = vec![(metrics.len(), job.reply)];
                while let Some(IngestJob {
                    payload: IngestPayload::Metrics(_),
                    ..
                }) = queue.peek()
                {
                    let Some(IngestJob {
                        payload: IngestPayload::Metrics(mut more),
                        reply,
                    }) = queue.next()
                    else {
                        unreachable!("peeked Metrics");
                    };
                    splits.push((more.len(), reply));
                    metrics.append(&mut more);
                }
                match store.log_metrics(metrics) {
                    Ok(()) => {
                        for (n, reply) in splits {
                            replies.push((reply, Response::Logged { count: n as u64 }));
                        }
                    }
                    Err(e) => {
                        let msg = e.to_string();
                        for (_, reply) in splits {
                            replies.push((reply, Response::error(&msg)));
                        }
                    }
                }
            }
            IngestPayload::Bundles(bundles) => {
                let mut ids = Vec::with_capacity(bundles.len());
                let mut failed = None;
                for bundle in bundles {
                    match store.log_run_bundle(bundle) {
                        Ok(id) => ids.push(id.0),
                        Err(e) => {
                            failed = Some(e.to_string());
                            break;
                        }
                    }
                }
                replies.push((
                    job.reply,
                    match failed {
                        None => Response::RunIds { ids },
                        Some(msg) => Response::error(msg),
                    },
                ));
            }
            IngestPayload::Components(components) => {
                let n = components.len() as u64;
                let mut failed = None;
                for c in components {
                    if let Err(e) = store.register_component(c) {
                        failed = Some(e.to_string());
                        break;
                    }
                }
                replies.push((
                    job.reply,
                    match failed {
                        None => Response::Logged { count: n },
                        Some(msg) => Response::error(msg),
                    },
                ));
            }
        }
    }
    // One durability barrier for the whole batch — the group commit.
    if let Err(e) = store.sync() {
        let msg = format!("sync failed: {e}");
        for (reply, _) in replies {
            reply.send(Response::error(&msg));
        }
        return;
    }
    for (reply, resp) in replies {
        reply.send(resp);
    }
}
