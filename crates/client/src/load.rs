//! `mltrace bench-load`: a multi-threaded load harness for `serve`.
//!
//! Spawns N writer connections (each batching run+metric ingest for its
//! own `loadgen-<i>` component) and M reader connections (each looping a
//! PREPAREd parameterized count over a random writer's component), runs
//! them concurrently against one server, and reports throughput, Busy
//! rejections, and row counts. Each thread holds its own [`Client`], so
//! the harness exercises the server's cross-connection coalescing path —
//! the group-commit batch sizes it produces are the whole point of E18.
//!
//! The harness is deterministic per (writers, runs, batch): writer `i`
//! logs runs `0..runs` for component `loadgen-<i>` with synthetic
//! timestamps, which lets a verifier replay the identical workload
//! against an embedded store and diff row-for-row.

use crate::{Client, ClientError, Result};
use mltrace_protocol::{Request, Response};
use mltrace_store::{ComponentRecord, ComponentRunRecord, MetricRecord, RunStatus, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Harness parameters; every field has a `bench-load` CLI flag.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7764`.
    pub addr: String,
    /// Concurrent writer connections.
    pub writers: usize,
    /// Concurrent prepared-query reader connections.
    pub readers: usize,
    /// Runs each writer logs (total rows = writers × runs).
    pub runs_per_writer: usize,
    /// Runs per `LogRuns` request.
    pub batch: usize,
    /// Metric points logged alongside each run batch.
    pub metrics_per_batch: usize,
    /// Label prefix for generated components (`<prefix>-<i>`).
    pub component_prefix: String,
    /// Retry `Busy` rejections instead of counting-and-dropping.
    pub retry_busy: bool,
    /// Ingest requests each writer keeps in flight. 1 (the default) is
    /// strict request/response and can never trip the per-connection
    /// admission gate; >1 pipelines that many `LogRuns` frames, which is
    /// how the backpressure smoke provokes `Busy` under a tiny
    /// `--max-inflight`. Pipelined writers skip the metric stream.
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7764".into(),
            writers: 4,
            readers: 2,
            runs_per_writer: 500,
            batch: 8,
            metrics_per_batch: 4,
            component_prefix: "loadgen".into(),
            retry_busy: false,
            pipeline: 1,
        }
    }
}

/// What happened: totals across all writer and reader threads.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Run rows acknowledged by the server.
    pub runs_logged: u64,
    /// Metric points acknowledged.
    pub metrics_logged: u64,
    /// Ingest requests sent (excluding Busy retries).
    pub write_requests: u64,
    /// Prepared `EXEC` round trips completed.
    pub read_queries: u64,
    /// Result rows returned across all readers.
    pub rows_returned: u64,
    /// `Busy` admission rejections observed (writers + readers).
    pub busy_rejections: u64,
    /// Requests that failed for any non-Busy reason.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Acknowledged run rows per second.
    pub fn write_throughput(&self) -> f64 {
        per_second(self.runs_logged, self.elapsed)
    }

    /// Completed prepared queries per second.
    pub fn read_throughput(&self) -> f64 {
        per_second(self.read_queries, self.elapsed)
    }

    /// Render the human table `mltrace bench-load` prints.
    pub fn render(&self) -> String {
        format!(
            "runs logged        {}\n\
             metric points      {}\n\
             write requests     {}\n\
             read queries       {}\n\
             rows returned      {}\n\
             busy rejections    {}\n\
             errors             {}\n\
             elapsed            {:.3}s\n\
             write throughput   {:.0} runs/s\n\
             read throughput    {:.0} queries/s",
            self.runs_logged,
            self.metrics_logged,
            self.write_requests,
            self.read_queries,
            self.rows_returned,
            self.busy_rejections,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.write_throughput(),
            self.read_throughput(),
        )
    }
}

fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// Shared tally the worker threads bump; folded into a [`LoadReport`].
#[derive(Default)]
struct Tally {
    runs_logged: AtomicU64,
    metrics_logged: AtomicU64,
    write_requests: AtomicU64,
    read_queries: AtomicU64,
    rows_returned: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    writers_done: AtomicU64,
}

/// The synthetic run record writer `i` logs at sequence `seq`. Public so
/// tests can replay the identical workload against an embedded store.
pub fn synthetic_run(component: &str, seq: usize) -> ComponentRunRecord {
    let start = 1_700_000_000_000 + (seq as u64) * 1_000;
    ComponentRunRecord {
        component: component.to_string(),
        start_ms: start,
        end_ms: start + 250,
        code_hash: format!("bench-{seq:08x}"),
        notes: format!("bench-load seq {seq}"),
        status: if seq % 17 == 0 {
            RunStatus::Failed
        } else {
            RunStatus::Success
        },
        ..Default::default()
    }
}

/// The synthetic metric point for (`component`, batch `seq`, point `k`).
pub fn synthetic_metric(component: &str, seq: usize, k: usize) -> MetricRecord {
    MetricRecord {
        component: component.to_string(),
        run_id: None,
        name: "bench.latency_ms".into(),
        value: 50.0 + ((seq * 7 + k * 3) % 100) as f64,
        ts_ms: 1_700_000_000_000 + (seq as u64) * 1_000 + k as u64,
    }
}

/// Run the full harness: register components, start writers and readers,
/// join, report. Readers stop once every writer finishes.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport> {
    if cfg.writers == 0 {
        return Err(ClientError::Protocol("need at least one writer".into()));
    }
    let components: Vec<String> = (0..cfg.writers)
        .map(|i| format!("{}-{i}", cfg.component_prefix))
        .collect();
    // Register components once up front on a setup connection.
    {
        let mut setup = Client::connect(&cfg.addr)?;
        setup.register_components(
            components
                .iter()
                .map(|name| ComponentRecord::named(name.clone()))
                .collect(),
        )?;
    }

    let tally = Arc::new(Tally::default());
    let started = Instant::now();
    let mut handles = Vec::new();
    for (i, component) in components.iter().enumerate() {
        let cfg = cfg.clone();
        let component = component.clone();
        let tally = tally.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("bench-writer-{i}"))
                .spawn(move || writer_loop(&cfg, &component, &tally))
                .map_err(ClientError::Io)?,
        );
    }
    for r in 0..cfg.readers {
        let cfg = cfg.clone();
        let components = components.clone();
        let tally = tally.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("bench-reader-{r}"))
                .spawn(move || reader_loop(&cfg, &components, r, &tally))
                .map_err(ClientError::Io)?,
        );
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(LoadReport {
        runs_logged: tally.runs_logged.load(Ordering::Relaxed),
        metrics_logged: tally.metrics_logged.load(Ordering::Relaxed),
        write_requests: tally.write_requests.load(Ordering::Relaxed),
        read_queries: tally.read_queries.load(Ordering::Relaxed),
        rows_returned: tally.rows_returned.load(Ordering::Relaxed),
        busy_rejections: tally.busy.load(Ordering::Relaxed),
        errors: tally.errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    })
}

fn writer_loop(cfg: &LoadConfig, component: &str, tally: &Tally) {
    if cfg.pipeline > 1 {
        if pipelined_writer(cfg, component, tally).is_err() {
            tally.errors.fetch_add(1, Ordering::Relaxed);
        }
        tally.writers_done.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let result = (|| -> Result<()> {
        let mut client = Client::connect(&cfg.addr)?;
        let batch = cfg.batch.max(1);
        let mut seq = 0;
        while seq < cfg.runs_per_writer {
            let n = batch.min(cfg.runs_per_writer - seq);
            let runs: Vec<_> = (seq..seq + n)
                .map(|s| synthetic_run(component, s))
                .collect();
            match send_with_retry(cfg, tally, || client.log_runs(runs.clone())) {
                Some(ids) => {
                    tally.write_requests.fetch_add(1, Ordering::Relaxed);
                    tally
                        .runs_logged
                        .fetch_add(ids.len() as u64, Ordering::Relaxed);
                }
                None => {
                    seq += n;
                    continue;
                }
            }
            if cfg.metrics_per_batch > 0 {
                let metrics: Vec<_> = (0..cfg.metrics_per_batch)
                    .map(|k| synthetic_metric(component, seq, k))
                    .collect();
                if let Some(count) =
                    send_with_retry(cfg, tally, || client.log_metrics(metrics.clone()))
                {
                    tally.write_requests.fetch_add(1, Ordering::Relaxed);
                    tally.metrics_logged.fetch_add(count, Ordering::Relaxed);
                }
            }
            seq += n;
        }
        client.sync()?;
        Ok(())
    })();
    if result.is_err() {
        tally.errors.fetch_add(1, Ordering::Relaxed);
    }
    tally.writers_done.fetch_add(1, Ordering::Relaxed);
}

/// A writer that keeps `cfg.pipeline` `LogRuns` requests in flight on
/// one connection. This is the shape that actually exercises the
/// per-connection admission gate: a strict request/response client can
/// never exceed one in-flight request, so it never sees `Busy`.
fn pipelined_writer(cfg: &LoadConfig, component: &str, tally: &Tally) -> Result<()> {
    let mut client = Client::connect(&cfg.addr)?;
    let batch = cfg.batch.max(1);
    let mut work: VecDeque<Vec<ComponentRunRecord>> = VecDeque::new();
    let mut seq = 0;
    while seq < cfg.runs_per_writer {
        let n = batch.min(cfg.runs_per_writer - seq);
        work.push_back(
            (seq..seq + n)
                .map(|s| synthetic_run(component, s))
                .collect(),
        );
        seq += n;
    }
    let mut inflight: HashMap<u64, Vec<ComponentRunRecord>> = HashMap::new();
    while !work.is_empty() || !inflight.is_empty() {
        while inflight.len() < cfg.pipeline {
            let Some(runs) = work.pop_front() else { break };
            let id = client.send(&Request::LogRuns { runs: runs.clone() })?;
            tally.write_requests.fetch_add(1, Ordering::Relaxed);
            inflight.insert(id, runs);
        }
        let (id, resp) = client.recv()?;
        let runs = inflight
            .remove(&id)
            .ok_or_else(|| ClientError::Protocol(format!("response for unknown id {id}")))?;
        match resp {
            Response::RunIds { ids } => {
                tally
                    .runs_logged
                    .fetch_add(ids.len() as u64, Ordering::Relaxed);
            }
            Response::Busy { .. } => {
                tally.busy.fetch_add(1, Ordering::Relaxed);
                if cfg.retry_busy {
                    work.push_back(runs);
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            Response::Error { .. } => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected response to LogRuns: {other:?}"
                )))
            }
        }
    }
    client.sync()?;
    Ok(())
}

/// Run `op`; on Busy either retry (after a short backoff) or count and
/// return `None`. Non-Busy errors are counted and swallowed so one
/// transient failure doesn't end a thread's workload.
fn send_with_retry<T>(
    cfg: &LoadConfig,
    tally: &Tally,
    mut op: impl FnMut() -> Result<T>,
) -> Option<T> {
    loop {
        match op() {
            Ok(v) => return Some(v),
            Err(ClientError::Busy { .. }) => {
                tally.busy.fetch_add(1, Ordering::Relaxed);
                if !cfg.retry_busy {
                    return None;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(_) => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
    }
}

fn reader_loop(cfg: &LoadConfig, components: &[String], seed: usize, tally: &Tally) {
    let result = (|| -> Result<()> {
        let mut client = Client::connect(&cfg.addr)?;
        let stmt = client.prepare(
            "SELECT component, count(*), avg(duration_ms) FROM component_runs \
             WHERE component = ? GROUP BY component",
        )?;
        let mut turn = seed;
        while tally.writers_done.load(Ordering::Relaxed) < cfg.writers as u64 {
            let component = &components[turn % components.len()];
            turn += 1;
            match client.exec(stmt, vec![Value::Str(component.clone())]) {
                Ok(rows) => {
                    tally.read_queries.fetch_add(1, Ordering::Relaxed);
                    tally
                        .rows_returned
                        .fetch_add(rows.rows.len() as u64, Ordering::Relaxed);
                }
                Err(ClientError::Busy { .. }) => {
                    tally.busy.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })();
    if result.is_err() {
        tally.errors.fetch_add(1, Ordering::Relaxed);
    }
}
