//! # mltrace-client
//!
//! A thin blocking client for [`mltrace-protocol`]: one TCP connection,
//! sender-chosen request ids, and typed helpers over the request set.
//! The low-level [`Client::send`]/[`Client::recv`] split supports
//! pipelining (many requests in flight, responses correlated by id);
//! the high-level helpers are strict request/response.
//!
//! `Busy` responses — the server's `--max-inflight` admission gate —
//! surface as [`ClientError::Busy`] so callers can count and retry;
//! the request was *not* executed.
//!
//! [`mltrace-protocol`]: mltrace_protocol

#![warn(missing_docs)]

pub mod load;

use mltrace_protocol::{read_frame, write_frame, Frame, Request, Response};
use mltrace_store::{
    ComponentRecord, ComponentRunRecord, EventFilter, MetricRecord, ObservabilityEvent, RunBundle,
    StoreStats, Value,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport error (connect, read, write, torn frame).
    Io(io::Error),
    /// The peer broke the protocol (bad frame body, wrong response
    /// shape, or an id we never sent).
    Protocol(String),
    /// The server's admission gate rejected the request unexecuted;
    /// retry later.
    Busy {
        /// The server's configured per-connection limit.
        limit: usize,
    },
    /// The server executed the request and reported failure.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Busy { limit } => {
                write!(f, "server busy (max-inflight {limit}); retry later")
            }
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A prepared-statement handle on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementHandle {
    /// Server-assigned id (connection-scoped).
    pub stmt: u64,
    /// Number of `?` placeholders to bind.
    pub params: usize,
}

/// Query rows as returned by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSet {
    /// Column names.
    pub columns: Vec<String>,
    /// Value rows.
    pub rows: Vec<Vec<Value>>,
}

/// One blocking connection to `mltrace serve`.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1 })
    }

    /// Bound how long a single `recv` may block (None = forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request without waiting; returns the request id to match
    /// against [`Client::recv`]. This is the pipelining primitive.
    pub fn send(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Frame::new(id, req.to_body()))?;
        Ok(id)
    }

    /// Receive the next response (completion order, not send order).
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        match read_frame(&mut self.stream)? {
            Some(frame) => {
                let resp = Response::from_body(&frame.body)
                    .map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))?;
                Ok((frame.request_id, resp))
            }
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            ))),
        }
    }

    /// Strict request/response: send, then wait for the matching id.
    /// Out-of-order responses (from earlier pipelined sends) are an
    /// error here — don't mix `call` with outstanding `send`s.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(ClientError::Protocol(format!(
                "response id {got} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    fn expect_ok(resp: Response) -> Result<()> {
        match resp {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    // ---- typed helpers -------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        Self::expect_ok(self.call(&Request::Ping)?)
    }

    /// Upsert components; returns how many were applied.
    pub fn register_components(&mut self, components: Vec<ComponentRecord>) -> Result<u64> {
        match self.call(&Request::RegisterComponents { components })? {
            Response::Logged { count } => Ok(count),
            other => Err(unexpected(other)),
        }
    }

    /// Log a batch of runs; returns assigned ids in input order.
    pub fn log_runs(&mut self, runs: Vec<ComponentRunRecord>) -> Result<Vec<u64>> {
        match self.call(&Request::LogRuns { runs })? {
            Response::RunIds { ids } => Ok(ids),
            other => Err(unexpected(other)),
        }
    }

    /// Log a batch of metric points.
    pub fn log_metrics(&mut self, metrics: Vec<MetricRecord>) -> Result<u64> {
        match self.call(&Request::LogMetrics { metrics })? {
            Response::Logged { count } => Ok(count),
            other => Err(unexpected(other)),
        }
    }

    /// Log run bundles; returns assigned run ids in input order.
    pub fn log_bundles(&mut self, bundles: Vec<RunBundle>) -> Result<Vec<u64>> {
        match self.call(&Request::LogBundles { bundles })? {
            Response::RunIds { ids } => Ok(ids),
            other => Err(unexpected(other)),
        }
    }

    /// One-shot SQL (or `EXPLAIN`).
    pub fn query(&mut self, sql: impl Into<String>) -> Result<RowSet> {
        match self.call(&Request::Query { sql: sql.into() })? {
            Response::Rows { columns, rows } => Ok(RowSet { columns, rows }),
            other => Err(unexpected(other)),
        }
    }

    /// Parse a statement with `?` placeholders server-side.
    pub fn prepare(&mut self, sql: impl Into<String>) -> Result<StatementHandle> {
        match self.call(&Request::Prepare { sql: sql.into() })? {
            Response::Prepared { stmt, params } => Ok(StatementHandle { stmt, params }),
            other => Err(unexpected(other)),
        }
    }

    /// Execute a prepared statement with positional parameters.
    pub fn exec(&mut self, stmt: StatementHandle, params: Vec<Value>) -> Result<RowSet> {
        match self.call(&Request::Exec {
            stmt: stmt.stmt,
            params,
        })? {
            Response::Rows { columns, rows } => Ok(RowSet { columns, rows }),
            other => Err(unexpected(other)),
        }
    }

    /// Release a prepared statement.
    pub fn close_prepared(&mut self, stmt: StatementHandle) -> Result<()> {
        Self::expect_ok(self.call(&Request::ClosePrepared { stmt: stmt.stmt })?)
    }

    /// Start (or replace) this connection's event subscription.
    pub fn subscribe(&mut self, filter: EventFilter, capacity: Option<usize>) -> Result<()> {
        Self::expect_ok(self.call(&Request::Subscribe { filter, capacity })?)
    }

    /// Fetch buffered events; `dropped` counts overflow losses since the
    /// previous poll (bounded drop-oldest queue — the backpressure
    /// contract).
    pub fn poll_events(
        &mut self,
        max: usize,
        wait: Duration,
    ) -> Result<(Vec<ObservabilityEvent>, u64)> {
        match self.call(&Request::PollEvents {
            max,
            wait_ms: wait.as_millis() as u64,
        })? {
            Response::Events { events, dropped } => Ok((events, dropped)),
            other => Err(unexpected(other)),
        }
    }

    /// Durability barrier: the server flushes and fsyncs its WAL.
    pub fn sync(&mut self) -> Result<()> {
        Self::expect_ok(self.call(&Request::Sync)?)
    }

    /// Store row counts.
    pub fn stats(&mut self) -> Result<StoreStats> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<()> {
        Self::expect_ok(self.call(&Request::Shutdown)?)
    }
}

/// Map non-success responses onto the error taxonomy.
fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Busy { limit } => ClientError::Busy { limit },
        Response::Error { message } => ClientError::Server(message),
        other => ClientError::Protocol(format!("unexpected response: {other:?}")),
    }
}
