//! The [`Store`] trait: the storage layer contract of Figure 2.
//!
//! The execution layer logs components, runs, I/O pointers and metrics
//! through this interface; the query commands and the SQL engine read
//! through it. Implementations: [`crate::memory::MemoryStore`] (indexes in
//! RAM) and [`crate::wal::WalStore`] (same, plus an append-only JSON-lines
//! log for durability and replay).

use crate::aggregate::{AggInput, GroupPartial};
use crate::error::Result;
use crate::event::{
    DiagnosisRecord, EventBus, EventFilter, EventId, IncidentRecord, ObservabilityEvent,
};
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};
use crate::scan::{IndexRoute, RunFilter};
use mltrace_telemetry::Telemetry;

/// One component run plus the I/O pointer upserts and metric points that
/// belong to it, logged through [`Store::log_run_bundle`] as a single store
/// transaction.
///
/// The execution layer's §3.4 step 6 produces exactly this shape — F
/// pointer upserts, one ComponentRun, and the run's metric points — and at
/// the paper's Ω(1 million)-nodes/day scale, issuing them as ~2+F separate
/// locked store calls is the difference between saturating the hardware
/// and serializing on the ingest path.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunBundle {
    /// The run record to log (its `id` field is ignored; the store assigns
    /// a fresh [`RunId`], as for [`Store::log_run`]).
    pub run: ComponentRunRecord,
    /// I/O pointer upserts for the run's inputs and outputs, applied
    /// before the run is logged.
    pub pointers: Vec<IoPointerRecord>,
    /// Metric points produced by the run (body metrics and trigger
    /// metrics). The store stamps each point's `run_id` with the assigned
    /// id before logging it.
    pub metrics: Vec<MetricRecord>,
    /// Journal events observed during the run (lifecycle, trigger
    /// outcomes). Events whose `run_id` is `None` are stamped with the
    /// assigned id, exactly like the metric points, so emission rides the
    /// same group-commit transaction instead of taking extra locks.
    pub events: Vec<ObservabilityEvent>,
}

/// Counters describing the current contents of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Registered components.
    pub components: usize,
    /// Logged component runs (excluding deleted/compacted).
    pub runs: usize,
    /// Distinct I/O pointers.
    pub io_pointers: usize,
    /// Metric points.
    pub metric_points: usize,
    /// Compaction summaries retained.
    pub summaries: usize,
    /// Runs removed by deletion or compaction since the store was opened.
    pub runs_removed: u64,
    /// Journal events retained.
    pub events: usize,
    /// Incidents retained (all lifecycle states).
    pub incidents: usize,
    /// Diagnosis rows retained across all diagnosed incidents.
    pub diagnoses: usize,
}

/// Cardinality summary of a store's run population, enough for the query
/// planner's selectivity estimates without touching any shard lock twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Live runs in the store.
    pub runs: u64,
    /// Distinct component names with at least one live run.
    pub distinct_components: u64,
    /// Distinct statuses with at least one live run.
    pub distinct_statuses: u64,
    /// Smallest live `start_ms`, when any run exists.
    pub min_start_ms: Option<u64>,
    /// Largest live `start_ms`, when any run exists.
    pub max_start_ms: Option<u64>,
    /// The store's `next_run_id` watermark (assigned ids are `< next_id`).
    pub next_id: u64,
}

/// Entry count and approximate resident size of one secondary index, for
/// `stats` output and the index-memory gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexFootprint {
    /// Index name (`by_component`, `by_start`, `by_status`,
    /// `events_by_kind`).
    pub name: &'static str,
    /// Number of keys (components, distinct start times, statuses, kinds).
    pub keys: u64,
    /// Number of posting entries (run ids / event ids) across all keys.
    pub entries: u64,
    /// Approximate resident bytes (keys + postings; excludes allocator
    /// overhead).
    pub approx_bytes: u64,
}

/// Storage-layer contract. All methods take `&self`; implementations are
/// internally synchronized so a store can be shared via `Arc` across the
/// execution layer and concurrent trigger threads.
pub trait Store: Send + Sync {
    // ------------------------------------------------------------------
    // Components
    // ------------------------------------------------------------------

    /// Register or update a component (upsert keyed by name).
    fn register_component(&self, rec: ComponentRecord) -> Result<()>;

    /// Fetch a component by name.
    fn component(&self, name: &str) -> Result<Option<ComponentRecord>>;

    /// All registered components, ordered by name.
    fn components(&self) -> Result<Vec<ComponentRecord>>;

    // ------------------------------------------------------------------
    // Component runs
    // ------------------------------------------------------------------

    /// Log a run. The store assigns and returns a fresh monotonically
    /// increasing [`RunId`]; the `id` field of the passed record is ignored.
    fn log_run(&self, run: ComponentRunRecord) -> Result<RunId>;

    /// Fetch a run by id. Returns `Ok(None)` for unknown or deleted runs.
    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>>;

    /// Ids of all runs of a component, ascending by start time.
    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>>;

    /// The most recently *started* run of a component.
    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>>;

    /// All live run ids, ascending.
    fn run_ids(&self) -> Result<Vec<RunId>>;

    // ------------------------------------------------------------------
    // Batched snapshot scans (the §4.2 read-scale path)
    // ------------------------------------------------------------------

    /// Scan runs with id strictly greater than `since` (all runs when
    /// `None`) that match `filter`, in ascending id order, stopping after
    /// `limit` matches.
    ///
    /// Semantically equivalent to `run_ids()` + per-id [`Store::run`] +
    /// [`RunFilter::matches`] — the default implementation is exactly
    /// that — but implementations amortize locking across whole shards
    /// and evaluate the filter before cloning records, so a selective
    /// filter clones only the survivors.
    ///
    /// Instrumented stores record `query.rows_scanned` (records examined
    /// after the `since` cursor) and `query.rows_returned` (records that
    /// survived filter + limit), making pushdown selectivity observable.
    fn scan_runs(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ComponentRunRecord>> {
        let cap = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        let mut scanned = 0u64;
        if cap > 0 {
            for id in self.run_ids()? {
                if since.is_some_and(|s| id <= s) {
                    continue;
                }
                let Some(run) = self.run(id)? else { continue };
                scanned += 1;
                if filter.matches(&run) {
                    out.push(run);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
        }
        if let Some(t) = self.telemetry() {
            t.add("query.rows_scanned", scanned);
            t.add("query.rows_returned", out.len() as u64);
        }
        Ok(out)
    }

    /// Chunked variant of [`Store::scan_runs`] for callers that must not
    /// materialize the whole result (e.g. a 100k-run graph refresh).
    ///
    /// Delivers matching runs to `visit` in batches of at most
    /// `chunk_size`, globally ascending by id both within and across
    /// batches — consumers like the lineage graph rely on dependency
    /// producers arriving before their dependents. The visitor returns
    /// `false` to stop early. `chunk_size` must be non-zero.
    fn scan_runs_chunked(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        chunk_size: usize,
        visit: &mut dyn FnMut(&[ComponentRunRecord]) -> bool,
    ) -> Result<()> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        let mut cursor = since;
        loop {
            let batch = self.scan_runs(cursor, filter, Some(chunk_size))?;
            let full = batch.len() == chunk_size;
            if batch.is_empty() {
                return Ok(());
            }
            cursor = Some(batch[batch.len() - 1].id);
            if !visit(&batch) || !full {
                return Ok(());
            }
        }
    }

    /// Index-routed variant of [`Store::scan_runs`]: resolve the candidate
    /// set from the secondary index named by `route`, then evaluate the
    /// full `filter` against every candidate — identical results to
    /// [`Store::scan_runs`], sub-linear rows examined when the route is
    /// selective.
    ///
    /// Returns `Ok(None)` when the implementation keeps no secondary
    /// indexes or the route is not applicable to `filter` (missing bound);
    /// callers must then fall back to [`Store::scan_runs`]. Instrumented
    /// stores count candidates examined into `query.rows_scanned` and
    /// record `query.index_hits_total` / `query.index_misses_total`.
    fn scan_runs_indexed(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
        route: IndexRoute,
    ) -> Result<Option<Vec<ComponentRunRecord>>> {
        let _ = (since, filter, limit, route);
        Ok(None)
    }

    /// Grouped partial-aggregate scan over `component_runs`: group the
    /// runs matching `filter` by the schema columns in `group_cols`
    /// (hashed by canonical value key, see
    /// [`crate::aggregate::canonical_row_key`]) and fold each run into one
    /// [`AggPartial`] per entry of `aggs`, without materializing rows.
    /// A grouped scan over millions of runs returns group-count partials
    /// instead of row-count rows.
    ///
    /// `route`, when given, narrows the candidate set through the named
    /// secondary index exactly like [`Store::scan_runs_indexed`] (the full
    /// filter is still applied). Implementations may return several
    /// partials for the same key (e.g. one per shard, computed in
    /// parallel); callers merge by canonical key — [`AggPartial::merge`]
    /// and the exact sums make the merged result independent of sharding
    /// and evaluation order. `first_id` orders merged groups by first
    /// appearance in an id-ascending scan.
    ///
    /// Returns `Ok(None)` (the default) when the store cannot push
    /// aggregation down; callers then fall back to a row scan.
    ///
    /// [`AggPartial`]: crate::aggregate::AggPartial
    /// [`AggPartial::merge`]: crate::aggregate::AggPartial::merge
    fn scan_runs_grouped(
        &self,
        filter: &RunFilter,
        route: Option<IndexRoute>,
        group_cols: &[usize],
        aggs: &[AggInput],
    ) -> Result<Option<Vec<GroupPartial>>> {
        let _ = (filter, route, group_cols, aggs);
        Ok(None)
    }

    /// Cardinalities for the planner's selectivity estimate. `None` (the
    /// default) means the store keeps no secondary indexes and the planner
    /// must route everything through [`Store::scan_runs`].
    fn index_stats(&self) -> Result<Option<IndexStats>> {
        Ok(None)
    }

    /// Entry counts and approximate memory of each secondary index, for
    /// `stats` output. Empty (the default) when the store keeps none.
    fn index_footprint(&self) -> Result<Vec<IndexFootprint>> {
        Ok(Vec::new())
    }

    /// How many sealed WAL segments a cold read with `filter` could skip,
    /// as `(prunable, total)`, judged from cached zone maps. `None` (the
    /// default) for stores without segmented cold storage. Used by
    /// `EXPLAIN`; the actual pruning happens inside the cold readers.
    fn prunable_segments(&self, filter: &EventFilter) -> Result<Option<(u64, u64)>> {
        let _ = filter;
        Ok(None)
    }

    /// The last `limit` runs of a component, newest first (descending
    /// start time, then descending id for ties).
    ///
    /// Equivalent to [`Store::runs_for_component`] followed by per-id
    /// [`Store::run`] fetches of the tail — the shape every `history`-like
    /// caller used to hand-roll — but implementations resolve the tail
    /// under one index lock and batch the record fetches.
    fn component_history(&self, name: &str, limit: usize) -> Result<Vec<ComponentRunRecord>> {
        let ids = self.runs_for_component(name)?;
        let mut out = Vec::with_capacity(limit.min(ids.len()));
        for id in ids.iter().rev().take(limit) {
            if let Some(run) = self.run(*id)? {
                out.push(run);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Batched ingest (the §3.4 scale path)
    // ------------------------------------------------------------------

    /// Log a batch of runs, returning their assigned ids in order.
    ///
    /// Semantically equivalent to calling [`Store::log_run`] once per
    /// record (the default implementation does exactly that), but
    /// implementations amortize locking, serialization, and syscalls
    /// across the batch. If any record fails validation, no record in the
    /// batch is logged.
    fn log_runs(&self, runs: Vec<ComponentRunRecord>) -> Result<Vec<RunId>> {
        runs.into_iter().map(|r| self.log_run(r)).collect()
    }

    /// Append a batch of metric points. Equivalent to per-point
    /// [`Store::log_metric`] calls; implementations amortize locking and
    /// durability work across the batch.
    fn log_metrics(&self, metrics: Vec<MetricRecord>) -> Result<()> {
        for m in metrics {
            self.log_metric(m)?;
        }
        Ok(())
    }

    /// Log one run together with its I/O pointer upserts and metric
    /// points as a single store transaction (see [`RunBundle`]). Pointer
    /// upserts are applied first, then the run, then the metrics with
    /// their `run_id` stamped to the assigned id. Returns the assigned
    /// run id.
    fn log_run_bundle(&self, bundle: RunBundle) -> Result<RunId> {
        for rec in bundle.pointers {
            self.upsert_io_pointer(rec)?;
        }
        let id = self.log_run(bundle.run)?;
        let mut metrics = bundle.metrics;
        for m in &mut metrics {
            m.run_id = Some(id);
        }
        self.log_metrics(metrics)?;
        let mut events = bundle.events;
        for e in &mut events {
            if e.run_id.is_none() {
                e.run_id = Some(id);
            }
        }
        self.log_events(events)?;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // I/O pointers and the runtime dependency index
    // ------------------------------------------------------------------

    /// Upsert an I/O pointer record (keyed by name). An existing `flag` is
    /// preserved unless the new record changes it explicitly via
    /// [`Store::set_flag`].
    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()>;

    /// Fetch an I/O pointer by name.
    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>>;

    /// All pointers, ordered by name.
    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>>;

    /// Runs that listed `io` as an *output*, ascending by start time. This
    /// is the index behind the paper's runtime dependency inference.
    fn producers_of(&self, io: &str) -> Result<Vec<RunId>>;

    /// Runs that listed `io` as an *input*, ascending by start time. Drives
    /// forward tracing (GDPR deletion) and impact analysis.
    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>>;

    /// Set or clear the debugging flag on a pointer. Returns the previous
    /// flag value.
    fn set_flag(&self, io: &str, flag: bool) -> Result<bool>;

    /// Names of all currently-flagged pointers, ordered by name.
    fn flagged(&self) -> Result<Vec<String>>;

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Append one metric point.
    fn log_metric(&self, m: MetricRecord) -> Result<()>;

    /// All points of a metric series, ascending by timestamp.
    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>>;

    /// Names of metric series recorded for a component, ordered.
    fn metric_names(&self, component: &str) -> Result<Vec<String>>;

    // ------------------------------------------------------------------
    // Maintenance: deletion and compaction
    // ------------------------------------------------------------------

    /// Hard-delete runs by id. Pointer and metric records are retained;
    /// indexes are updated. Returns how many existed and were removed.
    fn delete_runs(&self, ids: &[RunId]) -> Result<usize>;

    /// Hard-delete I/O pointers by name (their index entries go too).
    fn delete_io_pointers(&self, names: &[String]) -> Result<usize>;

    /// Store an aggregate summary produced by compaction.
    fn put_summary(&self, s: CompactionSummary) -> Result<()>;

    /// Summaries for a component, ascending by window start.
    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>>;

    /// Current record counts.
    fn stats(&self) -> Result<StoreStats>;

    // ------------------------------------------------------------------
    // The monitoring plane (always-on streaming summaries)
    // ------------------------------------------------------------------

    /// Live monitoring-plane summaries: one row per observed
    /// `(component, metric)` key with streaming moments, P² quantiles,
    /// null rate, and the latest drift verdict. Ordered by key. The
    /// default is empty: stores without a plane stay valid.
    fn monitor_summaries(&self) -> Result<Vec<mltrace_metrics::MonitorSummary>> {
        Ok(Vec::new())
    }

    // ------------------------------------------------------------------
    // The observability event journal
    // ------------------------------------------------------------------

    /// Append a batch of journal events, assigning each a fresh monotonic
    /// [`EventId`] and returning the ids in order. Implementations take
    /// their journal lock once per *batch* and fan the batch out to bus
    /// subscribers after the append.
    ///
    /// The default is a no-op sink (`Ok(vec![])`): stores without a
    /// journal stay valid `Store` implementations, and callers that emit
    /// events unconditionally degrade to "not retained" rather than
    /// erroring.
    fn log_events(&self, events: Vec<ObservabilityEvent>) -> Result<Vec<EventId>> {
        let _ = events;
        Ok(Vec::new())
    }

    /// Scan journal events with id strictly greater than `since` (all
    /// events when `None`) matching `filter`, ascending by id, stopping
    /// after `limit` matches. Mirrors [`Store::scan_runs`], including the
    /// `query.rows_scanned` / `query.rows_returned` telemetry contract.
    fn scan_events(
        &self,
        since: Option<EventId>,
        filter: &EventFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ObservabilityEvent>> {
        let _ = (since, filter, limit);
        Ok(Vec::new())
    }

    /// Insert or replace an incident by its dedup `key`.
    fn upsert_incident(&self, incident: IncidentRecord) -> Result<()> {
        let _ = incident;
        Ok(())
    }

    /// All incidents, ordered by key.
    fn incidents(&self) -> Result<Vec<IncidentRecord>> {
        Ok(Vec::new())
    }

    /// Replace the diagnosis rows for `incident_key` with `rows` (the
    /// diagnosis engine re-ranks wholesale, so partial updates never
    /// exist). An empty `rows` clears the key.
    fn put_diagnosis(&self, incident_key: &str, rows: Vec<DiagnosisRecord>) -> Result<()> {
        let _ = (incident_key, rows);
        Ok(())
    }

    /// All diagnosis rows, ordered by (incident key, rank).
    fn diagnoses(&self) -> Result<Vec<DiagnosisRecord>> {
        Ok(Vec::new())
    }

    /// Diagnosis rows for one incident key, ordered by rank.
    fn diagnoses_for(&self, incident_key: &str) -> Result<Vec<DiagnosisRecord>> {
        Ok(self
            .diagnoses()?
            .into_iter()
            .filter(|d| d.incident_key == incident_key)
            .collect())
    }

    /// The in-process broadcast bus journal events fan out on, when the
    /// store keeps one. `None` (the default) means live subscription is
    /// unsupported; persisted scans still work.
    fn event_bus(&self) -> Option<&EventBus> {
        None
    }

    // ------------------------------------------------------------------
    // Self-telemetry
    // ------------------------------------------------------------------

    /// The store's self-telemetry registry, when it keeps one. The
    /// execution layer adopts this registry so engine-level spans
    /// (`component_run`, trigger phases) and store-level metrics
    /// (`store.log_run_bundle`, `wal.*`) land in one place. The default
    /// is `None`: trait implementers without instrumentation stay valid,
    /// and callers fall back to a private registry.
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }
}
