//! The [`Store`] trait: the storage layer contract of Figure 2.
//!
//! The execution layer logs components, runs, I/O pointers and metrics
//! through this interface; the query commands and the SQL engine read
//! through it. Implementations: [`crate::memory::MemoryStore`] (indexes in
//! RAM) and [`crate::wal::WalStore`] (same, plus an append-only JSON-lines
//! log for durability and replay).

use crate::error::Result;
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};

/// Counters describing the current contents of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Registered components.
    pub components: usize,
    /// Logged component runs (excluding deleted/compacted).
    pub runs: usize,
    /// Distinct I/O pointers.
    pub io_pointers: usize,
    /// Metric points.
    pub metric_points: usize,
    /// Compaction summaries retained.
    pub summaries: usize,
    /// Runs removed by deletion or compaction since the store was opened.
    pub runs_removed: u64,
}

/// Storage-layer contract. All methods take `&self`; implementations are
/// internally synchronized so a store can be shared via `Arc` across the
/// execution layer and concurrent trigger threads.
pub trait Store: Send + Sync {
    // ------------------------------------------------------------------
    // Components
    // ------------------------------------------------------------------

    /// Register or update a component (upsert keyed by name).
    fn register_component(&self, rec: ComponentRecord) -> Result<()>;

    /// Fetch a component by name.
    fn component(&self, name: &str) -> Result<Option<ComponentRecord>>;

    /// All registered components, ordered by name.
    fn components(&self) -> Result<Vec<ComponentRecord>>;

    // ------------------------------------------------------------------
    // Component runs
    // ------------------------------------------------------------------

    /// Log a run. The store assigns and returns a fresh monotonically
    /// increasing [`RunId`]; the `id` field of the passed record is ignored.
    fn log_run(&self, run: ComponentRunRecord) -> Result<RunId>;

    /// Fetch a run by id. Returns `Ok(None)` for unknown or deleted runs.
    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>>;

    /// Ids of all runs of a component, ascending by start time.
    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>>;

    /// The most recently *started* run of a component.
    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>>;

    /// All live run ids, ascending.
    fn run_ids(&self) -> Result<Vec<RunId>>;

    // ------------------------------------------------------------------
    // I/O pointers and the runtime dependency index
    // ------------------------------------------------------------------

    /// Upsert an I/O pointer record (keyed by name). An existing `flag` is
    /// preserved unless the new record changes it explicitly via
    /// [`Store::set_flag`].
    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()>;

    /// Fetch an I/O pointer by name.
    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>>;

    /// All pointers, ordered by name.
    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>>;

    /// Runs that listed `io` as an *output*, ascending by start time. This
    /// is the index behind the paper's runtime dependency inference.
    fn producers_of(&self, io: &str) -> Result<Vec<RunId>>;

    /// Runs that listed `io` as an *input*, ascending by start time. Drives
    /// forward tracing (GDPR deletion) and impact analysis.
    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>>;

    /// Set or clear the debugging flag on a pointer. Returns the previous
    /// flag value.
    fn set_flag(&self, io: &str, flag: bool) -> Result<bool>;

    /// Names of all currently-flagged pointers, ordered by name.
    fn flagged(&self) -> Result<Vec<String>>;

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Append one metric point.
    fn log_metric(&self, m: MetricRecord) -> Result<()>;

    /// All points of a metric series, ascending by timestamp.
    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>>;

    /// Names of metric series recorded for a component, ordered.
    fn metric_names(&self, component: &str) -> Result<Vec<String>>;

    // ------------------------------------------------------------------
    // Maintenance: deletion and compaction
    // ------------------------------------------------------------------

    /// Hard-delete runs by id. Pointer and metric records are retained;
    /// indexes are updated. Returns how many existed and were removed.
    fn delete_runs(&self, ids: &[RunId]) -> Result<usize>;

    /// Hard-delete I/O pointers by name (their index entries go too).
    fn delete_io_pointers(&self, names: &[String]) -> Result<usize>;

    /// Store an aggregate summary produced by compaction.
    fn put_summary(&self, s: CompactionSummary) -> Result<()>;

    /// Summaries for a component, ascending by window start.
    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>>;

    /// Current record counts.
    fn stats(&self) -> Result<StoreStats>;
}
