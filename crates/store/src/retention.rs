//! Log compaction (§5.3 "Efficiency and utility tradeoff"): "as time
//! progresses, we may want to compact these logs to support aggregate
//! queries even if individual tracing is no longer relevant on old data."
//!
//! [`compact_before`] folds all runs older than a cutoff into per-component
//! daily [`CompactionSummary`] windows (run counts, failure counts, mean
//! durations, metric aggregates), then deletes the raw runs. History-style
//! queries keep working off the summaries; per-run traces in the compacted
//! range are intentionally given up.

use crate::clock::MS_PER_DAY;
use crate::error::Result;
use crate::record::{CompactionSummary, MetricAggregate, RunId};
use crate::store::Store;
use std::collections::BTreeMap;

/// Outcome of one compaction pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Runs folded into summaries and deleted.
    pub runs_compacted: usize,
    /// Summary windows written.
    pub windows_written: usize,
}

/// Compact all runs with `start_ms < cutoff_ms` into daily summaries.
///
/// `window_ms` controls summary granularity (use [`MS_PER_DAY`] for the
/// paper's daily aggregates). Metric points attributed to compacted runs
/// are aggregated into the window summary.
pub fn compact_before(
    store: &dyn Store,
    cutoff_ms: u64,
    window_ms: u64,
) -> Result<CompactionReport> {
    assert!(window_ms > 0, "window must be positive");
    // (component, window_start) → summary under construction
    let mut windows: BTreeMap<(String, u64), CompactionSummary> = BTreeMap::new();
    let mut victims: Vec<RunId> = Vec::new();

    // Metric points are keyed by (component, name) series; pre-index the
    // run ids we compact so we can attribute points via run_id.
    for id in store.run_ids()? {
        let Some(run) = store.run(id)? else { continue };
        if run.start_ms >= cutoff_ms {
            continue;
        }
        let wstart = run.start_ms / window_ms * window_ms;
        let entry = windows
            .entry((run.component.clone(), wstart))
            .or_insert_with(|| CompactionSummary {
                component: run.component.clone(),
                window_start_ms: wstart,
                window_end_ms: wstart + window_ms,
                run_count: 0,
                failed_count: 0,
                mean_duration_ms: 0.0,
                metric_aggregates: BTreeMap::new(),
            });
        entry.run_count += 1;
        if run.status != crate::record::RunStatus::Success {
            entry.failed_count += 1;
        }
        entry.mean_duration_ms +=
            (run.duration_ms() as f64 - entry.mean_duration_ms) / entry.run_count as f64;
        victims.push(id);
    }

    // Aggregate metric points produced by compacted runs.
    if !victims.is_empty() {
        let victim_set: std::collections::HashSet<RunId> = victims.iter().copied().collect();
        for comp in store.components()? {
            for mname in store.metric_names(&comp.name)? {
                for point in store.metrics(&comp.name, &mname)? {
                    let Some(rid) = point.run_id else { continue };
                    if !victim_set.contains(&rid) {
                        continue;
                    }
                    let wstart = point.ts_ms / window_ms * window_ms;
                    if let Some(summary) = windows.get_mut(&(point.component.clone(), wstart)) {
                        summary
                            .metric_aggregates
                            .entry(point.name.clone())
                            .or_insert_with(MetricAggregate::default)
                            .add(point.value);
                    }
                }
            }
        }
    }

    let windows_written = windows.len();
    for (_, summary) in windows {
        store.put_summary(summary)?;
    }
    let runs_compacted = store.delete_runs(&victims)?;
    Ok(CompactionReport {
        runs_compacted,
        windows_written,
    })
}

/// Convenience: compact everything older than `days` days before `now_ms`,
/// with daily windows.
pub fn compact_older_than_days(
    store: &dyn Store,
    now_ms: u64,
    days: u64,
) -> Result<CompactionReport> {
    let cutoff = now_ms.saturating_sub(days * MS_PER_DAY);
    compact_before(store, cutoff, MS_PER_DAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::record::{ComponentRecord, ComponentRunRecord, MetricRecord, RunStatus};

    fn run_at(component: &str, start: u64, status: RunStatus) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 100,
            status,
            ..Default::default()
        }
    }

    #[test]
    fn compaction_folds_and_deletes() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("etl")).unwrap();
        // 3 old runs on day 0, 1 old run on day 1, 1 fresh run on day 40.
        let day = MS_PER_DAY;
        for t in [100, 200, 300] {
            s.log_run(run_at("etl", t, RunStatus::Success)).unwrap();
        }
        let failed = s
            .log_run(run_at("etl", day + 50, RunStatus::Failed))
            .unwrap();
        let fresh = s
            .log_run(run_at("etl", 40 * day, RunStatus::Success))
            .unwrap();

        let report = compact_before(&s, 30 * day, day).unwrap();
        assert_eq!(report.runs_compacted, 4);
        assert_eq!(report.windows_written, 2);
        assert!(s.run(failed).unwrap().is_none());
        assert!(s.run(fresh).unwrap().is_some());

        let sums = s.summaries("etl").unwrap();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].run_count, 3);
        assert_eq!(sums[0].failed_count, 0);
        assert!((sums[0].mean_duration_ms - 100.0).abs() < 1e-9);
        assert_eq!(sums[1].run_count, 1);
        assert_eq!(sums[1].failed_count, 1);
    }

    #[test]
    fn compaction_aggregates_metrics_of_compacted_runs() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("inference"))
            .unwrap();
        let day = MS_PER_DAY;
        let old = s
            .log_run(run_at("inference", 500, RunStatus::Success))
            .unwrap();
        let fresh = s
            .log_run(run_at("inference", 50 * day, RunStatus::Success))
            .unwrap();
        for (rid, ts, v) in [
            (old, 600u64, 0.9),
            (old, 700, 0.8),
            (fresh, 50 * day + 1, 0.5),
        ] {
            s.log_metric(MetricRecord {
                component: "inference".into(),
                run_id: Some(rid),
                name: "accuracy".into(),
                value: v,
                ts_ms: ts,
            })
            .unwrap();
        }
        compact_older_than_days(&s, 60 * day, 30).unwrap();
        let sums = s.summaries("inference").unwrap();
        assert_eq!(sums.len(), 1);
        let agg = sums[0].metric_aggregates.get("accuracy").unwrap();
        assert_eq!(agg.count, 2);
        assert!((agg.mean - 0.85).abs() < 1e-9);
        assert_eq!(agg.min, 0.8);
        assert_eq!(agg.max, 0.9);
    }

    #[test]
    fn nothing_to_compact_is_a_noop() {
        let s = MemoryStore::new();
        s.log_run(run_at("x", 1_000_000, RunStatus::Success))
            .unwrap();
        let report = compact_before(&s, 500, MS_PER_DAY).unwrap();
        assert_eq!(report, CompactionReport::default());
        assert_eq!(s.stats().unwrap().runs, 1);
    }

    #[test]
    fn repeated_compaction_is_idempotent_on_runs() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("c")).unwrap();
        s.log_run(run_at("c", 10, RunStatus::Success)).unwrap();
        let r1 = compact_before(&s, 1_000, MS_PER_DAY).unwrap();
        let r2 = compact_before(&s, 1_000, MS_PER_DAY).unwrap();
        assert_eq!(r1.runs_compacted, 1);
        assert_eq!(r2.runs_compacted, 0);
    }
}
